"""Setuptools shim.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs are unavailable; keeping a ``setup.py`` (and no
``[build-system]`` table in ``pyproject.toml``) lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which only needs
setuptools.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
