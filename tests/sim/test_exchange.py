"""Tests for :mod:`repro.sim.exchange`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.spec import laptop_like
from repro.sim.exchange import (
    direct_schedule,
    one_factor_schedule,
    verify_one_factor,
)
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=0).world()


class TestOneFactorSchedule:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 9, 16, 17])
    def test_valid_one_factorisation(self, p):
        rounds = one_factor_schedule(p)
        assert verify_one_factor(rounds, p)

    def test_round_count_even(self):
        assert len(one_factor_schedule(8)) == 7

    def test_round_count_odd(self):
        assert len(one_factor_schedule(7)) == 7

    def test_single_pe(self):
        assert one_factor_schedule(1) == []

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            one_factor_schedule(0)

    def test_direct_schedule_covers_all_pairs(self):
        rounds = direct_schedule(4)
        assert len(rounds) == 1
        assert len(rounds[0]) == 6

    def test_verify_rejects_duplicates(self):
        assert not verify_one_factor([[(0, 1)], [(0, 1)]], 2)

    def test_verify_rejects_busy_pe(self):
        assert not verify_one_factor([[(0, 1), (1, 2)], [(0, 2)]], 3)


class TestExchangeSemantics:
    def test_simple_exchange_delivers_payloads(self):
        comm = make_comm(3)
        outboxes = [
            [(1, np.array([1, 2])), (2, np.array([3]))],
            [(2, np.array([4, 5, 6]))],
            [],
        ]
        result = comm.exchange(outboxes)
        assert result.received_arrays(0) == []
        assert [a.tolist() for a in result.received_arrays(1)] == [[1, 2]]
        assert [a.tolist() for a in result.received_arrays(2)] == [[3], [4, 5, 6]]

    def test_inboxes_sorted_by_source(self):
        comm = make_comm(4)
        outboxes = [[] for _ in range(4)]
        outboxes[3] = [(0, np.array([30]))]
        outboxes[1] = [(0, np.array([10]))]
        outboxes[2] = [(0, np.array([20]))]
        result = comm.exchange(outboxes)
        sources = [src for src, _ in result.inboxes[0]]
        assert sources == [1, 2, 3]

    def test_word_and_message_counts(self):
        comm = make_comm(3)
        outboxes = [
            [(1, np.arange(5)), (2, np.arange(7))],
            [(2, np.arange(2))],
            [],
        ]
        result = comm.exchange(outboxes)
        assert result.words_sent.tolist() == [12, 2, 0]
        assert result.words_received.tolist() == [0, 5, 9]
        assert result.messages_sent.tolist() == [2, 1, 0]
        assert result.messages_received.tolist() == [0, 1, 2]
        assert result.h_words == 12
        assert result.r_messages == 2

    def test_empty_messages_skipped_in_sparse_mode(self):
        comm = make_comm(2)
        outboxes = [[(1, np.empty(0))], []]
        result = comm.exchange(outboxes, schedule="sparse")
        assert result.messages_sent.tolist() == [0, 0]
        # data is still delivered (an empty array)
        assert len(result.inboxes[1]) == 1

    def test_dense_mode_counts_p_minus_one(self):
        comm = make_comm(4)
        outboxes = [[] for _ in range(4)]
        result = comm.exchange(outboxes, schedule="dense")
        assert result.messages_sent.tolist() == [3, 3, 3, 3]
        assert result.r_messages == 3

    def test_dense_costs_more_than_sparse_for_empty_traffic(self):
        m1 = SimulatedMachine(8, spec=laptop_like())
        m2 = SimulatedMachine(8, spec=laptop_like())
        m1.world().exchange([[] for _ in range(8)], schedule="sparse")
        m2.world().exchange([[] for _ in range(8)], schedule="dense")
        assert m2.elapsed() > m1.elapsed()

    def test_invalid_destination(self):
        comm = make_comm(2)
        with pytest.raises(IndexError):
            comm.exchange([[(5, np.array([1]))], []])

    def test_wrong_outbox_count(self):
        comm = make_comm(2)
        with pytest.raises(ValueError):
            comm.exchange([[]])

    def test_unknown_schedule(self):
        comm = make_comm(2)
        with pytest.raises(ValueError):
            comm.exchange([[], []], schedule="bogus")

    def test_exchange_synchronises_clocks(self):
        comm = make_comm(4)
        comm.charge_local(2, 1.0)
        comm.exchange([[] for _ in range(4)])
        assert np.allclose(comm.machine.clock, comm.machine.clock[0])

    def test_counters_updated_on_machine(self):
        comm = make_comm(3)
        comm.exchange([[(1, np.arange(10))], [], []])
        assert comm.machine.counters.total_messages() == 1
        assert comm.machine.counters.total_volume() == 10

    def test_time_includes_alpha_and_beta(self):
        comm = make_comm(2)
        result = comm.exchange([[(1, np.arange(1000))], []], charge_copy=False)
        spec = comm.spec
        assert result.time == pytest.approx(spec.alpha + 1000 * spec.beta, rel=1e-6)

    def test_alltoallv_roundtrip(self):
        comm = make_comm(3)
        send = [[np.full(j + 1, 10 * i + j) for j in range(3)] for i in range(3)]
        recv = comm.alltoallv(send)
        for j in range(3):
            for i in range(3):
                assert np.array_equal(recv[j][i], send[i][j])


class TestExchangeProperties:
    @given(st.integers(2, 6), st.integers(0, 40), st.integers(1, 97))
    @settings(max_examples=25, deadline=None)
    def test_conservation_of_elements(self, p, max_size, seed):
        """Whatever is sent is received exactly once (element conservation)."""
        rng = np.random.default_rng(seed)
        comm = make_comm(p)
        outboxes = []
        total_sent = 0
        for i in range(p):
            msgs = []
            for _ in range(rng.integers(0, 4)):
                dest = int(rng.integers(0, p))
                payload = rng.integers(0, 1000, size=rng.integers(0, max_size + 1))
                msgs.append((dest, payload))
                total_sent += payload.size
            outboxes.append(msgs)
        result = comm.exchange(outboxes)
        total_received = sum(
            payload.size for inbox in result.inboxes for _, payload in inbox
        )
        assert total_received == total_sent
        assert int(result.words_sent.sum()) == total_sent
        assert int(result.words_received.sum()) == total_sent
