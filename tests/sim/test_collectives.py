"""Tests for :mod:`repro.sim.collectives`."""

import numpy as np
import pytest

from repro.machine.spec import laptop_like
from repro.sim.collectives import (
    binomial_bcast_order,
    binomial_rounds,
    hypercube_allgather_merge,
    hypercube_rounds,
    merge_sorted_arrays,
    tree_reduce,
    vector_prefix_sum_reference,
)
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=0).world()


class TestRoundCounts:
    @pytest.mark.parametrize("p,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (9, 4)])
    def test_hypercube_rounds(self, p, expected):
        assert hypercube_rounds(p) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            hypercube_rounds(0)

    def test_binomial_rounds_alias(self):
        assert binomial_rounds(16) == 4


class TestMergeSortedArrays:
    def test_merges(self):
        out = merge_sorted_arrays([np.array([1, 4]), np.array([2, 3])])
        assert out.tolist() == [1, 2, 3, 4]

    def test_empty(self):
        assert merge_sorted_arrays([]).size == 0
        assert merge_sorted_arrays([np.empty(0)]).size == 0

    def test_single(self):
        a = np.array([1, 2, 3])
        out = merge_sorted_arrays([a])
        assert out.tolist() == [1, 2, 3]
        out[0] = 99
        assert a[0] == 1  # copy, no aliasing


class TestHypercubeAllgatherMerge:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_power_of_two_sizes(self, p):
        comm = make_comm(p)
        rng = np.random.default_rng(0)
        arrays = [np.sort(rng.integers(0, 100, 6)) for _ in range(p)]
        result = hypercube_allgather_merge(comm, arrays)
        expected = np.sort(np.concatenate(arrays))
        for r in result:
            assert np.array_equal(r, expected)

    @pytest.mark.parametrize("p", [3, 5, 6, 7])
    def test_non_power_of_two_sizes(self, p):
        comm = make_comm(p)
        rng = np.random.default_rng(1)
        arrays = [np.sort(rng.integers(0, 100, 4)) for _ in range(p)]
        result = hypercube_allgather_merge(comm, arrays)
        expected = np.sort(np.concatenate(arrays))
        for r in result:
            assert np.array_equal(r, expected)

    def test_costs_charged(self):
        comm = make_comm(8)
        arrays = [np.sort(np.random.default_rng(i).integers(0, 100, 10)) for i in range(8)]
        hypercube_allgather_merge(comm, arrays)
        assert comm.machine.elapsed() > 0

    def test_wrong_arity(self):
        comm = make_comm(4)
        with pytest.raises(ValueError):
            hypercube_allgather_merge(comm, [np.array([1])])


class TestBinomialBroadcast:
    def test_everyone_reached(self):
        sched = binomial_bcast_order(13, root=0)
        reached = {0}
        for _, src, dst in sched:
            assert src in reached
            reached.add(dst)
        assert reached == set(range(13))

    def test_round_count_log(self):
        sched = binomial_bcast_order(16, root=0)
        assert max(r for r, _, _ in sched) == 3

    def test_rotated_root(self):
        sched = binomial_bcast_order(8, root=5)
        reached = {5}
        for _, src, dst in sched:
            assert src in reached
            reached.add(dst)
        assert reached == set(range(8))

    def test_invalid_root(self):
        with pytest.raises(IndexError):
            binomial_bcast_order(4, root=7)


class TestTreeReduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_matches_numpy_sum(self, p):
        comm = make_comm(p)
        vectors = [np.arange(5) + i for i in range(p)]
        result = tree_reduce(comm, vectors)
        assert np.array_equal(result, np.sum(vectors, axis=0))

    def test_wrong_arity(self):
        comm = make_comm(4)
        with pytest.raises(ValueError):
            tree_reduce(comm, [np.array([1])])


class TestReferencePrefixSum:
    def test_matches_manual(self):
        vectors = [np.array([1, 1]), np.array([2, 0]), np.array([3, 5])]
        ref = vector_prefix_sum_reference(vectors)
        assert ref[0].tolist() == [0, 0]
        assert ref[1].tolist() == [1, 1]
        assert ref[2].tolist() == [3, 1]
