"""Tests for :mod:`repro.sim.machine`."""

import numpy as np
import pytest

from repro.machine.counters import PHASE_LOCAL_SORT
from repro.machine.spec import laptop_like
from repro.machine.topology import FlatTopology
from repro.sim.machine import SimulatedMachine


class TestConstruction:
    def test_basic(self):
        m = SimulatedMachine(4, spec=laptop_like())
        assert m.p == 4
        assert m.clock.shape == (4,)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            SimulatedMachine(0)

    def test_topology_too_small(self):
        with pytest.raises(ValueError):
            SimulatedMachine(8, topology=FlatTopology(4))

    def test_default_spec_is_supermuc(self):
        m = SimulatedMachine(2)
        assert m.spec.name == "supermuc-like"


class TestClocks:
    def test_advance(self):
        m = SimulatedMachine(4, spec=laptop_like())
        m.advance(2, 1.5)
        assert m.clock[2] == 1.5
        assert m.elapsed() == 1.5

    def test_advance_negative_rejected(self):
        m = SimulatedMachine(2, spec=laptop_like())
        with pytest.raises(ValueError):
            m.advance(0, -1.0)

    def test_advance_zero_noop(self):
        m = SimulatedMachine(2, spec=laptop_like())
        m.advance(0, 0.0)
        assert m.breakdown.phases() == []

    def test_advance_many_scalar(self):
        m = SimulatedMachine(4, spec=laptop_like())
        m.advance_many([0, 1, 2, 3], 2.0)
        assert np.allclose(m.clock, 2.0)

    def test_advance_many_vector(self):
        m = SimulatedMachine(3, spec=laptop_like())
        m.advance_many([0, 2], [1.0, 3.0])
        assert m.clock.tolist() == [1.0, 0.0, 3.0]

    def test_advance_many_shape_mismatch(self):
        m = SimulatedMachine(3, spec=laptop_like())
        with pytest.raises(ValueError):
            m.advance_many([0, 1], [1.0])

    def test_synchronize(self):
        m = SimulatedMachine(3, spec=laptop_like())
        m.advance(0, 5.0)
        t = m.synchronize([0, 1, 2])
        assert t == 5.0
        assert np.allclose(m.clock, 5.0)

    def test_elapsed_subset(self):
        m = SimulatedMachine(4, spec=laptop_like())
        m.advance(3, 9.0)
        assert m.elapsed([0, 1]) == 0.0
        assert m.elapsed() == 9.0

    def test_reset(self):
        m = SimulatedMachine(2, spec=laptop_like())
        m.advance(0, 1.0)
        m.counters.record_message(0, 1, 5)
        m.reset()
        assert m.elapsed() == 0.0
        assert m.counters.total_messages() == 0


class TestPhasesAndRandom:
    def test_phase_attribution(self):
        m = SimulatedMachine(2, spec=laptop_like())
        with m.phase(PHASE_LOCAL_SORT):
            m.advance(0, 2.0)
        assert m.breakdown.max_time(PHASE_LOCAL_SORT) == 2.0

    def test_wait_time_attributed_to_phase(self):
        m = SimulatedMachine(2, spec=laptop_like())
        m.advance(0, 4.0)
        with m.phase(PHASE_LOCAL_SORT):
            m.synchronize([0, 1])
        assert m.breakdown.max_time(PHASE_LOCAL_SORT) == pytest.approx(4.0)

    def test_pe_rng_deterministic(self):
        m1 = SimulatedMachine(4, spec=laptop_like(), seed=3)
        m2 = SimulatedMachine(4, spec=laptop_like(), seed=3)
        assert m1.pe_rng(2).integers(0, 100, 5).tolist() == \
               m2.pe_rng(2).integers(0, 100, 5).tolist()

    def test_pe_rng_differs_between_pes(self):
        m = SimulatedMachine(4, spec=laptop_like(), seed=3)
        a = m.pe_rng(0).integers(0, 1000, 10)
        b = m.pe_rng(1).integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_pe_rng_out_of_range(self):
        m = SimulatedMachine(2, spec=laptop_like())
        with pytest.raises(IndexError):
            m.pe_rng(5)

    def test_world_and_custom_comm(self):
        m = SimulatedMachine(6, spec=laptop_like())
        world = m.world()
        assert world.size == 6
        sub = m.comm([1, 3, 5])
        assert sub.size == 3
        assert sub.global_pe(1) == 3


class TestSampleRNG:
    def test_sample_rng_keyed_by_seed(self):
        m1 = SimulatedMachine(4, spec=laptop_like(), seed=3)
        m2 = SimulatedMachine(4, spec=laptop_like(), seed=3)
        m3 = SimulatedMachine(4, spec=laptop_like(), seed=4)
        idx = np.arange(20)
        assert np.array_equal(m1.sample_rng.words(0, 1, idx),
                              m2.sample_rng.words(0, 1, idx))
        assert not np.array_equal(m1.sample_rng.words(0, 1, idx),
                                  m3.sample_rng.words(0, 1, idx))

    def test_sample_rng_survives_reset(self):
        m = SimulatedMachine(2, spec=laptop_like(), seed=7)
        before = m.sample_rng.words(1, 0, np.arange(16))
        m.advance(0, 1.0)
        m.reset()
        assert np.array_equal(before, m.sample_rng.words(1, 0, np.arange(16)))


class TestWallProfile:
    def test_disabled_by_default(self):
        m = SimulatedMachine(2, spec=laptop_like())
        with m.phase(PHASE_LOCAL_SORT):
            m.advance(0, 1.0)
        assert m.wall_profile is None

    def test_attributes_wall_time_to_phases(self):
        m = SimulatedMachine(2, spec=laptop_like())
        profile = m.enable_wall_profile()
        with m.phase(PHASE_LOCAL_SORT):
            m.advance(0, 1.0)
        with m.phase("custom"):
            m.advance(1, 1.0)
        assert PHASE_LOCAL_SORT in profile
        assert "custom" in profile
        assert all(v >= 0.0 for v in profile.values())

    def test_nested_phases_attribute_to_innermost(self):
        m = SimulatedMachine(2, spec=laptop_like())
        profile = m.enable_wall_profile()
        with m.phase("outer"):
            with m.phase("inner"):
                m.advance(0, 1.0)
        assert "inner" in profile and "outer" in profile

    def test_reset_clears_in_place(self):
        m = SimulatedMachine(2, spec=laptop_like())
        profile = m.enable_wall_profile()
        with m.phase(PHASE_LOCAL_SORT):
            m.advance(0, 1.0)
        assert profile
        m.reset()
        assert profile == {}  # same dict, cleared in place
        assert m.wall_profile is profile
        with m.phase(PHASE_LOCAL_SORT):
            m.advance(0, 1.0)
        assert PHASE_LOCAL_SORT in profile
