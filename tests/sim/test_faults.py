"""Tests for :mod:`repro.sim.faults`.

The load-bearing guarantees, in order of importance:

* **Byte-identity when off** — a machine with no plan, a default plan and an
  all-zero plan produce bit-identical clocks, phase breakdowns and counters,
  under both kernel backends.
* **Determinism when on** — same plan + seed, same faulted clocks, across
  ``machine.reset()`` and across fresh machines.
* **Engine equivalence under faults** — the flat and reference engines charge
  byte-identical faulted clocks (fault draws are keyed by per-PE state, not
  by call batching).
* **Retry accounting** — recovery cost is zero at drop rate zero and monotone
  non-decreasing in the drop rate (exact, per the truncated-geometric draw),
  verified as a Hypothesis property on a direct exchange harness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import run_on_machine
from repro.dist.backend import use_backend
from repro.machine.counters import FaultCounters
from repro.sim.faults import FaultPlan, FaultState, parse_fault_spec
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import per_pe_workload


ACTIVE_SPEC = (
    "seed:5,stragglers:0.25,spread:0.3,windows:0.2,droprate:0.2,"
    "degrade:0.1,hiccups:2000"
)


def _run(machine, p=8, n_per_pe=60, algorithm="ams", engine="flat", seed=3):
    data = per_pe_workload("uniform", p, n_per_pe, seed=seed)
    return run_on_machine(machine, data, algorithm=algorithm, engine=engine)


def _machine_state(machine):
    """Everything the byte-identity pin compares."""
    return (
        machine.clock.copy(),
        {ph: machine.breakdown.per_pe(ph) for ph in machine.breakdown.phases()},
        machine.counters.summary(),
    )


def _assert_state_equal(a, b):
    clock_a, phases_a, traffic_a = a
    clock_b, phases_b, traffic_b = b
    assert np.array_equal(clock_a, clock_b)
    assert phases_a.keys() == phases_b.keys()
    for ph in phases_a:
        assert np.array_equal(phases_a[ph], phases_b[ph])
    assert traffic_a == traffic_b


class TestSpecParsing:
    def test_round_trip(self):
        plan = parse_fault_spec("stragglers:0.25,droprate:0.1,seed:7")
        assert plan.straggler_fraction == 0.25
        assert plan.drop_rate == 0.1
        assert plan.seed == 7
        assert parse_fault_spec(plan.spec()) == plan

    def test_empty_and_none(self):
        assert parse_fault_spec(None) is None
        assert parse_fault_spec("") is None
        assert parse_fault_spec("  ") is None

    def test_plan_passthrough(self):
        plan = FaultPlan(drop_rate=0.1)
        assert parse_fault_spec(plan) is plan

    def test_hiccup_ms_unit(self):
        plan = parse_fault_spec("hiccups:10,hiccup_ms:0.5")
        assert plan.hiccup_seconds == pytest.approx(5e-4)

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="droprate"):
            parse_fault_spec("dorprate:0.1")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="expected float"):
            parse_fault_spec("droprate:often")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)  # geometric draw needs q < 1
        with pytest.raises(ValueError):
            FaultPlan(straggler_fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan(window_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(window_period_s=0.0)

    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan().spec() == ""

    def test_zero_rate_plan_is_disabled(self):
        # Factors without rates (and vice versa) inject nothing.
        assert not FaultPlan(straggler_factor=8.0).enabled
        assert not FaultPlan(straggler_fraction=0.5, straggler_factor=1.0).enabled
        assert not FaultPlan(hiccup_rate=100.0, hiccup_seconds=0.0).enabled
        assert FaultPlan(drop_rate=0.01).enabled


class TestFaultFreeByteIdentity:
    @pytest.mark.parametrize("backend", ["numpy", "sharedmem:2"])
    @pytest.mark.parametrize("faults", [None, "", FaultPlan(),
                                        FaultPlan(seed=9)])
    def test_no_plan_equals_disabled_plan(self, backend, faults):
        with use_backend(backend):
            base = SimulatedMachine(8, seed=1)
            _run(base)
            other = SimulatedMachine(8, seed=1, faults=faults)
            assert other.faults is None  # nothing to inject -> no fault state
            _run(other)
        _assert_state_equal(_machine_state(base), _machine_state(other))

    def test_summary_dict_has_no_faults_key_when_healthy(self):
        machine = SimulatedMachine(8, seed=1)
        result = _run(machine)
        assert "faults" not in result.summary_dict()

    def test_summary_dict_gains_faults_key_when_active(self):
        machine = SimulatedMachine(8, seed=1, faults="droprate:0.3")
        result = _run(machine)
        summary = result.summary_dict()
        assert summary["faults"]["spec"] == "droprate:0.3"
        assert summary["faults"]["recovery_s"] >= 0.0


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        a = SimulatedMachine(8, seed=1, faults=ACTIVE_SPEC)
        _run(a)
        b = SimulatedMachine(8, seed=1, faults=ACTIVE_SPEC)
        _run(b)
        _assert_state_equal(_machine_state(a), _machine_state(b))
        assert a.faults.counters.summary() == b.faults.counters.summary()

    def test_deterministic_across_reset(self):
        machine = SimulatedMachine(8, seed=1, faults=ACTIVE_SPEC)
        _run(machine)
        first = _machine_state(machine)
        first_faults = machine.faults.counters.summary()
        _run(machine)  # run_on_machine resets the machine (and the tallies)
        _assert_state_equal(first, _machine_state(machine))
        assert machine.faults.counters.summary() == first_faults

    def test_reset_clears_tallies(self):
        machine = SimulatedMachine(8, seed=1, faults="droprate:0.3")
        _run(machine)
        assert machine.faults.counters.summary()["recovery_s"] > 0.0
        machine.reset()
        assert machine.faults.counters.summary()["recovery_s"] == 0.0

    def test_outputs_untouched_by_faults(self):
        # Fault streams are salted away from the sampling streams: the
        # sorted output (and every split decision behind it) is identical.
        clean = SimulatedMachine(8, seed=1)
        r0 = _run(clean)
        faulty = SimulatedMachine(8, seed=1, faults=ACTIVE_SPEC)
        r1 = _run(faulty)
        for a, b in zip(r0.output, r1.output):
            assert np.array_equal(a, b)
        assert faulty.clock.max() > clean.clock.max()


class TestEngineEquivalence:
    @pytest.mark.parametrize("algorithm", ["ams", "rlm"])
    def test_flat_equals_reference_under_faults(self, algorithm):
        flat = SimulatedMachine(16, seed=2, faults=ACTIVE_SPEC)
        _run(flat, p=16, algorithm=algorithm, engine="flat")
        ref = SimulatedMachine(16, seed=2, faults=ACTIVE_SPEC)
        _run(ref, p=16, algorithm=algorithm, engine="reference")
        _assert_state_equal(_machine_state(flat), _machine_state(ref))
        assert flat.faults.counters.summary() == ref.faults.counters.summary()


class TestStragglerScaling:
    def test_uniform_factor_scales_clocks_exactly(self):
        # stragglers:1 slow:2 multiplies every charge by exactly 2.0, and
        # IEEE doubling distributes over sums: total == 2 * clean total.
        clean = SimulatedMachine(8, seed=1)
        _run(clean)
        slowed = SimulatedMachine(8, seed=1, faults="stragglers:1.0,slow:2.0")
        _run(slowed)
        assert np.array_equal(slowed.clock, 2.0 * clean.clock)
        assert slowed.faults.counters.summary()["straggle_s"] > 0.0

    def test_hiccups_pause_clocks(self):
        clean = SimulatedMachine(4, seed=1)
        _run(clean, p=4)
        hic = SimulatedMachine(4, seed=1, faults="hiccups:100000,hiccup_ms:0.01")
        _run(hic, p=4)
        assert hic.faults.counters.summary()["hiccup_events"] > 0
        assert hic.clock.max() > clean.clock.max()

    def test_hiccup_count_monotone_in_time(self):
        state = FaultState(FaultPlan(hiccup_rate=1000.0, hiccup_seconds=1e-4), 4)
        idx = np.zeros(64, dtype=np.int64)
        times = np.linspace(0.0, 0.05, 64)
        counts = state._hiccup_count(idx, times)
        assert (np.diff(counts) >= 0).all()


# --------------------------------------------------------------------------
# Hypothesis properties: retry accounting on a direct exchange harness.
# --------------------------------------------------------------------------
def _exchange_recovery(drop_rate, h, r, p=8, seed=0, max_retries=3):
    """Recovery cost of one synthetic exchange round under ``drop_rate``."""
    if drop_rate == 0.0:
        return 0.0
    state = FaultState(
        FaultPlan(seed=seed, drop_rate=drop_rate, max_retries=max_retries), p
    )
    members = np.arange(p, dtype=np.int64)
    extra = state.exchange_extra(
        members,
        np.zeros(p, dtype=np.int64),
        np.full(p, h, dtype=np.int64),
        np.full(p, r, dtype=np.int64),
        alpha=1e-5,
        beta=2.5e-9,
    )
    assert np.allclose(extra.sum(), state.counters.recovery_s.sum())
    return float(state.counters.recovery_s.sum())


class TestRetryAccounting:
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
            min_size=2, max_size=6,
        ),
        h=st.integers(min_value=0, max_value=10**6),
        r=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovery_monotone_in_drop_rate(self, rates, h, r, seed):
        # Fixed seed => fixed uniforms => the truncated geometric failure
        # count is monotone non-decreasing in the drop rate, exactly.
        costs = [_exchange_recovery(q, h, r, seed=seed) for q in sorted(rates)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    @given(
        h=st.integers(min_value=0, max_value=10**6),
        r=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=20, deadline=None)
    def test_zero_drop_rate_costs_nothing(self, h, r):
        assert _exchange_recovery(0.0, h, r) == 0.0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_idle_pes_unaffected(self, seed):
        # A PE with nothing to send or receive never pays recovery cost.
        state = FaultState(FaultPlan(seed=seed, drop_rate=0.9), 4)
        extra = state.exchange_extra(
            np.arange(4, dtype=np.int64),
            np.zeros(4, dtype=np.int64),
            np.array([100, 0, 50, 0], dtype=np.int64),
            np.array([2, 0, 1, 0], dtype=np.int64),
            alpha=1e-5,
            beta=2.5e-9,
        )
        assert extra[1] == 0.0 and extra[3] == 0.0

    def test_max_retries_caps_failures(self):
        state = FaultState(FaultPlan(drop_rate=0.95, max_retries=2), 64)
        state.exchange_extra(
            np.arange(64, dtype=np.int64),
            np.zeros(64, dtype=np.int64),
            np.full(64, 100, dtype=np.int64),
            np.full(64, 4, dtype=np.int64),
            alpha=1e-5,
            beta=2.5e-9,
        )
        assert state.counters.dropped_rounds.max() <= 2

    def test_deterministic_across_machine_reset(self):
        machine = SimulatedMachine(8, seed=1, faults="droprate:0.3")
        _run(machine)
        first = machine.faults.counters.summary()
        assert first["recovery_s"] > 0.0
        _run(machine)
        assert machine.faults.counters.summary() == first


class TestFaultCounters:
    def test_summary_keys_and_reset(self):
        counters = FaultCounters(4)
        counters.dropped_rounds[1] = 3
        counters.recovery_s[1] = 0.5
        counters.recovery_s[2] = 0.25
        summary = counters.summary()
        assert summary["dropped_rounds"] == 3
        assert summary["recovery_s"] == pytest.approx(0.75)
        assert summary["recovery_s_max"] == pytest.approx(0.5)
        counters.reset()
        assert counters.summary()["recovery_s"] == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            FaultCounters(0)
