"""Tests for :mod:`repro.sim.comm` (collectives and splitting)."""

import numpy as np
import pytest

from repro.machine.spec import laptop_like
from repro.sim.collectives import vector_prefix_sum_reference
from repro.sim.machine import SimulatedMachine


@pytest.fixture
def comm():
    return SimulatedMachine(8, spec=laptop_like(), seed=1).world()


class TestStructure:
    def test_size_and_ranks(self, comm):
        assert comm.size == 8
        assert list(comm.ranks()) == list(range(8))

    def test_global_pe_and_local_rank(self, comm):
        assert comm.global_pe(3) == 3
        assert comm.local_rank_of(5) == 5

    def test_local_rank_of_nonmember(self):
        m = SimulatedMachine(8, spec=laptop_like())
        sub = m.comm([0, 2, 4])
        with pytest.raises(ValueError):
            sub.local_rank_of(1)

    def test_empty_comm_rejected(self):
        m = SimulatedMachine(4, spec=laptop_like())
        with pytest.raises(ValueError):
            m.comm([])

    def test_duplicate_members_deduplicated(self):
        m = SimulatedMachine(4, spec=laptop_like())
        assert m.comm([1, 1, 2]).size == 2


class TestCollectives:
    def test_bcast_returns_value_and_costs(self, comm):
        before = comm.machine.elapsed()
        value = comm.bcast(np.arange(10), root=0)
        assert np.array_equal(value, np.arange(10))
        assert comm.machine.elapsed() > before

    def test_bcast_bad_root(self, comm):
        with pytest.raises(IndexError):
            comm.bcast(1, root=99)

    def test_allgather(self, comm):
        values = list(range(8))
        assert comm.allgather(values) == values

    def test_gather(self, comm):
        assert comm.gather(list(range(8)), root=0) == list(range(8))

    def test_allgather_arrays_concat(self, comm):
        arrays = [np.full(i, i) for i in range(8)]
        out = comm.allgather_arrays(arrays)
        assert out.size == sum(a.size for a in arrays)

    def test_allgather_arrays_merge_sorted(self, comm):
        arrays = [np.sort(np.random.default_rng(i).integers(0, 100, 5)) for i in range(8)]
        out = comm.allgather_arrays(arrays, merge_sorted=True)
        assert np.all(np.diff(out) >= 0)
        assert out.size == 40

    def test_allgather_arrays_all_empty(self, comm):
        out = comm.allgather_arrays([np.empty(0, dtype=np.int64)] * 8)
        assert out.size == 0

    def test_allreduce_scalar_sum_and_max(self, comm):
        values = [float(i) for i in range(8)]
        assert comm.allreduce_scalar(values) == pytest.approx(28.0)
        assert comm.allreduce_scalar(values, op=np.max) == pytest.approx(7.0)

    def test_allreduce_int(self, comm):
        assert comm.allreduce_int([1] * 8) == 8

    def test_allreduce_vec(self, comm):
        arrays = [np.arange(4) for _ in range(8)]
        out = comm.allreduce_vec(arrays)
        assert np.array_equal(out, 8 * np.arange(4))

    def test_allreduce_vec_length_mismatch(self, comm):
        arrays = [np.arange(4) for _ in range(7)] + [np.arange(3)]
        with pytest.raises(ValueError):
            comm.allreduce_vec(arrays)

    def test_exscan_vec_matches_reference(self, comm):
        rng = np.random.default_rng(0)
        vectors = [rng.integers(0, 10, 5) for _ in range(8)]
        prefixes, total = comm.exscan_vec(vectors)
        ref = vector_prefix_sum_reference(vectors)
        for ours, theirs in zip(prefixes, ref):
            assert np.array_equal(ours, theirs)
        assert np.array_equal(total, np.sum(vectors, axis=0))

    def test_exscan_scalar(self, comm):
        prefixes, total = comm.exscan_scalar([1, 2, 3, 4, 5, 6, 7, 8])
        assert prefixes == [0, 1, 3, 6, 10, 15, 21, 28]
        assert total == 36

    def test_wrong_arity_raises(self, comm):
        with pytest.raises(ValueError):
            comm.allgather([1, 2, 3])

    def test_collectives_advance_all_clocks_equally(self, comm):
        comm.allreduce_scalar([1.0] * 8)
        clocks = comm.machine.clock
        assert np.allclose(clocks, clocks[0])
        assert clocks[0] > 0


class TestLocalCharges:
    def test_charge_local(self, comm):
        comm.charge_local(3, 0.5)
        assert comm.machine.clock[3] == 0.5

    def test_charge_local_many_shape(self, comm):
        with pytest.raises(ValueError):
            comm.charge_local_many([0.1] * 3)

    def test_charge_sort_merge_partition(self, comm):
        comm.charge_sort([100] * 8)
        comm.charge_merge([100] * 8, 4)
        comm.charge_partition([100] * 8, 16)
        assert comm.machine.elapsed() > 0

    def test_barrier(self, comm):
        comm.charge_local(0, 1.0)
        t = comm.barrier()
        assert t == pytest.approx(1.0)
        assert np.allclose(comm.machine.clock, 1.0)


class TestSplit:
    def test_split_equal(self, comm):
        groups = comm.split(4)
        assert [g.size for g in groups] == [2, 2, 2, 2]
        assert groups[0].members.tolist() == [0, 1]
        assert groups[3].members.tolist() == [6, 7]

    def test_split_uneven(self):
        comm = SimulatedMachine(10, spec=laptop_like()).world()
        groups = comm.split(4)
        assert [g.size for g in groups] == [3, 3, 2, 2]
        assert sum(g.size for g in groups) == 10

    def test_split_invalid(self, comm):
        with pytest.raises(ValueError):
            comm.split(0)
        with pytest.raises(ValueError):
            comm.split(9)

    def test_split_sizes(self, comm):
        groups = comm.split_sizes([5, 3])
        assert groups[0].size == 5
        assert groups[1].members.tolist() == [5, 6, 7]

    def test_split_sizes_must_cover(self, comm):
        with pytest.raises(ValueError):
            comm.split_sizes([4, 3])

    def test_group_of_rank(self, comm):
        groups = comm.split(4)
        assert comm.group_of_rank(groups, 0) == 0
        assert comm.group_of_rank(groups, 7) == 3

    def test_level_of_subgroup(self):
        machine = SimulatedMachine(32, seed=0)  # supermuc spec, 16 cores/node
        world = machine.world()
        groups = world.split(2)
        assert groups[0].level == 0  # within one node
        assert world.level >= 1
