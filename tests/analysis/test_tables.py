"""Tests for :mod:`repro.analysis.tables`."""

from repro.analysis.tables import format_series, format_table, rows_to_csv


class TestFormatTable:
    def test_basic_layout(self):
        rows = [{"p": 4, "time": 0.5}, {"p": 8, "time": 1.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "p" in lines[1] and "time" in lines[1]
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_explicit_columns_and_missing_values(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows, columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.000123456}], precision=3)
        assert "e-04" in text

    def test_empty_rows(self):
        assert format_table([]) .strip() != None is not True  # no crash
        assert isinstance(format_table([]), str)


class TestFormatSeries:
    def test_series_layout(self):
        text = format_series([1, 2, 4], {"ams": [0.1, 0.2, 0.3], "rlm": [0.2, 0.4, 0.9]},
                             x_label="p", title="scaling")
        assert "scaling" in text
        assert "ams" in text and "rlm" in text
        assert text.count("\n") >= 5

    def test_short_series_padded(self):
        text = format_series([1, 2], {"only_one": [0.5]})
        assert isinstance(text, str)


class TestCSV:
    def test_round_trippable_structure(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        csv = rows_to_csv(rows)
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == "2,y"

    def test_explicit_columns(self):
        csv = rows_to_csv([{"a": 1, "b": 2}], columns=["b"])
        assert csv.strip().splitlines()[0] == "b"
