"""Tests for :mod:`repro.analysis.metrics`."""

import pytest

from repro.analysis.metrics import (
    efficiency,
    median,
    slowdown,
    speedup,
    summarize_runs,
    weak_scaling_efficiency,
)


class TestRatios:
    def test_slowdown(self):
        assert slowdown(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            slowdown(1.0, 0.0)

    def test_speedup_and_efficiency(self):
        assert speedup(10.0, 2.0) == 5.0
        assert efficiency(10.0, 2.0, 5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)

    def test_weak_scaling_efficiency(self):
        eff = weak_scaling_efficiency([1.0, 1.25, 2.0])
        assert eff == [1.0, 0.8, 0.5]
        assert weak_scaling_efficiency([]) == []
        with pytest.raises(ValueError):
            weak_scaling_efficiency([0.0, 1.0])


class TestAggregation:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        with pytest.raises(ValueError):
            median([])

    def test_summarize_runs(self):
        stats = summarize_runs([1.0, 2.0, 4.0])
        assert stats["median"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["spread"] == 3.0
        assert stats["relative_spread"] == pytest.approx(1.5)
        assert stats["runs"] == 3

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize_runs([])
