"""Tests for :mod:`repro.analysis.theory`."""

import pytest

from repro.analysis.theory import (
    ams_sort_time_model,
    exch_lower_bound,
    isoefficiency_ams,
    isoefficiency_rlm,
    isoefficiency_single_level,
    rlm_sort_time_model,
    single_level_sample_sort_time_model,
    startup_bound_multilevel,
)
from repro.machine.spec import supermuc_like


SPEC = supermuc_like()


class TestExchBound:
    def test_formula(self):
        t = exch_lower_bound(SPEC, 1000, 10, level=0)
        assert t == pytest.approx(1000 * SPEC.beta + 10 * SPEC.alpha)

    def test_island_level_costs_more(self):
        assert exch_lower_bound(SPEC, 10**6, 1, level=2) > \
               exch_lower_bound(SPEC, 10**6, 1, level=0)


class TestStartupBound:
    def test_single_level_is_p(self):
        assert startup_bound_multilevel(4096, 1) == pytest.approx(4096)

    def test_two_levels_sqrt(self):
        assert startup_bound_multilevel(4096, 2) == pytest.approx(2 * 64)

    def test_more_levels_fewer_startups_for_large_p(self):
        assert startup_bound_multilevel(32768, 3) < startup_bound_multilevel(32768, 2) \
               < startup_bound_multilevel(32768, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            startup_bound_multilevel(0, 1)


class TestTimeModels:
    def test_components_positive(self):
        for model in (rlm_sort_time_model, ams_sort_time_model):
            terms = model(SPEC, n=10**8, p=1024, levels=2)
            assert all(v >= 0 for v in terms.values())
            assert terms["total"] == pytest.approx(
                sum(v for k, v in terms.items() if k != "total")
            )

    def test_single_level_model(self):
        terms = single_level_sample_sort_time_model(SPEC, n=10**8, p=1024)
        assert terms["total"] > 0
        assert terms["exchange"] > terms["splitter"] * 0  # present

    def test_multilevel_beats_single_level_for_small_n_per_pe(self):
        """The regime of the paper: small n/p, large p — the p startups of the
        single-level algorithm dominate and the 2-level algorithm wins."""
        n_per_pe = 10**4
        p = 32768
        single = single_level_sample_sort_time_model(SPEC, n=n_per_pe * p, p=p)
        multi = ams_sort_time_model(SPEC, n=n_per_pe * p, p=p, levels=2)
        assert multi["total"] < single["total"]

    def test_single_level_wins_for_huge_n_per_pe(self):
        """For very large n/p the extra data movement of multi-level dominates."""
        n_per_pe = 10**8
        p = 256
        single = single_level_sample_sort_time_model(SPEC, n=n_per_pe * p, p=p)
        multi = ams_sort_time_model(SPEC, n=n_per_pe * p, p=p, levels=3)
        assert single["total"] < multi["total"] * 1.5

    def test_ams_model_cheaper_than_rlm_for_small_inputs(self):
        n_per_pe = 10**3
        p = 32768
        ams = ams_sort_time_model(SPEC, n=n_per_pe * p, p=p, levels=2)
        rlm = rlm_sort_time_model(SPEC, n=n_per_pe * p, p=p, levels=2)
        assert ams["total"] <= rlm["total"]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            rlm_sort_time_model(SPEC, 0, 1, 1)
        with pytest.raises(ValueError):
            ams_sort_time_model(SPEC, 10, 2, 1, eps=0)


class TestIsoefficiency:
    def test_relative_order(self):
        # AMS-sort always has the best (smallest) isoefficiency; RLM-sort only
        # beats the single-level bound once sqrt(p) outgrows log^2 p.
        p = 4096
        assert isoefficiency_ams(p, 2) < isoefficiency_rlm(p, 2)
        assert isoefficiency_ams(p, 2) < isoefficiency_single_level(p)
        p_large = 2**20
        assert isoefficiency_rlm(p_large, 2) < isoefficiency_single_level(p_large)

    def test_ams_gap_is_log_squared(self):
        import math

        p = 2**15
        ratio = isoefficiency_rlm(p, 2) / isoefficiency_ams(p, 2)
        assert ratio == pytest.approx(math.log2(p) ** 2)

    def test_more_levels_improve_isoefficiency(self):
        p = 2**20
        assert isoefficiency_ams(p, 3) < isoefficiency_ams(p, 2)

    def test_trivial_p(self):
        assert isoefficiency_ams(1, 2) == 1.0
        assert isoefficiency_rlm(1, 2) == 1.0
        assert isoefficiency_single_level(1) == 1.0
