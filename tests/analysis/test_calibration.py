"""Tests for :mod:`repro.analysis.calibration`."""

import pytest

from repro.analysis.calibration import (
    CalibrationResult,
    calibrate_spec,
    measure_local_costs,
)
from repro.machine.spec import laptop_like


class TestMeasureLocalCosts:
    def test_returns_positive_constants(self):
        result = measure_local_costs(sample_size=20_000, repeats=1)
        assert result.comparison_ns > 0
        assert result.merge_ns > 0
        assert result.partition_ns > 0
        assert result.move_ns > 0
        assert result.sample_size == 20_000

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            measure_local_costs(sample_size=10)

    def test_as_dict(self):
        result = CalibrationResult(1.0, 2.0, 3.0, 4.0, 1000)
        d = result.as_dict()
        assert d["comparison_ns"] == 1.0
        assert d["move_ns"] == 4.0

    def test_copy_cheaper_than_sort(self):
        """Per-element copying is cheaper than per-comparison sorting work by
        construction of the normalisation (sort is divided by log n)."""
        result = measure_local_costs(sample_size=50_000, repeats=2)
        assert result.move_ns < result.comparison_ns * 200  # sanity, not timing-exact


class TestCalibrateSpec:
    def test_network_parameters_untouched(self):
        base = laptop_like()
        calibrated = calibrate_spec(base, sample_size=20_000)
        assert calibrated.alpha == base.alpha
        assert calibrated.beta == base.beta
        assert calibrated.cores_per_node == base.cores_per_node
        assert calibrated.name.endswith("-calibrated")

    def test_local_constants_replaced(self):
        base = laptop_like().with_overrides(comparison_ns=123456.0)
        calibrated = calibrate_spec(base, sample_size=20_000)
        assert calibrated.comparison_ns != base.comparison_ns

    def test_default_base(self):
        calibrated = calibrate_spec(sample_size=20_000)
        assert calibrated.comparison_ns > 0
