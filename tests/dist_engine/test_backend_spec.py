"""Backend-spec validation: every entry point rejects bad specs early.

A typo'd ``--backend sharedmem:abc`` must fail at argument time with a
message naming the offending spec, not sometime later as an opaque crash
inside a worker process.  These tests pin the error text at all four entry
points: ``validate_backend_spec`` itself, ``SimulatedMachine``,
``run_on_machine``, and the ``REPRO_BACKEND`` environment variable.
"""

import numpy as np
import pytest

from repro.core.runner import run_on_machine
from repro.dist.backend import get_backend, validate_backend_spec
from repro.sim.machine import SimulatedMachine


class TestValidateBackendSpec:
    def test_accepts_known_specs(self):
        assert validate_backend_spec(None) is None
        assert validate_backend_spec("") is None
        assert validate_backend_spec("numpy") == "numpy"
        assert validate_backend_spec("sharedmem") == "sharedmem"
        assert validate_backend_spec("sharedmem:4") == "sharedmem:4"
        assert validate_backend_spec("  SharedMem:4 ") == "sharedmem:4"

    def test_non_integer_worker_count(self):
        with pytest.raises(
            ValueError,
            match=r"bad backend spec 'sharedmem:abc': worker count must be "
                  r"an integer",
        ):
            validate_backend_spec("sharedmem:abc")

    def test_zero_worker_count(self):
        with pytest.raises(
            ValueError,
            match=r"bad backend spec 'sharedmem:0': worker count must be >= 1",
        ):
            validate_backend_spec("sharedmem:0")

    def test_negative_worker_count(self):
        with pytest.raises(ValueError, match=r"worker count must be >= 1"):
            validate_backend_spec("sharedmem:-2")

    def test_unknown_backend_lists_the_known_ones(self):
        with pytest.raises(
            ValueError,
            match=r"unknown backend spec 'cuda'; known: numpy, sharedmem",
        ):
            validate_backend_spec("cuda")

    def test_numpy_takes_no_argument(self):
        with pytest.raises(
            ValueError,
            match=r"bad backend spec 'numpy:2': numpy takes no ':' argument",
        ):
            validate_backend_spec("numpy:2")

    def test_source_names_the_entry_point(self):
        with pytest.raises(ValueError, match=r"bad REPRO_BACKEND spec 'sharedmem:x'"):
            validate_backend_spec("sharedmem:x", source="REPRO_BACKEND spec")


class TestEntryPoints:
    def test_simulated_machine_rejects_bad_spec_at_construction(self):
        with pytest.raises(ValueError, match=r"worker count must be an integer"):
            SimulatedMachine(4, backend="sharedmem:abc")

    def test_simulated_machine_rejects_unknown_spec(self):
        with pytest.raises(ValueError, match=r"unknown backend spec 'gpu'"):
            SimulatedMachine(4, backend="gpu")

    def test_run_on_machine_rejects_bad_spec_before_running(self):
        machine = SimulatedMachine(4, seed=0)
        data = [np.arange(8) for _ in range(4)]
        with pytest.raises(ValueError, match=r"worker count must be >= 1"):
            run_on_machine(machine, data, algorithm="ams", backend="sharedmem:0")

    def test_repro_backend_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sharedmem:zero")
        with pytest.raises(
            ValueError,
            match=r"bad REPRO_BACKEND spec 'sharedmem:zero': worker count "
                  r"must be an integer",
        ):
            get_backend(None)

    def test_get_backend_rejects_explicit_bad_spec(self):
        with pytest.raises(ValueError, match=r"unknown backend spec 'mpi'"):
            get_backend("mpi")
