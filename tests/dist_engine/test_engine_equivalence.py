"""Flat engine vs per-PE reference: byte-identical outputs, clocks, phases.

The flat :class:`~repro.dist.array.DistArray` engine is a performance
refactor, not a re-modelling: for every algorithm it must produce exactly
the outputs, per-PE clocks, phase breakdowns and traffic counters of the
seed per-PE implementation.  These tests enforce that contract on
randomized ``(p, n, plan, seed)`` configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ams_sort import ams_sort, ams_sort_reference
from repro.core.baselines import (
    parallel_quicksort,
    parallel_quicksort_reference,
    single_level_mergesort,
    single_level_mergesort_reference,
    single_level_sample_sort,
    single_level_sample_sort_reference,
)
from repro.core.config import AMSConfig, RLMConfig
from repro.core.rlm_sort import rlm_sort, rlm_sort_reference
from repro.core.runner import run_on_machine
from repro.dist.array import DistArray
from repro.machine.spec import laptop_like, supermuc_like
from repro.sim.machine import SimulatedMachine

COUNTER_FIELDS = (
    "messages_sent",
    "messages_received",
    "words_sent",
    "words_received",
    "collective_ops",
    "exchange_ops",
)


def random_data(p, max_n, seed, high=1000):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, high, size=rng.integers(0, max_n + 1)) for _ in range(p)
    ]


def assert_engines_identical(flat_fn, ref_fn, p, data, seed, spec=None, **kwargs):
    """Run both engines on identical machines and compare all observables."""
    spec = spec or laptop_like()
    m_ref = SimulatedMachine(p, spec=spec, seed=seed)
    out_ref = ref_fn(m_ref.world(), [d.copy() for d in data], **kwargs)
    m_flat = SimulatedMachine(p, spec=spec, seed=seed)
    out_flat = flat_fn(m_flat.world(), [d.copy() for d in data], **kwargs)

    assert len(out_ref) == len(out_flat)
    for i, (a, b) in enumerate(zip(out_ref, out_flat)):
        assert np.array_equal(a, b), f"output of PE {i} differs"
    assert np.array_equal(m_ref.clock, m_flat.clock), "clocks differ"
    assert sorted(m_ref.breakdown.phases()) == sorted(m_flat.breakdown.phases())
    for phase in m_ref.breakdown.phases():
        assert np.array_equal(
            m_ref.breakdown.per_pe(phase), m_flat.breakdown.per_pe(phase)
        ), f"phase breakdown of {phase!r} differs"
    for field in COUNTER_FIELDS:
        assert np.array_equal(
            getattr(m_ref.counters, field), getattr(m_flat.counters, field)
        ), f"counter {field} differs"


class TestAMSEquivalence:
    @given(
        st.integers(2, 24),
        st.integers(0, 80),
        st.integers(1, 3),
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomized_configs(self, p, max_n, levels, seed):
        data = random_data(p, max_n, seed)
        config = AMSConfig(levels=levels, node_size=4)
        assert_engines_identical(
            ams_sort, ams_sort_reference, p, data, seed, config=config
        )

    @pytest.mark.parametrize("delivery", ["naive", "randomized", "deterministic", "advanced"])
    def test_delivery_methods(self, delivery):
        data = random_data(16, 200, 42)
        config = AMSConfig(levels=2, node_size=4, delivery=delivery)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 16, data, 42, config=config
        )

    def test_centralized_splitters(self):
        data = random_data(12, 150, 7)
        config = AMSConfig(levels=2, node_size=4, use_fast_sample_sort=False)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 12, data, 7, config=config
        )

    def test_dense_schedule(self):
        data = random_data(8, 120, 5)
        config = AMSConfig(levels=2, node_size=4, exchange_schedule="dense")
        assert_engines_identical(
            ams_sort, ams_sort_reference, 8, data, 5, config=config
        )

    def test_supermuc_spec_node_plan(self):
        data = random_data(64, 60, 3)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 64, data, 3,
            spec=supermuc_like(), config=AMSConfig(levels=2),
        )

    def test_empty_input(self):
        data = [np.empty(0, dtype=np.int64) for _ in range(6)]
        assert_engines_identical(
            ams_sort, ams_sort_reference, 6, data, 1,
            config=AMSConfig(node_size=2),
        )


class TestAMSMultiLevelEquivalence:
    """Pins for the *intermediate* recursion levels of the lockstep engine.

    Three or more levels force at least one level whose islands split into
    multi-PE sub-groups (the final level only produces singletons), so these
    configurations exercise the batched intermediate-level path — sampling,
    grid sample sort (including the off-grid hand-off of non-square
    islands), bucket grouping and multi-PE-group delivery — not just the
    final level that PR 1 already ran in lockstep.
    """

    @pytest.mark.parametrize("p,levels", [(16, 3), (24, 3), (27, 3), (64, 4)])
    def test_three_plus_levels(self, p, levels):
        data = random_data(p, 120, p * levels)
        config = AMSConfig(levels=levels, node_size=2)
        assert_engines_identical(
            ams_sort, ams_sort_reference, p, data, 11, config=config
        )

    @pytest.mark.parametrize(
        "delivery", ["naive", "randomized", "deterministic", "advanced"]
    )
    def test_delivery_methods_three_levels(self, delivery):
        data = random_data(18, 150, 21)
        config = AMSConfig(levels=3, node_size=2, delivery=delivery)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 18, data, 21, config=config
        )

    def test_centralized_splitters_three_levels(self):
        data = random_data(16, 100, 5)
        config = AMSConfig(levels=3, node_size=2, use_fast_sample_sort=False)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 16, data, 5, config=config
        )

    def test_dense_schedule_three_levels(self):
        data = random_data(12, 90, 6)
        config = AMSConfig(levels=3, node_size=2, exchange_schedule="dense")
        assert_engines_identical(
            ams_sort, ams_sort_reference, 12, data, 6, config=config
        )

    def test_explicit_uneven_group_plan(self):
        # Odd factors produce non-power-of-two islands whose sample-sort
        # grids do not cover all PEs (hand-off exchanges at every level).
        data = random_data(18, 100, 8)
        config = AMSConfig(levels=3, group_plan=[3, 3, 2])
        assert_engines_identical(
            ams_sort, ams_sort_reference, 18, data, 8, config=config
        )

    def test_supermuc_three_levels(self):
        data = random_data(64, 60, 9)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 64, data, 9,
            spec=supermuc_like(), config=AMSConfig(levels=3, node_size=4),
        )

    def test_duplicate_heavy_multi_level(self):
        rng = np.random.default_rng(13)
        data = [np.full(rng.integers(0, 40), 7) for _ in range(14)]
        config = AMSConfig(levels=3, node_size=2)
        assert_engines_identical(
            ams_sort, ams_sort_reference, 14, data, 13, config=config
        )


class TestRLMEquivalence:
    @given(
        st.integers(2, 16),
        st.integers(0, 60),
        st.integers(1, 3),
        st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_randomized_configs(self, p, max_n, levels, seed):
        data = random_data(p, max_n, seed)
        config = RLMConfig(levels=levels, node_size=4)
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, p, data, seed, config=config
        )

    @pytest.mark.parametrize("delivery", ["naive", "randomized", "deterministic", "advanced"])
    def test_delivery_methods(self, delivery):
        data = random_data(12, 150, 13)
        config = RLMConfig(levels=2, node_size=4, delivery=delivery)
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, 12, data, 13, config=config
        )


class TestRLMMultiLevelEquivalence:
    """Pins for RLM-sort's batched intermediate levels and multiselects.

    With three levels every level but the last runs many sibling islands,
    so the batched multisequence selection (per-island pivot streams,
    whole-batch window counting) and the batched delivery/merge must match
    the island-by-island reference byte for byte.
    """

    @pytest.mark.parametrize("p,levels", [(16, 3), (18, 3), (27, 3), (32, 4)])
    def test_three_plus_levels(self, p, levels):
        data = random_data(p, 90, p + levels)
        config = RLMConfig(levels=levels, node_size=2)
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, p, data, 17, config=config
        )

    @pytest.mark.parametrize(
        "delivery", ["naive", "randomized", "deterministic", "advanced"]
    )
    def test_delivery_methods_three_levels(self, delivery):
        data = random_data(12, 100, 19)
        config = RLMConfig(levels=3, node_size=2, delivery=delivery)
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, 12, data, 19, config=config
        )

    def test_duplicate_heavy_multi_level(self):
        # All-equal keys make every multiselect pivot land on a duplicate
        # run spanning PE boundaries at every level.
        rng = np.random.default_rng(23)
        data = [np.full(rng.integers(0, 40), 3) for _ in range(12)]
        config = RLMConfig(levels=3, node_size=2)
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, 12, data, 23, config=config
        )

    def test_dense_schedule_three_levels(self):
        data = random_data(12, 80, 29)
        config = RLMConfig(levels=3, node_size=2, exchange_schedule="dense")
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, 12, data, 29, config=config
        )

    def test_supermuc_three_levels(self):
        data = random_data(64, 50, 31)
        assert_engines_identical(
            rlm_sort, rlm_sort_reference, 64, data, 31,
            spec=supermuc_like(), config=RLMConfig(levels=3, node_size=4),
        )


class TestBaselineEquivalence:
    def test_sample_sort(self):
        data = random_data(8, 200, 0)
        assert_engines_identical(
            single_level_sample_sort, single_level_sample_sort_reference,
            8, data, 0,
        )

    @pytest.mark.parametrize("merge_received", [True, False])
    def test_mergesort(self, merge_received):
        data = random_data(8, 200, 1)
        assert_engines_identical(
            single_level_mergesort, single_level_mergesort_reference,
            8, data, 1, merge_received=merge_received,
        )

    def test_quicksort(self):
        data = random_data(8, 200, 2)
        assert_engines_identical(
            parallel_quicksort, parallel_quicksort_reference, 8, data, 2,
        )


class TestFlatCollectives:
    @given(st.integers(1, 8), st.integers(0, 5), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_alltoallv_flat_matches_alltoallv(self, p, max_len, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, max_len + 1, size=(p, p))
        send_lists = [
            [rng.integers(0, 100, size=counts[i, j]) for j in range(p)]
            for i in range(p)
        ]
        m_ref = SimulatedMachine(p, spec=laptop_like(), seed=seed)
        recv_ref = m_ref.world().alltoallv(send_lists)

        m_flat = SimulatedMachine(p, spec=laptop_like(), seed=seed)
        flat_values = np.concatenate(
            [a for row in send_lists for a in row if a.size]
        ) if counts.sum() else np.empty(0, dtype=np.int64)
        send = DistArray.from_sizes(flat_values, counts.sum(axis=1))
        recv, result = m_flat.world().alltoallv_flat(send, counts)

        for j in range(p):
            expect = [a for a in (recv_ref[j][i] for i in range(p)) if a.size]
            expect_cat = np.concatenate(expect) if expect else np.empty(0)
            assert np.array_equal(recv.segment(j), expect_cat)
        assert np.array_equal(m_ref.clock, m_flat.clock)
        for field in COUNTER_FIELDS:
            assert np.array_equal(
                getattr(m_ref.counters, field), getattr(m_flat.counters, field)
            )

    def test_alltoallv_flat_rejects_bad_counts(self):
        machine = SimulatedMachine(2, spec=laptop_like())
        send = DistArray.from_sizes(np.arange(3), [2, 1])
        with pytest.raises(ValueError):
            machine.world().alltoallv_flat(send, np.array([[1, 2], [0, 1]]))


class TestRunnerEngines:
    def test_engine_switch_identical_results(self):
        data = random_data(16, 150, 9)
        results = {}
        for engine in ("flat", "reference"):
            machine = SimulatedMachine(16, spec=laptop_like(), seed=9)
            results[engine] = run_on_machine(
                machine, data, algorithm="ams",
                config=AMSConfig(levels=2, node_size=4), engine=engine,
            )
        a, b = results["flat"], results["reference"]
        assert a.total_time == b.total_time
        assert a.phase_times == b.phase_times
        assert a.traffic == b.traffic
        for x, y in zip(a.output, b.output):
            assert np.array_equal(x, y)

    def test_unknown_engine_rejected(self):
        machine = SimulatedMachine(2, spec=laptop_like())
        with pytest.raises(ValueError):
            run_on_machine(machine, [np.arange(3), np.arange(3)],
                           algorithm="ams", engine="warp")

    def test_dist_array_input_accepted(self):
        data = random_data(8, 100, 4)
        dist = DistArray.from_list(data)
        machine = SimulatedMachine(8, spec=laptop_like(), seed=4)
        res = run_on_machine(machine, dist, algorithm="ams",
                             config=AMSConfig(node_size=2))
        machine2 = SimulatedMachine(8, spec=laptop_like(), seed=4)
        res2 = run_on_machine(machine2, data, algorithm="ams",
                              config=AMSConfig(node_size=2))
        assert res.total_time == res2.total_time
        for x, y in zip(res.output, res2.output):
            assert np.array_equal(x, y)

    def test_dist_array_direct_api(self):
        data = random_data(8, 100, 6)
        dist = DistArray.from_list(data)
        machine = SimulatedMachine(8, spec=laptop_like(), seed=6)
        out = ams_sort(machine.world(), dist, config=AMSConfig(node_size=2))
        assert isinstance(out, DistArray)
        concat = np.concatenate([d for d in data if d.size]) if any(
            d.size for d in data) else np.empty(0, dtype=np.int64)
        assert np.array_equal(out.values, np.sort(concat, kind="stable"))
