"""Tests for the counter-based sampling RNG and the PR 3 flat kernels.

The counter RNG (:mod:`repro.dist.ctr_rng`) underpins the sampled paths of
both engines: every draw is a pure function of ``(seed, level, pe, index)``.
These tests pin the properties the engines rely on — determinism, stability
across :meth:`SimulatedMachine.reset`, independence between streams and
between batched/per-PE invocations — plus Hypothesis oracles for the new
hot-path kernels (key-composed / padded segmented sort, table-accelerated
``blockwise_searchsorted``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.sampling import SamplingParams, draw_samples, draw_samples_flat
from repro.dist.array import DistArray
from repro.dist.ctr_rng import CounterRNG, philox4x32
from repro.dist.flatops import (
    _bucketize_with_table,
    blockwise_searchsorted,
    segmented_sort_values,
)
from repro.sim.machine import SimulatedMachine


class TestPhilox:
    def test_deterministic(self):
        a = philox4x32(np.arange(100), 0, 7, 3, 123, 456)
        b = philox4x32(np.arange(100), 0, 7, 3, 123, 456)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_counter_sensitivity(self):
        y = CounterRNG(0).words(0, 0, np.arange(1000))
        assert np.unique(y).size == 1000  # no collisions across indices

    def test_outputs_are_32_bit_words(self):
        words = philox4x32(np.arange(50), 1, 2, 3, 9, 9)
        for w in words:
            assert w.dtype == np.uint64
            assert int(w.max()) < 2 ** 32

    def test_key_changes_stream(self):
        a = CounterRNG(1).words(0, 0, np.arange(100))
        b = CounterRNG(2).words(0, 0, np.arange(100))
        assert not np.array_equal(a, b)

    def test_level_and_pe_select_streams(self):
        rng = CounterRNG(0)
        base = rng.words(0, 0, np.arange(100))
        assert not np.array_equal(base, rng.words(1, 0, np.arange(100)))
        assert not np.array_equal(base, rng.words(0, 1, np.arange(100)))

    def test_uniforms_in_unit_interval(self):
        u = CounterRNG(3).uniforms(0, 5, np.arange(10_000))
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.02

    def test_integers_respect_bounds(self):
        v = CounterRNG(4).integers(2, 7, np.arange(10_000), 13)
        assert v.min() >= 0 and v.max() < 13
        counts = np.bincount(v, minlength=13)
        assert counts.min() > 0.5 * 10_000 / 13

    def test_integers_reject_zero_bound(self):
        with pytest.raises(ValueError):
            CounterRNG(0).integers(0, 0, np.arange(4), np.array([3, 0, 1, 2]))


class TestSampleRNGStability:
    def test_stable_across_reset(self):
        machine = SimulatedMachine(4, seed=9)
        data = DistArray.from_list([np.arange(50) + 10 * i for i in range(4)])
        before = draw_samples_flat(
            data, 7, machine.sample_rng, 1, np.arange(4)
        )
        machine.advance(0, 1.0)
        machine.reset()
        after = draw_samples_flat(
            data, 7, machine.sample_rng, 1, np.arange(4)
        )
        assert np.array_equal(before.values, after.values)
        assert np.array_equal(before.offsets, after.offsets)

    def test_same_seed_same_machine_instance_independent(self):
        m1 = SimulatedMachine(3, seed=5)
        m2 = SimulatedMachine(3, seed=5)
        data = DistArray.from_list([np.arange(30) for _ in range(3)])
        s1 = draw_samples_flat(data, 5, m1.sample_rng, 0, np.arange(3))
        s2 = draw_samples_flat(data, 5, m2.sample_rng, 0, np.arange(3))
        assert np.array_equal(s1.values, s2.values)

    def test_draws_independent_of_other_streams(self):
        """Drawing a PE alone equals drawing it as part of the whole batch."""
        rng = CounterRNG(11)
        arrays = [np.arange(40) * 3 + i for i in range(6)]
        data = DistArray.from_list(arrays)
        batched = draw_samples_flat(data, 9, rng, 2, np.arange(6))
        for i in range(6):
            solo = draw_samples_flat(
                DistArray.from_list([arrays[i]]), 9, rng, 2,
                np.array([i]),
            )
            assert np.array_equal(batched.segment(i), solo.values), (
                f"PE {i} draws depend on the batching"
            )

    def test_draws_independent_of_level(self):
        rng = CounterRNG(0)
        data = DistArray.from_list([np.arange(100)])
        a = draw_samples_flat(data, 50, rng, 0, np.arange(1))
        b = draw_samples_flat(data, 50, rng, 1, np.arange(1))
        assert not np.array_equal(a.values, b.values)

    def test_reference_wrapper_matches_flat(self):
        rng = CounterRNG(21)
        arrays = [np.arange(25) + i for i in range(5)]
        params = SamplingParams(oversampling=2, overpartitioning=3)
        ref = draw_samples(arrays, params, 5, 2, rng, 0, np.arange(5))
        flat = draw_samples_flat(
            DistArray.from_list(arrays),
            params.samples_per_pe(5, 2), rng, 0, np.arange(5),
        )
        for i, r in enumerate(ref):
            assert np.array_equal(r, flat.segment(i))


class TestSamplingEdgeCases:
    def test_overpartitioning_one(self):
        """b = 1 disables overpartitioning (classic sample sort)."""
        params = SamplingParams(oversampling=4, overpartitioning=1)
        assert params.num_buckets(8) == 8
        data = [np.arange(20) for _ in range(4)]
        samples = draw_samples(
            data, params, 4, 2, CounterRNG(0), 0, np.arange(4)
        )
        assert all(s.size == params.samples_per_pe(4, 2) for s in samples)

    def test_single_pe(self):
        params = SamplingParams(oversampling=2, overpartitioning=2)
        samples = draw_samples(
            [np.arange(10)], params, 1, 1, CounterRNG(0), 0, np.arange(1)
        )
        assert len(samples) == 1
        assert np.isin(samples[0], np.arange(10)).all()

    def test_empty_segments_contribute_nothing(self):
        data = DistArray.from_list(
            [np.arange(10), np.empty(0, dtype=np.int64), np.arange(5)]
        )
        out = draw_samples_flat(data, 4, CounterRNG(0), 0, np.arange(3))
        assert out.segment(0).size == 4
        assert out.segment(1).size == 0
        assert out.segment(2).size == 4

    def test_all_empty(self):
        data = DistArray.from_list([np.empty(0, dtype=np.int64)] * 3)
        out = draw_samples_flat(data, 4, CounterRNG(0), 0, np.arange(3))
        assert out.total == 0
        assert out.p == 3

    def test_per_segment_counts(self):
        data = DistArray.from_list([np.arange(30), np.arange(30)])
        out = draw_samples_flat(
            data, np.array([2, 5]), CounterRNG(0), 0, np.arange(2)
        )
        assert out.sizes().tolist() == [2, 5]

    def test_negative_counts_rejected(self):
        data = DistArray.from_list([np.arange(5)])
        with pytest.raises(ValueError):
            draw_samples_flat(
                data, np.array([-1]), CounterRNG(0), 0, np.arange(1)
            )

    def test_samples_come_from_own_segment(self):
        arrays = [np.full(20, i) for i in range(8)]
        out = draw_samples_flat(
            DistArray.from_list(arrays), 6, CounterRNG(5), 0, np.arange(8)
        )
        for i in range(8):
            assert (out.segment(i) == i).all()


segments_strategy = st.lists(
    st.lists(st.integers(-500, 500), min_size=0, max_size=30),
    min_size=1, max_size=140,
)


class TestSegmentedSortOracle:
    @given(segments_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_per_segment_sort(self, segs):
        arrays = [np.asarray(s, dtype=np.int64) for s in segs]
        dist = DistArray.from_list(arrays)
        out = segmented_sort_values(dist.values, dist.offsets)
        expected = np.concatenate(
            [np.sort(a, kind="stable") for a in arrays]
        ) if dist.total else dist.values
        assert np.array_equal(out, expected)

    @given(st.integers(64, 200), st.integers(0, 12), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_radix_composed_path_large_p(self, p, max_len, seed):
        """Many short bounded-range segments: the key-composed regime."""
        rng = np.random.default_rng(seed)
        arrays = [
            rng.integers(-1000, 1000, size=rng.integers(0, max_len + 1))
            for _ in range(p)
        ]
        dist = DistArray.from_list(arrays)
        out = segmented_sort_values(dist.values, dist.offsets)
        expected = (
            np.concatenate([np.sort(a, kind="stable") for a in arrays])
            if dist.total else dist.values
        )
        assert np.array_equal(out, expected)

    def test_padded_path_wide_values(self):
        """Near-uniform wide-valued segments: the padded rectangle regime."""
        rng = np.random.default_rng(0)
        arrays = [
            rng.integers(0, 2 ** 62, size=rng.integers(28, 33), dtype=np.int64)
            for _ in range(100)
        ]
        dist = DistArray.from_list(arrays)
        out = segmented_sort_values(dist.values, dist.offsets)
        expected = np.concatenate([np.sort(a) for a in arrays])
        assert np.array_equal(out, expected)

    def test_values_equal_to_dtype_max(self):
        """Padding uses the dtype max; real max values must survive."""
        hi = np.iinfo(np.int64).max
        arrays = [np.array([hi, 3, hi], dtype=np.int64)] * 80
        dist = DistArray.from_list(arrays)
        out = segmented_sort_values(dist.values, dist.offsets)
        assert np.array_equal(out, np.tile([3, hi, hi], 80))

    def test_nan_segments_not_padded_away(self):
        """NaNs sort after the inf padding — the padded path must decline."""
        rng = np.random.default_rng(0)
        arrays = []
        for i in range(128):
            a = rng.normal(size=int(rng.integers(3, 6)))
            if i % 3 == 0:
                a[0] = np.nan
            arrays.append(a)
        dist = DistArray.from_list(arrays)
        out = segmented_sort_values(dist.values, dist.offsets)
        expected = np.concatenate([np.sort(a, kind="stable") for a in arrays])
        assert np.array_equal(out, expected, equal_nan=True)
        assert not np.isinf(out).any()

    def test_uint64_beyond_int64_range(self):
        """Small-range uint64 values above 2**63 must not overflow the
        composed int64 key path."""
        rng = np.random.default_rng(0)
        base = np.uint64(2 ** 63)
        arrays = [
            base + rng.integers(0, 512, size=5).astype(np.uint64)
            for _ in range(128)
        ]
        dist = DistArray.from_list(arrays)
        out = segmented_sort_values(dist.values, dist.offsets)
        expected = np.concatenate([np.sort(a) for a in arrays])
        assert np.array_equal(out, expected)


class TestBucketizeOracle:
    @given(
        st.integers(1, 60),
        st.integers(1, 300),
        st.sampled_from(["left", "right"]),
        st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_table_matches_searchsorted(self, n_bounds, n_queries, side, seed):
        rng = np.random.default_rng(seed)
        lo, hi = sorted(rng.integers(-10_000, 10_000, size=2))
        bounds = np.sort(rng.integers(lo, hi + 1, size=n_bounds))
        queries = rng.integers(lo - 100, hi + 100, size=n_queries)
        expected = np.searchsorted(bounds, queries, side=side)
        got = _bucketize_with_table(bounds, queries, side)
        assert np.array_equal(got, expected)

    def test_blockwise_engages_table_path(self):
        rng = np.random.default_rng(1)
        p = 3
        spl = np.sort(rng.integers(0, 2 ** 40, size=64 * p).reshape(p, 64),
                      axis=1).ravel()
        offs = np.arange(p + 1, dtype=np.int64) * 64
        queries = rng.integers(0, 2 ** 40, size=5000 * p)
        qoffs = np.arange(p + 1, dtype=np.int64) * 5000
        out = blockwise_searchsorted(spl, offs, queries, qoffs, side="right")
        expected = np.concatenate([
            np.searchsorted(
                spl[offs[s]:offs[s + 1]],
                queries[qoffs[s]:qoffs[s + 1]], side="right",
            )
            for s in range(p)
        ])
        assert np.array_equal(out, expected)

    def test_extreme_value_span_falls_back(self):
        bounds = np.array([-(2 ** 62) - 5, 2 ** 62 + 5])
        queries = np.array([-(2 ** 63) + 1, 0, 2 ** 62 + 10])
        assert np.array_equal(
            _bucketize_with_table(bounds, queries, "left"),
            np.searchsorted(bounds, queries, side="left"),
        )
