"""Self-healing sharedmem pool: liveness, respawn, retry, degradation.

Infrastructure faults here are *real* — SIGKILL'd worker processes, wedged
workers that ignore SIGTERM, injected pool failures — and the contract
under test is the robustness tentpole's: the backend must recover (respawn
+ bounded shard retry) or degrade to inline numpy execution, and in every
case keep returning arrays byte-identical to the reference.  Modelled time
and RNG streams are never involved: all of this is wall-clock machinery.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.chaos import ChaosPlan, ChaosState, parse_chaos_spec
from repro.dist.backend import NumpyBackend, SharedMemBackend
from repro.dist.backend.supervisor import PoolFailureError, WorkerKernelError

REFERENCE = NumpyBackend()


def fresh_backend(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("min_parallel_elements", 0)
    return SharedMemBackend(**kw)


def force_pool(backend):
    """Run one sharded call so the supervised pool exists."""
    backend.segmented_sort_values(
        np.arange(10)[::-1].copy(), np.array([0, 5, 10], dtype=np.int64)
    )
    assert backend._pool is not None
    return backend._pool


class TestWorkerDeathRecovery:
    def test_sigkill_between_calls_respawns_and_matches_reference(self):
        backend = fresh_backend()
        try:
            rng = np.random.default_rng(0)
            key = rng.integers(0, 64, size=50_000)
            expect = REFERENCE.stable_key_argsort(key, 64)
            assert np.array_equal(backend.stable_key_argsort(key, 64), expect)
            victim = backend._pool.procs()[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            # The next call must detect the corpse, respawn, and still be
            # byte-identical.
            assert np.array_equal(backend.stable_key_argsort(key, 64), expect)
            sup = backend.stats()["supervisor"]
            assert sup["worker_deaths"] >= 1
            assert sup["respawns"] >= 1
            assert backend.effective_name() == "sharedmem"
        finally:
            backend.close()

    def test_sigkill_mid_call_retries_shard(self):
        backend = fresh_backend()
        try:
            pool = force_pool(backend)
            # Park worker 0 on a long sleep, kill it mid-"kernel", and let
            # the supervisor collect: the round must fail over, respawn,
            # and the re-dispatched shard must succeed.
            victim = pool.procs()[0]
            pool._conns[0].send(("debug_sleep", backend._arena.size,
                                 {"seconds": 60}))
            time.sleep(0.2)
            os.kill(victim.pid, signal.SIGKILL)
            status, _ = pool._recv(0, deadline=None)
            assert status == "died"
            pool._respawn(0)
            rng = np.random.default_rng(1)
            values = rng.integers(0, 100, size=20_000)
            offsets = np.array([0, 10_000, 20_000], dtype=np.int64)
            got = backend.segmented_sort_values(values, offsets)
            assert np.array_equal(
                got, REFERENCE.segmented_sort_values(values, offsets)
            )
        finally:
            backend.close()

    def test_deterministic_kernel_error_raises_without_retry(self):
        backend = fresh_backend()
        try:
            pool = force_pool(backend)
            with pytest.raises(WorkerKernelError, match="worker failed"):
                # Bogus descriptor: the worker-side kernel raises — a
                # deterministic error, surfaced immediately, never retried.
                pool.run(
                    [(0, "gather", {"values": (0, "<i8", (4,)),
                                    "indices": (0, "<i8", (4,)),
                                    "out": None, "e0": 0, "e1": 4})],
                    backend._arena.size,
                )
            assert pool.counters["shard_retries"] == 0
        finally:
            backend.close()


class TestCallDeadline:
    def test_stuck_worker_times_out_and_pool_recovers(self):
        backend = fresh_backend(call_timeout_s=0.3, max_shard_retries=1)
        try:
            pool = force_pool(backend)
            with pytest.raises(PoolFailureError, match="deadline"):
                pool.run([(0, "debug_sleep", {"seconds": 60})],
                         backend._arena.size)
            assert pool.counters["call_timeouts"] >= 1
            assert pool.counters["respawns"] >= 1
            # The pool healed: real kernels keep working afterwards.
            values = np.arange(1000)[::-1].copy()
            offsets = np.array([0, 500, 1000], dtype=np.int64)
            got = backend.segmented_sort_values(values, offsets)
            assert np.array_equal(
                got, REFERENCE.segmented_sort_values(values, offsets)
            )
        finally:
            backend.close()


class TestDegradation:
    def _failing_backend(self, degrade_after=2):
        backend = fresh_backend(max_shard_retries=0, degrade_after=degrade_after)
        force_pool(backend)

        def boom(tasks, arena_size):
            raise PoolFailureError("injected pool failure")

        backend._pool.run = boom
        return backend

    def test_consecutive_failures_demote_to_inline(self):
        backend = self._failing_backend(degrade_after=2)
        try:
            rng = np.random.default_rng(2)
            values = rng.integers(0, 50, size=20_000)
            offsets = np.array([0, 10_000, 20_000], dtype=np.int64)
            expect = REFERENCE.segmented_sort_values(values, offsets)
            # Failure 1: falls back inline, still healthy name.
            assert np.array_equal(
                backend.segmented_sort_values(values, offsets), expect
            )
            assert backend.effective_name() == "sharedmem"
            # Failure 2: crosses the threshold — demoted for good.
            assert np.array_equal(
                backend.segmented_sort_values(values, offsets), expect
            )
            assert backend.effective_name() == "sharedmem:degraded->numpy"
            assert backend._pool is None  # reaped
            # Further calls run inline without touching any pool.
            assert np.array_equal(
                backend.segmented_sort_values(values, offsets), expect
            )
            sup = backend.stats()["supervisor"]
            assert sup["degraded"] is not None
            assert sup["inline_fallbacks"] >= 3
            stats = backend.stats()
            assert stats["segmented_sort_values"]["inline"] >= 2
        finally:
            backend.close()

    def test_success_resets_the_failure_streak(self):
        backend = fresh_backend(max_shard_retries=0, degrade_after=2)
        try:
            rng = np.random.default_rng(3)
            values = rng.integers(0, 50, size=20_000)
            offsets = np.array([0, 10_000, 20_000], dtype=np.int64)
            force_pool(backend)
            real_run = backend._pool.run

            def boom(tasks, arena_size):
                raise PoolFailureError("injected")

            backend._pool.run = boom
            backend.segmented_sort_values(values, offsets)  # failure #1
            backend._pool.run = real_run
            backend.segmented_sort_values(values, offsets)  # success: reset
            backend._pool.run = boom
            backend.segmented_sort_values(values, offsets)  # failure #1 again
            assert backend.effective_name() == "sharedmem"
        finally:
            backend.close()

    def test_close_clears_degradation(self):
        backend = self._failing_backend(degrade_after=1)
        rng = np.random.default_rng(4)
        values = rng.integers(0, 50, size=20_000)
        offsets = np.array([0, 10_000, 20_000], dtype=np.int64)
        backend.segmented_sort_values(values, offsets)
        assert backend.effective_name() == "sharedmem:degraded->numpy"
        backend.close()
        assert backend.effective_name() == "sharedmem"
        # And the pool restarts lazily, healthy.
        got = backend.segmented_sort_values(values, offsets)
        assert np.array_equal(
            got, REFERENCE.segmented_sort_values(values, offsets)
        )
        assert backend.effective_name() == "sharedmem"
        backend.close()


class TestShutdownEscalation:
    def test_wedged_worker_is_killed_and_arena_unlinked(self):
        backend = fresh_backend()
        pool = force_pool(backend)
        arena_path = backend._arena.path
        # Wedge worker 0: ignore SIGTERM, sleep far past every join budget.
        pool._conns[0].send(("debug_sleep", backend._arena.size,
                             {"seconds": 300, "ignore_sigterm": True}))
        time.sleep(0.3)
        procs = pool.procs()
        t0 = time.monotonic()
        backend.close()
        elapsed = time.monotonic() - t0
        for proc in procs:
            assert not proc.is_alive()
        assert not os.path.exists(arena_path)  # the /dev/shm leak is fixed
        assert elapsed < 30.0

    def test_close_without_pool_is_a_noop(self):
        backend = fresh_backend()
        backend.close()
        backend.close()


class TestChaosInjection:
    def test_parse_chaos_spec_grammar(self):
        assert parse_chaos_spec(None) is None
        assert parse_chaos_spec("") is None
        plan = parse_chaos_spec("seed:7,kill:0.25,corrupt:0.5,trunc:0.1")
        assert plan == ChaosPlan(seed=7, kill_rate=0.25, corrupt_rate=0.5,
                                 truncate_rate=0.1)
        assert plan.enabled
        assert not ChaosPlan(seed=3).enabled
        with pytest.raises(ValueError, match="unknown key 'frobnicate'"):
            parse_chaos_spec("frobnicate:1")
        with pytest.raises(ValueError, match="kill needs a number"):
            parse_chaos_spec("kill:lots")
        with pytest.raises(ValueError, match=r"must be a rate in \[0, 1\]"):
            parse_chaos_spec("corrupt:1.5")
        with pytest.raises(ValueError, match="exceed 1"):
            parse_chaos_spec("corrupt:0.7,trunc:0.7")

    def test_draws_are_deterministic(self):
        a = ChaosState(parse_chaos_spec("seed:11,kill:0.5"))
        b = ChaosState(parse_chaos_spec("seed:11,kill:0.5"))
        assert [a.kill_worker(4) for _ in range(20)] == [
            b.kill_worker(4) for _ in range(20)
        ]

    def test_cache_corruption_keyed_by_name(self, tmp_path):
        plan = parse_chaos_spec("seed:5,trunc:0.5,corrupt:0.5")
        path = tmp_path / "abcdef.json"
        path.write_text("x" * 100)
        kind_one = ChaosState(plan).maybe_corrupt_cache(path)
        path.write_text("x" * 100)
        kind_two = ChaosState(plan).maybe_corrupt_cache(path)
        assert kind_one == kind_two  # same name, same draw
        assert kind_one in ("truncate", "corrupt")
        assert path.read_bytes() != b"x" * 100

    def test_worker_kills_recover_byte_identically(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed:3,kill:0.4")
        backend = fresh_backend(workers=2)
        try:
            rng = np.random.default_rng(5)
            sup = None
            for trial in range(6):
                key = rng.integers(0, 64, size=30_000)
                assert np.array_equal(
                    backend.stable_key_argsort(key, 64),
                    REFERENCE.stable_key_argsort(key, 64),
                )
                values = rng.integers(0, 1000, size=30_000)
                offsets = np.array([0, 15_000, 30_000], dtype=np.int64)
                assert np.array_equal(
                    backend.segmented_sort_values(values, offsets),
                    REFERENCE.segmented_sort_values(values, offsets),
                )
            sup = backend.stats()["supervisor"]
            # At kill:0.4 across this many dispatch rounds the seeded draws
            # are guaranteed (deterministically) to have injected kills.
            assert sup["chaos_kills"] >= 1
            assert sup["respawns"] >= 1
        finally:
            backend.close()
            monkeypatch.delenv("REPRO_CHAOS")
