"""NumpyBackend vs SharedMemBackend: byte-identical kernels and runs.

The backend layer (:mod:`repro.dist.backend`) is a wall-clock optimisation,
not a re-modelling: every kernel of every backend must return exactly the
bytes of the numpy reference implementation, and an end-to-end sort must
produce the same outputs, clocks, phase breakdowns and traffic counters
regardless of which backend executed it.  These tests force the shared-memory
backend to shard every call (``workers=2, min_parallel_elements=0``) so the
multiprocess merge paths are exercised even on the tiny arrays Hypothesis
generates.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import AMSConfig, RLMConfig
from repro.core.runner import run_on_machine
from repro.dist import flatops
from repro.dist.backend import (
    NumpyBackend,
    SharedMemBackend,
    get_backend,
    use_backend,
)
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import WORKLOADS, per_pe_workload

COUNTER_FIELDS = (
    "messages_sent",
    "messages_received",
    "words_sent",
    "words_received",
    "collective_ops",
    "exchange_ops",
)


@pytest.fixture(scope="module")
def sharded():
    """A shared-memory backend forced to shard every single call."""
    backend = SharedMemBackend(workers=2, min_parallel_elements=0)
    yield backend
    backend.close()


REFERENCE = NumpyBackend()


def assert_identical(a: np.ndarray, b: np.ndarray, what: str) -> None:
    assert a.dtype == b.dtype, f"{what}: dtype {a.dtype} != {b.dtype}"
    assert a.shape == b.shape, f"{what}: shape {a.shape} != {b.shape}"
    assert np.array_equal(a, b), f"{what}: values differ"


# ---------------------------------------------------------------------------
# Hypothesis strategies: ragged CSR layouts with empty segments and
# duplicate-heavy values.
# ---------------------------------------------------------------------------
def csr_layout(draw, max_segments=10, max_len=24, high=12):
    """A ragged CSR (values, offsets) pair; ``high`` small → many duplicates."""
    sizes = draw(
        st.lists(st.integers(0, max_len), min_size=1, max_size=max_segments)
    )
    offsets = np.concatenate([[0], np.cumsum(np.asarray(sizes, dtype=np.int64))])
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.integers(0, high, size=int(offsets[-1]), dtype=np.int64)
    return values, offsets


class TestKernelOracles:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_segmented_sort_values(self, sharded, data):
        values, offsets = csr_layout(data.draw)
        expect = REFERENCE.segmented_sort_values(values, offsets)
        got = sharded.segmented_sort_values(values, offsets)
        assert_identical(expect, got, "segmented_sort_values")

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_segmented_searchsorted(self, sharded, data):
        values, offsets = csr_layout(data.draw)
        values = REFERENCE.segmented_sort_values(values, offsets)
        n_seg = offsets.size - 1
        n_q = data.draw(st.integers(0, 30))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        queries = rng.integers(-2, 14, size=n_q)
        query_seg = rng.integers(0, n_seg, size=n_q)
        side = data.draw(
            st.sampled_from(["left", "right", "mask"])
        )
        if side == "mask":
            side = rng.integers(0, 2, size=n_q).astype(bool)
        expect = REFERENCE.segmented_searchsorted(
            values, offsets, queries, query_seg, side=side
        )
        got = sharded.segmented_searchsorted(
            values, offsets, queries, query_seg, side=side
        )
        assert_identical(expect, got, "segmented_searchsorted")

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_segmented_searchsorted_windowed(self, sharded, data):
        values, offsets = csr_layout(data.draw)
        values = REFERENCE.segmented_sort_values(values, offsets)
        n_seg = offsets.size - 1
        n_q = data.draw(st.integers(0, 20))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        queries = rng.integers(-2, 14, size=n_q)
        query_seg = rng.integers(0, n_seg, size=n_q)
        seg_sizes = (offsets[1:] - offsets[:-1])[query_seg]
        lo = (rng.random(n_q) * (seg_sizes + 1)).astype(np.int64)
        hi = lo + (rng.random(n_q) * (seg_sizes - lo + 1)).astype(np.int64)
        expect = REFERENCE.segmented_searchsorted(
            values, offsets, queries, query_seg, side="right", lo=lo, hi=hi
        )
        got = sharded.segmented_searchsorted(
            values, offsets, queries, query_seg, side="right", lo=lo, hi=hi
        )
        assert_identical(expect, got, "segmented_searchsorted windowed")

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_blockwise_searchsorted(self, sharded, data):
        values, offsets = csr_layout(data.draw)
        values = REFERENCE.segmented_sort_values(values, offsets)
        n_seg = offsets.size - 1
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        q_sizes = rng.integers(0, 12, size=n_seg)
        query_offsets = np.concatenate([[0], np.cumsum(q_sizes)])
        queries = rng.integers(-2, 14, size=int(query_offsets[-1]))
        side = data.draw(st.sampled_from(["left", "right"]))
        expect = REFERENCE.blockwise_searchsorted(
            values, offsets, queries, query_offsets, side=side
        )
        got = sharded.blockwise_searchsorted(
            values, offsets, queries, query_offsets, side=side
        )
        assert_identical(expect, got, "blockwise_searchsorted")

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_ragged_bincount(self, sharded, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        n_seg = data.draw(st.integers(1, 8))
        nbins = rng.integers(0, 6, size=n_seg)
        key_offsets = np.concatenate([[0], np.cumsum(nbins)])
        n = data.draw(st.integers(0, 60))
        seg = rng.integers(0, n_seg, size=n)
        seg = seg[nbins[seg] > 0]
        key = (rng.random(seg.size) * nbins[seg]).astype(np.int64)
        expect = REFERENCE.ragged_bincount(seg, key, key_offsets)
        got = sharded.ragged_bincount(seg, key, key_offsets)
        assert_identical(expect, got, "ragged_bincount")

    @given(st.integers(0, 2**31 - 1), st.integers(0, 80), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_bincount(self, sharded, seed, n, high):
        rng = np.random.default_rng(seed)
        key = rng.integers(0, high, size=n)
        minlength = int(rng.integers(0, 2 * high))
        expect = REFERENCE.bincount(key, minlength=minlength)
        got = sharded.bincount(key, minlength=minlength)
        assert_identical(expect, got, "bincount")

    def test_bincount_weighted_falls_back(self, sharded):
        rng = np.random.default_rng(0)
        key = rng.integers(0, 9, size=200)
        w = rng.random(200)
        expect = REFERENCE.bincount(key, minlength=16, weights=w)
        got = sharded.bincount(key, minlength=16, weights=w)
        assert_identical(expect, got, "bincount weighted")

    @given(st.integers(0, 2**31 - 1), st.integers(0, 120), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_stable_key_argsort(self, sharded, seed, n, bound):
        rng = np.random.default_rng(seed)
        key = rng.integers(0, bound, size=n)
        expect = REFERENCE.stable_key_argsort(key, bound)
        got = sharded.stable_key_argsort(key, bound)
        assert_identical(expect, got, "stable_key_argsort")

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(0, 120),
        st.integers(1, 12),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_stable_two_key_argsort(self, sharded, seed, n, mb, nb):
        rng = np.random.default_rng(seed)
        major = rng.integers(0, mb, size=n)
        minor = rng.integers(0, nb, size=n)
        expect = REFERENCE.stable_two_key_argsort(major, minor, mb, nb)
        got = sharded.stable_two_key_argsort(major, minor, mb, nb)
        assert_identical(expect, got, "stable_two_key_argsort")

    @given(st.integers(0, 2**31 - 1), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_gather(self, sharded, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1000, size=max(n, 1))
        indices = rng.integers(0, values.size, size=n)
        expect = REFERENCE.gather(values, indices)
        got = sharded.gather(values, indices)
        assert_identical(expect, got, "gather")

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_take_ranges(self, sharded, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        values = rng.integers(0, 1000, size=80)
        k = data.draw(st.integers(0, 12))
        lengths = rng.integers(0, 10, size=k)
        starts = rng.integers(0, values.size - 9, size=k) if k else np.empty(
            0, dtype=np.int64
        )
        expect = REFERENCE.take_ranges(values, starts, lengths)
        got = sharded.take_ranges(values, starts, lengths)
        assert_identical(expect, got, "take_ranges")

    def test_forced_backend_really_shards(self, sharded):
        """Large calls must actually hit the worker pool, not the fallback."""
        rng = np.random.default_rng(7)
        values = rng.integers(0, 50, size=100_000)
        offsets = np.array([0, 40_000, 40_000, 100_000], dtype=np.int64)
        sharded.segmented_sort_values(values, offsets)
        sharded.stable_key_argsort(rng.integers(0, 64, size=100_000), 64)
        stats = sharded.stats()
        assert stats["segmented_sort_values"]["sharded"] > 0
        assert stats["stable_key_argsort"]["sharded"] > 0

    def test_float_values_supported(self, sharded):
        rng = np.random.default_rng(3)
        values = rng.random(5000)
        offsets = np.array([0, 1200, 1200, 5000], dtype=np.int64)
        expect = REFERENCE.segmented_sort_values(values, offsets)
        got = sharded.segmented_sort_values(values, offsets)
        assert_identical(expect, got, "segmented_sort_values float")


# ---------------------------------------------------------------------------
# Validation parity: the sharded backend must reject exactly what the
# reference rejects, before any worker sees the call.
# ---------------------------------------------------------------------------
class TestValidationParity:
    def test_searchsorted_window_out_of_range(self, sharded):
        values = np.arange(10)
        offsets = np.array([0, 10])
        q = np.array([5])
        seg = np.array([0])
        with pytest.raises(IndexError):
            sharded.segmented_searchsorted(
                values, offsets, q, seg, lo=np.array([4]), hi=np.array([20])
            )

    def test_searchsorted_bad_segment(self, sharded):
        with pytest.raises(IndexError):
            sharded.segmented_searchsorted(
                np.arange(4), np.array([0, 4]), np.array([1]), np.array([3])
            )

    def test_ragged_bincount_key_out_of_range(self, sharded):
        with pytest.raises((IndexError, ValueError)):
            sharded.ragged_bincount(
                np.array([0]), np.array([5]), np.array([0, 2])
            )

    def test_blockwise_bad_offsets(self, sharded):
        with pytest.raises(ValueError):
            sharded.blockwise_searchsorted(
                np.arange(4), np.array([0, 2, 4]), np.array([1]), np.array([0, 1])
            )


# ---------------------------------------------------------------------------
# End-to-end: whole sorts must be byte-identical across backends.
# ---------------------------------------------------------------------------
def run_with(backend, algorithm, config, p, data, seed):
    machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
    result = run_on_machine(
        machine, [d.copy() for d in data], algorithm=algorithm,
        config=config, backend=backend,
    )
    return machine, result


def assert_runs_identical(backend_b, algorithm, config, p, data, seed=0):
    m_a, r_a = run_with("numpy", algorithm, config, p, data, seed)
    m_b, r_b = run_with(backend_b, algorithm, config, p, data, seed)
    assert m_a.backend_used == "numpy"
    assert m_b.backend_used == "sharedmem"
    for i, (x, y) in enumerate(zip(r_a.output, r_b.output)):
        assert np.array_equal(x, y), f"output of PE {i} differs"
    assert r_a.total_time == r_b.total_time
    assert r_a.phase_times == r_b.phase_times
    assert r_a.traffic == r_b.traffic
    assert np.array_equal(m_a.clock, m_b.clock)
    for phase in m_a.breakdown.phases():
        assert np.array_equal(
            m_a.breakdown.per_pe(phase), m_b.breakdown.per_pe(phase)
        ), f"phase {phase!r} differs"
    for field in COUNTER_FIELDS:
        assert np.array_equal(
            getattr(m_a.counters, field), getattr(m_b.counters, field)
        ), f"counter {field} differs"


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("p", [16, 64])
def test_ams_identical_across_backends(sharded, workload, p):
    data = per_pe_workload(workload, p, 60, seed=p)
    config = AMSConfig(levels=2, node_size=4)
    assert_runs_identical(sharded, "ams", config, p, data, seed=p)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("p", [16, 64])
def test_rlm_identical_across_backends(sharded, workload, p):
    data = per_pe_workload(workload, p, 60, seed=p + 1)
    config = RLMConfig(levels=2, node_size=4)
    assert_runs_identical(sharded, "rlm", config, p, data, seed=p)


def test_three_level_ams_identical(sharded):
    data = per_pe_workload("uniform", 27, 80, seed=3)
    config = AMSConfig(levels=3, node_size=2)
    assert_runs_identical(sharded, "ams", config, 27, data, seed=3)


# ---------------------------------------------------------------------------
# Registry / selection mechanics.
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_get_backend_specs(self):
        assert get_backend("numpy").name == "numpy"
        b = get_backend("sharedmem")
        assert b.name == "sharedmem"
        assert get_backend("sharedmem") is b  # singleton per spec
        b4 = get_backend("sharedmem:4")
        assert b4.workers == 4

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            get_backend("warp")
        with pytest.raises(ValueError):
            get_backend("sharedmem:zero")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sharedmem")
        flatops._BACKEND = None  # force re-resolution
        try:
            assert get_backend(None).name == "sharedmem"
        finally:
            monkeypatch.delenv("REPRO_BACKEND")
            flatops._BACKEND = None

    def test_use_backend_restores(self, sharded):
        before = flatops._active_backend()
        with use_backend(sharded) as active:
            assert active is sharded
            assert flatops._active_backend() is sharded
        assert flatops._active_backend() is before

    def test_dispatch_goes_through_backend(self, sharded):
        rng = np.random.default_rng(11)
        key = rng.integers(0, 32, size=50_000)
        with use_backend(sharded):
            calls_before = sum(
                v["sharded"] + v["inline"]
                for k, v in sharded.stats().items() if k != "supervisor"
            )
            flatops.stable_key_argsort(key, 32)
            calls_after = sum(
                v["sharded"] + v["inline"]
                for k, v in sharded.stats().items() if k != "supervisor"
            )
        assert calls_after > calls_before

    def test_machine_default_backend(self, sharded):
        data = per_pe_workload("uniform", 8, 40, seed=5)
        machine = SimulatedMachine(8, spec=laptop_like(), seed=5, backend=sharded)
        run_on_machine(machine, data, algorithm="ams",
                       config=AMSConfig(node_size=2))
        assert machine.backend_used == "sharedmem"
