"""Property tests for every kernel in :mod:`repro.dist.flatops`.

Each kernel is checked against a brute-force per-segment oracle built from
plain Python loops and ``np.searchsorted``/``np.bincount`` on individual
segments, over Hypothesis-generated ragged layouts (empty segments, empty
queries, duplicate-heavy values, narrow and wide key bounds).  The flat
lockstep engine is nothing but compositions of these kernels, so pinning
them here pins the engine's data plane independently of the simulator.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist.flatops import (
    blockwise_searchsorted,
    concat_ranges,
    map_by_unique,
    ragged_bincount,
    segment_ids,
    segmented_searchsorted,
    segmented_sort_values,
    split_intervals,
    stable_key_argsort,
    stable_two_key_argsort,
)

# ----------------------------------------------------------------------
# Shared strategies
# ----------------------------------------------------------------------

segment_sizes = st.lists(st.integers(0, 12), min_size=1, max_size=8)


def _layout(sizes):
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(sizes, dtype=np.int64), out=offsets[1:])
    return offsets


class TestSegmentIds:
    @given(segment_sizes)
    @settings(max_examples=60, deadline=None)
    def test_matches_repeat(self, sizes):
        offsets = _layout(sizes)
        expected = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
        assert np.array_equal(segment_ids(offsets), expected)


class TestConcatRanges:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 6)),
                    min_size=0, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_range_loop(self, ranges):
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        lengths = np.array([r[1] for r in ranges], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in ranges] or
            [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(concat_ranges(starts, lengths), expected)


class TestStableArgsorts:
    @given(st.lists(st.integers(0, 7), max_size=40), st.integers(8, 2 ** 20))
    @settings(max_examples=60, deadline=None)
    def test_single_key_matches_stable_argsort(self, keys, bound):
        key = np.asarray(keys, dtype=np.int64)
        expected = np.argsort(key, kind="stable")
        assert np.array_equal(stable_key_argsort(key, bound), expected)

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40),
        st.sampled_from([6, 300, 70_000, 2 ** 20]),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_key_matches_lexsort(self, pairs, bound):
        major = np.asarray([p[0] for p in pairs], dtype=np.int64)
        minor = np.asarray([p[1] for p in pairs], dtype=np.int64)
        expected = np.argsort(major * 6 + minor, kind="stable")
        assert np.array_equal(
            stable_two_key_argsort(major, minor, bound, 6), expected
        )


class TestSegmentedSort:
    @given(segment_sizes, st.integers(0, 5), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_segment_sort(self, sizes, high, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, high + 1, size=int(sum(sizes)))
        offsets = _layout(sizes)
        got = segmented_sort_values(values, offsets)
        expected = np.concatenate(
            [np.sort(values[offsets[i]:offsets[i + 1]], kind="stable")
             for i in range(len(sizes))] or [values]
        ) if values.size else values
        assert np.array_equal(got, expected)


class TestSplitIntervals:
    @given(
        st.lists(st.integers(0, 6), min_size=1, max_size=6),
        st.lists(st.integers(0, 25), max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_intervals_partition_and_respect_cuts(self, piece_sizes, cuts):
        bounds = _layout(piece_sizes)
        total = int(bounds[-1])
        cuts_arr = np.asarray(cuts, dtype=np.int64)
        piece_idx, start, length, abs_start = split_intervals(
            bounds, cuts_arr, total
        )
        # Intervals tile [0, total) in order without gaps.
        assert int(length.sum()) == total
        assert np.all(length > 0)
        assert np.array_equal(abs_start, np.cumsum(length) - length)
        # Every interval lies inside its piece and crosses no boundary.
        for pi, s, ln, ab in zip(piece_idx, start, length, abs_start):
            assert bounds[pi] + s == ab
            assert bounds[pi] <= ab and ab + ln <= bounds[pi + 1]
            for c in cuts_arr:
                if 0 < c < total:
                    assert not (ab < c < ab + ln)


class TestSegmentedSearchsorted:
    @given(
        segment_sizes,
        st.lists(st.tuples(st.integers(-2, 14), st.booleans()), max_size=12),
        st.integers(0, 9),
        st.integers(0, 1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_per_segment_searchsorted(self, sizes, queries, high, seed):
        rng = np.random.default_rng(seed)
        segs = [np.sort(rng.integers(0, high + 1, size=s)) for s in sizes]
        values = np.concatenate(segs) if sum(sizes) else np.empty(0, np.int64)
        offsets = _layout(sizes)
        q = np.asarray([x[0] for x in queries])
        right = np.asarray([x[1] for x in queries], dtype=bool)
        seg_of = rng.integers(0, len(sizes), size=len(queries))
        got = segmented_searchsorted(values, offsets, q, seg_of, side=right)
        expected = np.asarray([
            np.searchsorted(segs[s], v, side="right" if r else "left")
            for v, s, r in zip(q, seg_of, right)
        ], dtype=np.int64)
        assert np.array_equal(got, expected)

    @given(segment_sizes, st.integers(0, 4), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_windowed_search_equals_clipped_full_search(self, sizes, high, seed):
        rng = np.random.default_rng(seed)
        segs = [np.sort(rng.integers(0, high + 1, size=s)) for s in sizes]
        values = np.concatenate(segs) if sum(sizes) else np.empty(0, np.int64)
        offsets = _layout(sizes)
        nq = 8
        seg_of = rng.integers(0, len(sizes), size=nq)
        q = rng.integers(-1, high + 2, size=nq)
        lo = np.asarray([rng.integers(0, sizes[s] + 1) for s in seg_of])
        hi = np.asarray([rng.integers(lo[i], sizes[s] + 1)
                         for i, s in enumerate(seg_of)])
        for side in ("left", "right"):
            got = segmented_searchsorted(
                values, offsets, q, seg_of, side=side, lo=lo, hi=hi
            )
            full = np.asarray([
                np.searchsorted(segs[s], v, side=side)
                for v, s in zip(q, seg_of)
            ])
            assert np.array_equal(got, np.clip(full, lo, hi))


class TestBlockwiseSearchsorted:
    @given(segment_sizes, st.lists(st.integers(0, 8), min_size=1, max_size=8),
           st.integers(0, 6), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_matches_segmented_searchsorted(self, sizes, qcounts, high, seed):
        qcounts = (qcounts * len(sizes))[:len(sizes)]
        rng = np.random.default_rng(seed)
        segs = [np.sort(rng.integers(0, high + 1, size=s)) for s in sizes]
        values = np.concatenate(segs) if sum(sizes) else np.empty(0, np.int64)
        offsets = _layout(sizes)
        q_offsets = _layout(qcounts)
        queries = rng.integers(-1, high + 2, size=int(q_offsets[-1]))
        seg_of = np.repeat(np.arange(len(sizes), dtype=np.int64), qcounts)
        for side in ("left", "right"):
            got = blockwise_searchsorted(values, offsets, queries, q_offsets, side=side)
            expected = segmented_searchsorted(values, offsets, queries, seg_of, side=side)
            assert np.array_equal(got, expected)


class TestRaggedBincount:
    @given(segment_sizes, st.lists(st.integers(1, 5), min_size=1, max_size=8),
           st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_segment_bincount(self, item_counts, widths, seed):
        widths = (widths * len(item_counts))[:len(item_counts)]
        rng = np.random.default_rng(seed)
        key_offsets = _layout(widths)
        seg = np.repeat(np.arange(len(item_counts), dtype=np.int64), item_counts)
        key = np.asarray(
            [rng.integers(0, widths[s]) for s in seg], dtype=np.int64
        )
        got = ragged_bincount(seg, key, key_offsets)
        expected = np.concatenate([
            np.bincount(key[seg == s], minlength=widths[s])
            for s in range(len(item_counts))
        ])
        assert np.array_equal(got, expected)


class TestMapByUnique:
    @given(st.lists(st.integers(-50, 50), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_elementwise_application(self, values):
        arr = np.asarray(values, dtype=np.int64)
        fn = lambda m: float(m) * 0.25 + (1.0 if m > 0 else 0.0)
        got = map_by_unique(arr, fn)
        expected = np.asarray([fn(int(m)) for m in arr], dtype=np.float64)
        assert np.array_equal(got, expected)
