"""Tests for :mod:`repro.dist.workspace` — arena mechanics, the
``cached_arange`` release hook, memory-regression budgets, and byte
identity of arena-on vs arena-off runs under both backends."""

import resource
import tracemalloc

import numpy as np
import pytest

from repro.core.config import AMSConfig
from repro.core.runner import run_on_machine
from repro.dist import flatops
from repro.dist.workspace import (
    NullArena,
    WorkspaceArena,
    arena_enabled,
    get_arena,
    reset_arena,
    set_arena,
)
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import per_pe_workload


@pytest.fixture()
def arena():
    """A fresh arena installed as the process arena for the test."""
    a = WorkspaceArena("test")
    set_arena(a)
    yield a
    reset_arena()


class TestCheckoutRecycle:
    def test_recycle_reuses_the_same_buffer(self, arena):
        a = arena.empty(1000, np.int64)
        base = a.base
        arena.recycle(a)
        b = arena.empty(500, np.int64)
        assert b.base is base  # same pooled buffer, best-fit view
        assert b.size == 500

    def test_views_resolve_to_their_buffer(self, arena):
        a = arena.empty(1200, np.float64)
        reshaped = a[:1000].reshape(10, 100)
        arena.recycle(reshaped)
        assert arena.stats()["checked_out"] == 0
        assert arena.stats()["free_buffers"] == 1

    def test_double_recycle_is_a_noop(self, arena):
        a = arena.empty(100)
        arena.recycle(a)
        arena.recycle(a)  # must not double-insert
        assert arena.stats()["free_buffers"] == 1

    def test_foreign_arrays_are_ignored(self, arena):
        foreign = np.arange(50)
        arena.recycle(foreign)
        arena.recycle(None)
        assert arena.stats()["free_buffers"] == 0

    def test_zero_length_checkouts_bypass_the_pool(self, arena):
        a = arena.empty(0)
        assert a.size == 0
        assert arena.stats()["checked_out"] == 0
        arena.recycle(a)

    def test_zeros_and_full_initialise(self, arena):
        z = arena.zeros(64, np.int64)
        assert not z.any()
        arena.recycle(z)
        f = arena.full(64, 7, np.int32)
        assert (f == 7).all() and f.dtype == np.int32

    def test_distinct_dtypes_pool_separately(self, arena):
        a = arena.empty(100, np.int64)
        b = arena.empty(100, np.float64)
        assert a.dtype != b.dtype
        arena.recycle(a, b)
        assert arena.stats()["free_buffers"] == 2

    def test_geometric_growth_is_bounded(self, arena):
        a = arena.empty(1000)
        arena.recycle(a)
        b = arena.empty(1500)  # miss: retire the 1000er, grow to 2*1000
        assert b.base.size == 2000
        arena.recycle(b)
        c = arena.empty(10_000)  # far past 2x: sized by the request
        assert c.base.size == 10_000
        assert arena.stats()["free_buffers"] == 0  # the 2000er was retired


class TestReleaseHook:
    def test_release_drops_pooled_buffers(self, arena):
        arena.recycle(arena.empty(1 << 16))
        assert arena.stats()["owned_bytes"] > 0
        arena.release()
        s = arena.stats()
        assert s["owned_bytes"] == 0 and s["free_buffers"] == 0

    def test_checked_out_buffers_survive_release(self, arena):
        a = arena.empty(4096, np.int64)
        a.fill(3)
        arena.release()
        assert (a == 3).all()  # still usable
        arena.recycle(a)  # forgotten by the release: a no-op
        assert arena.stats()["free_buffers"] == 0

    def test_cached_arange_shrinks_after_release(self, arena):
        """Regression: the old per-dtype ramp cache could never release —
        one large touch pinned the high-water ramp for the process life."""
        big = flatops.cached_arange(1 << 18)
        assert big.size == 1 << 18
        before = arena.stats()["owned_bytes"]
        assert before >= (1 << 18) * 8
        arena.release()
        assert arena.stats()["owned_bytes"] == 0
        small = flatops.cached_arange(16)
        after = arena.stats()["owned_bytes"]
        assert after < before  # the cache actually shrank
        assert np.array_equal(small, np.arange(16))

    def test_cached_arange_is_readonly_and_correct(self, arena):
        r = flatops.cached_arange(100, np.int64)
        assert not r.flags.writeable
        assert np.array_equal(r, np.arange(100))

    def test_high_water_tracks_peak(self, arena):
        arena.recycle(arena.empty(1 << 14))
        peak = arena.stats()["high_water_bytes"]
        arena.release()
        assert arena.stats()["high_water_bytes"] == peak  # survives release

    def test_machine_release_workspace(self, arena):
        machine = SimulatedMachine(8, seed=0)
        assert machine.arena is arena
        arena.recycle(arena.empty(1024))
        machine.release_workspace()
        assert arena.stats()["owned_bytes"] == 0


class TestNullArena:
    def test_null_arena_allocates_fresh(self):
        null = NullArena()
        a = null.empty(100)
        b = null.empty(100)
        assert a.base is None and b.base is None
        null.recycle(a, b)  # no-ops
        null.release()
        assert null.stats()["owned_bytes"] == 0
        assert np.array_equal(null.arange(10), np.arange(10))
        assert not null.zeros(5).any()

    def test_env_toggle_selects_null(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "off")
        assert not arena_enabled()
        reset_arena()
        try:
            assert isinstance(get_arena(), NullArena)
        finally:
            reset_arena()

    def test_default_is_pooling(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARENA", raising=False)
        assert arena_enabled()
        reset_arena()
        try:
            assert isinstance(get_arena(), WorkspaceArena)
        finally:
            reset_arena()


class TestWorkspaceFlatops:
    """The arena-aware flatops paths against their plain equivalents."""

    def test_concat_ranges_workspace_formulation(self, arena):
        rng = np.random.default_rng(0)
        for _ in range(50):
            m = int(rng.integers(1, 30))
            lengths = rng.integers(0, 8, m)
            starts = rng.integers(-50, 100, m)
            ref = flatops.concat_ranges(starts, lengths)
            out = flatops.concat_ranges(starts, lengths, arena=arena)
            assert np.array_equal(out, ref)
            arena.recycle(out)

    def test_repeat_add_matches_repeat_plus_add(self, arena):
        rng = np.random.default_rng(1)
        for dt in (np.int64, np.int32):
            for _ in range(30):
                m = int(rng.integers(1, 20))
                lengths = rng.integers(0, 6, m)
                base = rng.integers(0, 1 << 20, m).astype(dt)
                addend = rng.integers(0, 100, int(lengths.sum())).astype(dt)
                ref = np.repeat(base, lengths) + addend
                out = flatops.repeat_add(base, lengths, addend, arena)
                assert out.dtype == ref.dtype
                assert np.array_equal(out, ref)
                arena.recycle(out)

    def test_segment_ids_arena_variant(self, arena):
        offsets = np.array([0, 3, 3, 7, 10])
        ref = flatops.segment_ids(offsets)
        out = flatops.segment_ids(offsets, arena)
        assert np.array_equal(out, ref)
        arena.recycle(out)

    def test_no_leaks_after_an_engine_run(self, arena):
        machine = SimulatedMachine(64, seed=5)
        data = per_pe_workload("uniform", 64, 200, seed=5)
        run_on_machine(machine, data, algorithm="ams",
                       config=AMSConfig(levels=2), engine="flat")
        assert arena.stats()["checked_out"] == 0


def _run_flat(p, n_per_pe, levels, backend=None):
    machine = SimulatedMachine(p, seed=123, backend=backend)
    data = per_pe_workload("uniform", p, n_per_pe, seed=42)
    result = run_on_machine(
        machine, data, algorithm="ams",
        config=AMSConfig(levels=levels, node_size=8),
        validate=False, engine="flat",
    )
    return result, machine


class TestArenaByteIdentity:
    """Arena on vs off must be invisible: outputs, clocks, counters."""

    @pytest.mark.parametrize("backend", [None, "sharedmem"])
    def test_on_off_identical(self, backend):
        set_arena(WorkspaceArena("on"))
        try:
            res_on, m_on = _run_flat(64, 300, 2, backend=backend)
        finally:
            reset_arena()
        set_arena(NullArena())
        try:
            res_off, m_off = _run_flat(64, 300, 2, backend=backend)
        finally:
            reset_arena()
        for a, b in zip(res_on.output, res_off.output):
            assert np.array_equal(a, b)
        assert res_on.total_time == res_off.total_time
        assert res_on.phase_times == res_off.phase_times
        assert np.array_equal(m_on.clock, m_off.clock)

    def test_release_mid_sequence_is_invisible(self):
        set_arena(WorkspaceArena("a"))
        try:
            res_a, machine = _run_flat(32, 200, 2)
            machine.release_workspace()
            res_b, _ = _run_flat(32, 200, 2)
        finally:
            reset_arena()
        for a, b in zip(res_a.output, res_b.output):
            assert np.array_equal(a, b)
        assert res_a.total_time == res_b.total_time


class TestMemoryRegression:
    def test_tracemalloc_peak_under_budget(self):
        """Peak traced allocation of a warm three-level flat run stays
        under budget.  The raw data is p * n_per_pe * 8 B = 4 MiB; with the
        arena warm the second run peaks ~7.1x that (fresh escapes: level
        DistArrays, argsort permutations, gathers).  The 10x budget pins
        workspace reuse — losing the arena paths regresses past it."""
        p, n_per_pe = 256, 2000
        set_arena(WorkspaceArena("mem"))
        try:
            _run_flat(p, n_per_pe, 3)  # warm the pools and ramps
            tracemalloc.start()
            _run_flat(p, n_per_pe, 3)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        finally:
            reset_arena()
        data_bytes = p * n_per_pe * 8
        assert peak < 10 * data_bytes, (
            f"peak {peak/2**20:.1f} MiB exceeds budget "
            f"({peak/data_bytes:.1f}x the {data_bytes/2**20:.1f} MiB input)"
        )

    def test_ru_maxrss_is_recorded(self):
        """`peak_rss_mb` in bench rows derives from ru_maxrss (KB on
        Linux); sanity-pin the unit so the bench column stays plausible."""
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        assert 10_000 < rss_kb < 100_000_000  # 10 MB .. 100 GB as KB
