"""Seeded-determinism regression: same seed, same machine, same everything.

The lockstep engine derives all randomness from deterministic streams (the
machine's replicated generator, per-PE generators, per-group pivot streams
and seeded Feistel permutations).  Two runs with the same seed must
therefore produce identical outputs, clocks, phase breakdowns and traffic
counters — on the flat engine, on the reference engine, and across the two.
A regression here would mean some state leaked between runs (cached RNGs,
mutated inputs) or a nondeterministic code path slipped into the engine.
"""

import numpy as np
import pytest

from repro.core.config import AMSConfig, RLMConfig
from repro.core.runner import run_on_machine
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine

P_VALUES = (16, 64, 256)


def _run(p, algorithm, config, engine, seed=7):
    rng = np.random.default_rng(1234)
    data = [
        rng.integers(0, 10_000, size=rng.integers(0, 200)) for _ in range(p)
    ]
    machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
    result = run_on_machine(
        machine, [d.copy() for d in data], algorithm=algorithm,
        config=config, engine=engine, validate=False,
    )
    return result, machine


def _assert_identical_runs(p, algorithm, config):
    runs = {}
    for engine in ("flat", "reference"):
        runs[engine] = [_run(p, algorithm, config, engine) for _ in range(2)]

    # Same engine, same seed, run twice: byte-identical everything.
    for engine, ((r1, m1), (r2, m2)) in runs.items():
        for a, b in zip(r1.output, r2.output):
            assert np.array_equal(a, b), f"{engine} outputs differ between runs"
        assert np.array_equal(m1.clock, m2.clock), f"{engine} clocks differ"
        assert r1.phase_times == r2.phase_times
        assert r1.traffic == r2.traffic

    # And across the two engines.
    (rf, mf), _ = runs["flat"]
    (rr, mr), _ = runs["reference"]
    for a, b in zip(rf.output, rr.output):
        assert np.array_equal(a, b), "engines disagree on outputs"
    assert np.array_equal(mf.clock, mr.clock), "engines disagree on clocks"
    assert rf.phase_times == rr.phase_times
    assert rf.traffic == rr.traffic


@pytest.mark.parametrize("p", P_VALUES)
def test_ams_seeded_determinism(p):
    _assert_identical_runs(p, "ams", AMSConfig(levels=3, node_size=4))


@pytest.mark.parametrize("p", P_VALUES)
def test_rlm_seeded_determinism(p):
    _assert_identical_runs(p, "rlm", RLMConfig(levels=3, node_size=4))


@pytest.mark.parametrize("p", P_VALUES)
def test_different_seeds_still_sort(p):
    """Different machine seeds change the modelled run, never the sorted data."""
    (r1, _), (r2, _) = _run(p, "ams", AMSConfig(levels=2), "flat", seed=1), \
        _run(p, "ams", AMSConfig(levels=2), "flat", seed=2)
    a = np.concatenate([np.asarray(x) for x in r1.output])
    b = np.concatenate([np.asarray(x) for x in r2.output])
    assert np.array_equal(a, b)
