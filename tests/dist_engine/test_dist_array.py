"""Tests for :mod:`repro.dist` — the flat DistArray and its kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.array import DistArray
from repro.dist.flatops import (
    concat_ranges,
    segment_ids,
    segmented_sort_values,
    split_intervals,
    stable_key_argsort,
    stable_two_key_argsort,
)


def random_list(rng, p, max_n, high=1000):
    return [
        rng.integers(0, high, size=rng.integers(0, max_n + 1)) for _ in range(p)
    ]


class TestDistArrayBasics:
    def test_from_list_layout(self):
        arrays = [np.array([1, 2]), np.array([], dtype=np.int64), np.array([3])]
        d = DistArray.from_list(arrays)
        assert d.p == 3
        assert d.total == 3
        assert d.offsets.tolist() == [0, 2, 2, 3]
        assert d.values.tolist() == [1, 2, 3]
        assert d.sizes().tolist() == [2, 0, 1]

    def test_segment_views(self):
        d = DistArray.from_list([np.arange(4), np.arange(4, 6)])
        assert d.segment(0).tolist() == [0, 1, 2, 3]
        assert d.segment(1).tolist() == [4, 5]
        with pytest.raises(IndexError):
            d.segment(2)

    def test_slice_segments_zero_copy(self):
        d = DistArray.from_list([np.arange(3), np.arange(3, 5), np.arange(5, 9)])
        sub = d.slice_segments(1, 3)
        assert sub.p == 2
        assert sub.values.tolist() == [3, 4, 5, 6, 7, 8]
        assert sub.offsets.tolist() == [0, 2, 6]
        assert np.shares_memory(sub.values, d.values)

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            DistArray(np.arange(3), np.array([0, 2]))
        with pytest.raises(ValueError):
            DistArray(np.arange(3), np.array([0, 2, 1, 3]))

    def test_empty(self):
        d = DistArray.empty(4, dtype=np.int64)
        assert d.p == 4 and d.total == 0
        assert all(s.size == 0 for s in d.to_list())

    def test_concatenate(self):
        a = DistArray.from_list([np.array([1]), np.array([2, 3])])
        b = DistArray.from_list([np.array([4, 5, 6])])
        c = DistArray.concatenate([a, b])
        assert c.p == 3
        assert c.values.tolist() == [1, 2, 3, 4, 5, 6]
        assert c.sizes().tolist() == [1, 2, 3]


class TestDistArrayRoundTrip:
    @given(st.integers(1, 12), st.integers(0, 30), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_from_list_to_list_identity(self, p, max_n, seed):
        rng = np.random.default_rng(seed)
        arrays = random_list(rng, p, max_n)
        d = DistArray.from_list(arrays)
        back = d.to_list()
        assert len(back) == p
        for a, b in zip(arrays, back):
            assert np.array_equal(a, b)
            assert a.dtype == b.dtype or a.size == 0

    @given(st.integers(1, 10), st.integers(0, 25), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_sort_segments_matches_per_pe_sort(self, p, max_n, seed):
        rng = np.random.default_rng(seed)
        arrays = random_list(rng, p, max_n, high=7)  # many duplicates
        d = DistArray.from_list(arrays)
        flat = d.sort_segments()
        for i, a in enumerate(arrays):
            assert np.array_equal(flat.segment(i), np.sort(a, kind="stable"))


class TestFlatOps:
    def test_segment_ids(self):
        offsets = np.array([0, 2, 2, 5, 5])
        assert segment_ids(offsets).tolist() == [0, 0, 2, 2, 2]

    def test_concat_ranges(self):
        idx = concat_ranges(np.array([5, 0, 9]), np.array([2, 0, 3]))
        assert idx.tolist() == [5, 6, 9, 10, 11]

    @given(st.integers(0, 12), st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_concat_ranges_matches_naive(self, k, seed):
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, 50, size=k)
        lengths = rng.integers(0, 6, size=k)
        expect = [s + j for s, l in zip(starts, lengths) for j in range(l)]
        assert concat_ranges(starts, lengths).tolist() == expect

    def test_segmented_sort_values_small_segments(self):
        # Exercise the lexsort fallback for very short segments.
        offsets = np.arange(0, 101)
        values = np.random.default_rng(0).integers(0, 5, size=100)
        out = segmented_sort_values(values, offsets)
        assert np.array_equal(out, values)  # 1-element segments unchanged

    @given(st.integers(1, 400), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_stable_key_argsort_matches_argsort(self, bound, seed):
        rng = np.random.default_rng(seed)
        key = rng.integers(0, bound, size=200)
        assert np.array_equal(
            stable_key_argsort(key, bound), np.argsort(key, kind="stable")
        )

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_stable_two_key_argsort(self, mb, nb, seed):
        rng = np.random.default_rng(seed)
        major = rng.integers(0, mb, size=300)
        minor = rng.integers(0, nb, size=300)
        expect = np.argsort(major * nb + minor, kind="stable")
        assert np.array_equal(
            stable_two_key_argsort(major, minor, mb, nb), expect
        )

    def test_two_key_argsort_wide_bounds(self):
        rng = np.random.default_rng(3)
        major = rng.integers(0, 5000, size=5000)
        minor = rng.integers(0, 300, size=5000)
        expect = np.argsort(major * 300 + minor, kind="stable")
        assert np.array_equal(
            stable_two_key_argsort(major, minor, 5000, 300), expect
        )

    def test_split_intervals_against_cuts(self):
        # pieces of sizes 3, 4 over [0, 7); cuts at 2 and 5
        piece, off, lengths, abs_start = split_intervals(
            np.array([0, 3, 7]), np.array([2, 5]), 7
        )
        assert abs_start.tolist() == [0, 2, 3, 5]
        assert piece.tolist() == [0, 0, 1, 1]
        assert off.tolist() == [0, 2, 0, 2]
        assert lengths.tolist() == [2, 1, 2, 2]
