"""Flat vs reference engine equivalence across every named workload.

The engine-equivalence suite historically exercised uniform-ish random
inputs only.  The campaign threads a workload axis through every experiment,
so the cross-engine byte-identity contract must hold for every generator in
:data:`repro.workloads.generators.WORKLOADS` — including the adversarial
ones (all-equal keys stress tie-breaking, zipf stresses duplicate handling,
nearly-sorted/staggered stress splitter quality).  For each workload and
``p`` in {16, 64} the flat engine must reproduce the reference engine's
outputs, per-PE clocks, phase breakdowns and traffic counters byte for byte.
"""

import numpy as np
import pytest

from repro.core.config import AMSConfig, RLMConfig
from repro.core.runner import run_on_machine
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import WORKLOADS, per_pe_workload

P_VALUES = (16, 64)
N_PER_PE = {16: 80, 64: 40}

COUNTER_FIELDS = (
    "messages_sent",
    "messages_received",
    "words_sent",
    "words_received",
    "collective_ops",
    "exchange_ops",
)


def _run(workload, p, algorithm, config, engine, seed=11):
    machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
    data = per_pe_workload(workload, p, N_PER_PE[p], seed=seed + 1)
    result = run_on_machine(
        machine, [d.copy() for d in data], algorithm=algorithm,
        config=config, engine=engine, validate=True,
    )
    return result, machine


def _assert_engines_identical(workload, p, algorithm, config):
    res_flat, m_flat = _run(workload, p, algorithm, config, "flat")
    res_ref, m_ref = _run(workload, p, algorithm, config, "reference")

    for i, (a, b) in enumerate(zip(res_flat.output, res_ref.output)):
        assert np.array_equal(a, b), (
            f"{workload} p={p}: output of PE {i} differs between engines"
        )
    assert np.array_equal(m_flat.clock, m_ref.clock), (
        f"{workload} p={p}: per-PE clocks differ between engines"
    )
    assert sorted(m_flat.breakdown.phases()) == sorted(m_ref.breakdown.phases())
    for phase in m_ref.breakdown.phases():
        assert np.array_equal(
            m_flat.breakdown.per_pe(phase), m_ref.breakdown.per_pe(phase)
        ), f"{workload} p={p}: phase {phase!r} breakdown differs"
    for field in COUNTER_FIELDS:
        assert np.array_equal(
            getattr(m_flat.counters, field), getattr(m_ref.counters, field)
        ), f"{workload} p={p}: counter {field} differs"


@pytest.mark.parametrize("p", P_VALUES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_ams_engines_identical_on_workload(workload, p):
    _assert_engines_identical(
        workload, p, "ams", AMSConfig(levels=2, node_size=4)
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_rlm_engines_identical_on_workload(workload):
    # RLM-sort's exact multiselect is the tie-breaking stress path; one
    # machine size keeps the reference-engine cost in budget.
    _assert_engines_identical(
        workload, 16, "rlm", RLMConfig(levels=2, node_size=4)
    )
