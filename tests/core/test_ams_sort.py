"""Tests for :mod:`repro.core.ams_sort`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.sampling import SamplingParams
from repro.core.ams_sort import ams_sort
from repro.core.config import AMSConfig
from repro.core.validation import check_globally_sorted, check_permutation, output_imbalance
from repro.machine.counters import PAPER_PHASES
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import per_pe_workload


def run_ams(p, n_per_pe, workload="uniform", seed=0, **cfg_kwargs):
    machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
    data = per_pe_workload(workload, p, n_per_pe, seed=seed)
    config = AMSConfig(**cfg_kwargs) if cfg_kwargs else AMSConfig(node_size=4)
    output = ams_sort(machine.world(), data, config=config)
    return machine, data, output


class TestAMSCorrectness:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_sorted_permutation(self, levels):
        machine, data, output = run_ams(16, 300, levels=levels, node_size=4)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_single_pe(self):
        machine, data, output = run_ams(1, 100)
        assert output[0].tolist() == sorted(data[0].tolist())

    def test_two_pes(self):
        machine, data, output = run_ams(2, 50)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_non_power_of_two_pes(self):
        machine, data, output = run_ams(12, 200, levels=2, node_size=4)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    @pytest.mark.parametrize("workload", ["uniform", "duplicates", "all_equal",
                                          "nearly_sorted", "reverse", "zipf", "staggered"])
    def test_adversarial_workloads(self, workload):
        machine, data, output = run_ams(8, 150, workload=workload, levels=2, node_size=4)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_empty_input(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        data = [np.empty(0, dtype=np.int64) for _ in range(4)]
        output = ams_sort(machine.world(), data, config=AMSConfig(node_size=2))
        assert all(o.size == 0 for o in output)

    def test_tiny_input(self):
        machine = SimulatedMachine(8, spec=laptop_like())
        data = [np.array([i]) for i in range(8)]
        output = ams_sort(machine.world(), data, config=AMSConfig(node_size=2))
        assert check_permutation(data, output)
        assert check_globally_sorted(output)

    def test_unequal_local_sizes(self):
        machine = SimulatedMachine(6, spec=laptop_like())
        rng = np.random.default_rng(0)
        data = [rng.integers(0, 1000, size=s) for s in (0, 10, 500, 3, 77, 200)]
        output = ams_sort(machine.world(), data, config=AMSConfig(levels=2, node_size=2))
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_wrong_arity(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        with pytest.raises(ValueError):
            ams_sort(machine.world(), [np.array([1])])

    @pytest.mark.parametrize("delivery", ["naive", "randomized", "deterministic", "advanced"])
    def test_all_delivery_methods(self, delivery):
        machine, data, output = run_ams(8, 200, levels=2, node_size=4, delivery=delivery)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_centralized_sample_sort_variant(self):
        machine, data, output = run_ams(8, 200, levels=2, node_size=4,
                                        use_fast_sample_sort=False)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_explicit_group_plan(self):
        machine, data, output = run_ams(16, 100, group_plan=[4, 4], node_size=4)
        assert check_globally_sorted(output)


class TestAMSBalance:
    def test_imbalance_small_with_overpartitioning(self):
        sampling = SamplingParams(oversampling=4, overpartitioning=16)
        machine, data, output = run_ams(16, 2000, levels=1, node_size=4, sampling=sampling)
        assert output_imbalance(output) < 0.25

    def test_overpartitioning_improves_balance(self):
        imb = {}
        for b in (1, 16):
            sampling = SamplingParams(oversampling=2, overpartitioning=b)
            _, _, output = run_ams(16, 2000, levels=1, node_size=4, sampling=sampling, seed=5)
            imb[b] = output_imbalance(output)
        assert imb[16] < imb[1]


class TestAMSInstrumentation:
    def test_phases_recorded(self):
        machine, _, _ = run_ams(16, 500, levels=2, node_size=4)
        phases = machine.breakdown.phases()
        for phase in PAPER_PHASES:
            assert phase in phases, f"missing phase {phase}"
            assert machine.breakdown.max_time(phase) > 0

    def test_multilevel_reduces_startups(self):
        """The central claim: with 2 levels each PE needs far fewer message
        startups than a single level with r = p groups."""
        m1, _, _ = run_ams(64, 200, levels=1, node_size=4, seed=1)
        m2, _, _ = run_ams(64, 200, levels=2, node_size=4, seed=1)
        s1 = m1.counters.max_startups()
        s2 = m2.counters.max_startups()
        assert s2 < s1

    def test_more_levels_move_more_data(self):
        m1, _, _ = run_ams(64, 200, levels=1, node_size=4, seed=2)
        m2, _, _ = run_ams(64, 200, levels=2, node_size=4, seed=2)
        assert m2.counters.total_volume() > m1.counters.total_volume() * 1.2

    def test_deterministic_given_seed(self):
        m1, _, out1 = run_ams(8, 300, levels=2, node_size=4, seed=3)
        m2, _, out2 = run_ams(8, 300, levels=2, node_size=4, seed=3)
        assert m1.elapsed() == pytest.approx(m2.elapsed())
        for a, b in zip(out1, out2):
            assert np.array_equal(a, b)


class TestAMSProperty:
    @given(
        st.integers(2, 10),
        st.integers(0, 60),
        st.integers(1, 3),
        st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_sorted_permutation(self, p, n_per_pe, levels, seed):
        machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 50, size=rng.integers(0, n_per_pe + 1)) for _ in range(p)]
        output = ams_sort(machine.world(), data,
                          config=AMSConfig(levels=levels, node_size=2))
        assert check_globally_sorted(output)
        assert check_permutation(data, output)
