"""Tests for :mod:`repro.core.validation`."""

import numpy as np
import pytest

from repro.core.validation import (
    check_globally_sorted,
    check_permutation,
    group_imbalance,
    output_imbalance,
    validate_output,
)


class TestGloballySorted:
    def test_sorted_output(self):
        assert check_globally_sorted([np.array([1, 2]), np.array([3, 4])])

    def test_unsorted_within_pe(self):
        assert not check_globally_sorted([np.array([2, 1]), np.array([3])])

    def test_boundary_violation(self):
        assert not check_globally_sorted([np.array([1, 5]), np.array([4, 6])])

    def test_empty_pes_allowed(self):
        assert check_globally_sorted([np.array([1]), np.empty(0), np.array([2])])

    def test_equal_boundary_values_allowed(self):
        assert check_globally_sorted([np.array([1, 3]), np.array([3, 4])])


class TestPermutation:
    def test_permutation_holds(self):
        inp = [np.array([3, 1]), np.array([2])]
        out = [np.array([1, 2]), np.array([3])]
        assert check_permutation(inp, out)

    def test_missing_element(self):
        assert not check_permutation([np.array([1, 2])], [np.array([1])])

    def test_changed_element(self):
        assert not check_permutation([np.array([1, 2])], [np.array([1, 3])])

    def test_empty(self):
        assert check_permutation([np.empty(0)], [np.empty(0), np.empty(0)])


class TestImbalance:
    def test_balanced(self):
        assert output_imbalance([np.arange(10), np.arange(10)]) == pytest.approx(0.0)

    def test_imbalanced(self):
        assert output_imbalance([np.arange(15), np.arange(5)]) == pytest.approx(0.5)

    def test_empty(self):
        assert output_imbalance([np.empty(0), np.empty(0)]) == 0.0

    def test_group_imbalance(self):
        assert group_imbalance([10, 10, 10]) == pytest.approx(0.0)
        assert group_imbalance([20, 10, 0]) == pytest.approx(1.0)
        assert group_imbalance([]) == 0.0


class TestValidateOutput:
    def test_passes_and_reports(self):
        inp = [np.array([3, 1]), np.array([2, 4])]
        out = [np.array([1, 2]), np.array([3, 4])]
        report = validate_output(inp, out)
        assert report["globally_sorted"] and report["permutation"]
        assert report["total_elements"] == 4

    def test_raises_on_unsorted(self):
        with pytest.raises(AssertionError):
            validate_output([np.array([1, 2])], [np.array([2, 1])])

    def test_raises_on_lost_elements(self):
        with pytest.raises(AssertionError):
            validate_output([np.array([1, 2])], [np.array([1])])

    def test_raises_on_excess_imbalance(self):
        inp = [np.arange(10), np.arange(10)]
        out = [np.sort(np.concatenate(inp)), np.empty(0, dtype=np.int64)]
        with pytest.raises(AssertionError):
            validate_output(inp, out, max_imbalance=0.5)
