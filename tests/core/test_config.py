"""Tests for :mod:`repro.core.config` (level plans, Table 1)."""

import pytest

from repro.blocks.sampling import SamplingParams
from repro.core.config import AMSConfig, RLMConfig, level_plan


class TestLevelPlan:
    def test_paper_table1_two_levels(self):
        assert level_plan(512, 2) == [32, 16]
        assert level_plan(2048, 2) == [128, 16]
        assert level_plan(8192, 2) == [512, 16]
        assert level_plan(32768, 2) == [2048, 16]

    def test_paper_table1_three_levels(self):
        assert level_plan(512, 3) == [8, 4, 16]
        assert level_plan(2048, 3) == [16, 8, 16]
        assert level_plan(8192, 3) == [32, 16, 16]
        assert level_plan(32768, 3) == [64, 32, 16]

    def test_single_level_splits_to_single_pes(self):
        assert level_plan(512, 1) == [512]
        assert level_plan(7, 1) == [7]

    def test_product_covers_p(self):
        for p in (8, 12, 100, 1000, 4096):
            for k in (1, 2, 3, 4):
                plan = level_plan(p, k, node_size=8)
                product = 1
                for r in plan:
                    product *= r
                assert product >= p

    def test_small_machine(self):
        plan = level_plan(8, 2, node_size=16)
        assert len(plan) == 2
        product = plan[0] * plan[1]
        assert product >= 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            level_plan(0, 2)
        with pytest.raises(ValueError):
            level_plan(16, 0)

    def test_custom_node_size(self):
        plan = level_plan(256, 2, node_size=4)
        assert plan[-1] == 4
        assert plan[0] == 64


class TestAMSConfig:
    def test_defaults(self):
        cfg = AMSConfig()
        assert cfg.levels == 2
        assert cfg.delivery == "deterministic"

    def test_validation(self):
        with pytest.raises(ValueError):
            AMSConfig(levels=0)
        with pytest.raises(ValueError):
            AMSConfig(epsilon=0)
        with pytest.raises(ValueError):
            AMSConfig(delivery="warp")
        with pytest.raises(ValueError):
            AMSConfig(exchange_schedule="bogus")
        with pytest.raises(ValueError):
            AMSConfig(node_size=0)

    def test_plan_for_uses_table1_logic(self):
        cfg = AMSConfig(levels=2, node_size=16)
        assert cfg.plan_for(512) == [32, 16]

    def test_explicit_group_plan(self):
        cfg = AMSConfig(group_plan=[4, 4])
        assert cfg.plan_for(16) == [4, 4]

    def test_invalid_group_plan(self):
        cfg = AMSConfig(group_plan=[0, 4])
        with pytest.raises(ValueError):
            cfg.plan_for(16)

    def test_sampling_defaults_to_paper(self):
        cfg = AMSConfig()
        sampling = cfg.sampling_for(10**6)
        assert sampling.overpartitioning == 16

    def test_explicit_sampling_respected(self):
        sampling = SamplingParams(oversampling=2, overpartitioning=4)
        cfg = AMSConfig(sampling=sampling)
        assert cfg.sampling_for(10**6) is sampling

    def test_with_levels(self):
        cfg = AMSConfig(levels=2).with_levels(3)
        assert cfg.levels == 3


class TestRLMConfig:
    def test_defaults_and_validation(self):
        cfg = RLMConfig()
        assert cfg.levels == 2
        with pytest.raises(ValueError):
            RLMConfig(levels=0)
        with pytest.raises(ValueError):
            RLMConfig(delivery="bogus")

    def test_plan_and_with_levels(self):
        cfg = RLMConfig(levels=3, node_size=16)
        assert cfg.plan_for(32768) == [64, 32, 16]
        assert cfg.with_levels(1).plan_for(64) == [64]
