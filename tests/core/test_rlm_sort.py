"""Tests for :mod:`repro.core.rlm_sort`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import RLMConfig
from repro.core.rlm_sort import rlm_sort
from repro.core.validation import check_globally_sorted, check_permutation
from repro.machine.counters import PAPER_PHASES
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import per_pe_workload


def run_rlm(p, n_per_pe, workload="uniform", seed=0, **cfg_kwargs):
    machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
    data = per_pe_workload(workload, p, n_per_pe, seed=seed)
    cfg_kwargs.setdefault("node_size", 4)
    config = RLMConfig(**cfg_kwargs)
    output = rlm_sort(machine.world(), data, config=config)
    return machine, data, output


class TestRLMCorrectness:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_sorted_permutation(self, levels):
        machine, data, output = run_rlm(16, 200, levels=levels)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_single_pe(self):
        machine, data, output = run_rlm(1, 100)
        assert output[0].tolist() == sorted(data[0].tolist())

    def test_non_power_of_two(self):
        machine, data, output = run_rlm(10, 150, levels=2)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    @pytest.mark.parametrize("workload", ["uniform", "duplicates", "all_equal",
                                          "reverse", "zipf"])
    def test_adversarial_workloads(self, workload):
        machine, data, output = run_rlm(8, 120, workload=workload, levels=2)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_empty_input(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        data = [np.empty(0, dtype=np.int64) for _ in range(4)]
        output = rlm_sort(machine.world(), data, config=RLMConfig(node_size=2))
        assert all(o.size == 0 for o in output)

    def test_unequal_local_sizes(self):
        machine = SimulatedMachine(5, spec=laptop_like())
        rng = np.random.default_rng(1)
        data = [rng.integers(0, 100, size=s) for s in (7, 0, 300, 21, 64)]
        output = rlm_sort(machine.world(), data, config=RLMConfig(levels=2, node_size=2))
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_wrong_arity(self):
        machine = SimulatedMachine(3, spec=laptop_like())
        with pytest.raises(ValueError):
            rlm_sort(machine.world(), [np.array([1])])

    @pytest.mark.parametrize("delivery", ["naive", "randomized", "deterministic", "advanced"])
    def test_all_delivery_methods(self, delivery):
        machine, data, output = run_rlm(8, 150, levels=2, delivery=delivery)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)


class TestRLMPerfectBalance:
    """RLM-sort's distinguishing feature: perfectly balanced output."""

    @pytest.mark.parametrize("levels", [1, 2])
    def test_output_sizes_differ_by_at_most_group_rounding(self, levels):
        p, n_per_pe = 16, 257  # deliberately not divisible
        machine, data, output = run_rlm(p, n_per_pe, levels=levels)
        total = sum(d.size for d in data)
        sizes = np.array([o.size for o in output])
        assert sizes.sum() == total
        # every PE ends up within a few elements of n/p (rounding per level)
        assert sizes.max() - sizes.min() <= 2 * levels + 2

    def test_balance_on_skewed_input(self):
        machine, data, output = run_rlm(8, 400, workload="zipf", levels=2)
        sizes = np.array([o.size for o in output])
        assert sizes.max() - sizes.min() <= 6


class TestRLMInstrumentation:
    def test_phases_recorded(self):
        machine, _, _ = run_rlm(16, 300, levels=2)
        for phase in PAPER_PHASES:
            assert machine.breakdown.max_time(phase) > 0

    def test_multilevel_reduces_startups(self):
        m1, _, _ = run_rlm(64, 100, levels=1, seed=4)
        m2, _, _ = run_rlm(64, 100, levels=2, seed=4)
        assert m2.counters.max_startups() < m1.counters.max_startups()

    def test_deterministic_given_seed(self):
        m1, _, out1 = run_rlm(8, 200, levels=2, seed=6)
        m2, _, out2 = run_rlm(8, 200, levels=2, seed=6)
        assert m1.elapsed() == pytest.approx(m2.elapsed())
        for a, b in zip(out1, out2):
            assert np.array_equal(a, b)


class TestRLMProperty:
    @given(
        st.integers(2, 8),
        st.integers(0, 50),
        st.integers(1, 3),
        st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_sorted_permutation(self, p, n_per_pe, levels, seed):
        machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 40, size=rng.integers(0, n_per_pe + 1)) for _ in range(p)]
        output = rlm_sort(machine.world(), data,
                          config=RLMConfig(levels=levels, node_size=2))
        assert check_globally_sorted(output)
        assert check_permutation(data, output)
