"""Tests for :mod:`repro.core.runner`."""

import numpy as np
import pytest

from repro.core.config import AMSConfig, RLMConfig
from repro.core.runner import (
    ALGORITHMS,
    SortResult,
    distribute_array,
    run_on_machine,
    sort_array,
)
from repro.machine.counters import PAPER_PHASES
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine


class TestDistributeArray:
    def test_even_split(self):
        chunks = distribute_array(np.arange(100), 4)
        assert [c.size for c in chunks] == [25, 25, 25, 25]

    def test_uneven_split(self):
        chunks = distribute_array(np.arange(10), 3)
        assert sum(c.size for c in chunks) == 10
        assert len(chunks) == 3

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            distribute_array(np.arange(4), 0)


class TestSortArray:
    def test_quickstart_flow(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 10**6, size=5000)
        result = sort_array(data, p=8, algorithm="ams",
                            config=AMSConfig(levels=2, node_size=2),
                            spec=laptop_like())
        assert np.array_equal(np.concatenate(result.output), np.sort(data))
        assert result.p == 8
        assert result.n_total == 5000
        assert result.total_time > 0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_registered_algorithms(self, algorithm):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 1000, size=800)
        config = None
        if algorithm == "ams":
            config = AMSConfig(levels=2, node_size=2)
        elif algorithm == "rlm":
            config = RLMConfig(levels=2, node_size=2)
        result = sort_array(data, p=8, algorithm=algorithm, config=config,
                            spec=laptop_like())
        assert np.array_equal(np.concatenate(result.output), np.sort(data))

    def test_algorithm_aliases(self):
        data = np.random.default_rng(2).integers(0, 100, 200)
        for alias in ("AMS-sort", "rlm-sort", "mp-sort", "sample-sort", "quick-sort"):
            result = sort_array(data, p=4, algorithm=alias, spec=laptop_like())
            assert np.array_equal(np.concatenate(result.output), np.sort(data))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            sort_array(np.arange(10), p=2, algorithm="bogosort")


class TestRunOnMachine:
    def test_machine_reset_between_runs(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        data = [np.random.default_rng(i).integers(0, 100, 100) for i in range(4)]
        r1 = run_on_machine(machine, data, algorithm="ams",
                            config=AMSConfig(node_size=2))
        r2 = run_on_machine(machine, data, algorithm="ams",
                            config=AMSConfig(node_size=2))
        assert r1.total_time == pytest.approx(r2.total_time)

    def test_wrong_arity(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        with pytest.raises(ValueError):
            run_on_machine(machine, [np.arange(3)], algorithm="ams")

    def test_kwargs_forwarded_to_baseline(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        data = [np.random.default_rng(i).integers(0, 100, 50) for i in range(4)]
        result = run_on_machine(machine, data, algorithm="samplesort", oversampling=4)
        assert result.algorithm == "samplesort"

    def test_validation_catches_imbalance_bound(self):
        machine = SimulatedMachine(4, spec=laptop_like())
        data = [np.random.default_rng(i).integers(0, 100, 200) for i in range(4)]
        # an absurd bound of 0 imbalance must fail for AMS (it is only (1+eps)-balanced)
        with pytest.raises(AssertionError):
            run_on_machine(machine, data, algorithm="ams",
                           config=AMSConfig(node_size=2), max_imbalance=0.0)


class TestSortResult:
    def _result(self):
        data = np.random.default_rng(3).integers(0, 1000, 2000)
        return sort_array(data, p=8, algorithm="ams",
                          config=AMSConfig(levels=2, node_size=2), spec=laptop_like())

    def test_phase_times_present(self):
        result = self._result()
        for phase in PAPER_PHASES:
            assert phase in result.phase_times

    def test_phase_fraction_sums_below_one_plus_eps(self):
        result = self._result()
        total_fraction = sum(result.phase_fraction(ph) for ph in result.phase_times)
        assert 0.9 < total_fraction < 1.5  # phases overlap only via rounding

    def test_summary_row_fields(self):
        row = self._result().summary_row()
        assert row["algorithm"] == "ams"
        assert row["p"] == 8
        assert "time_s" in row and "imbalance" in row

    def test_elements_per_pe(self):
        result = self._result()
        assert result.elements_per_pe == pytest.approx(250.0)
