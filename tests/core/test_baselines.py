"""Tests for :mod:`repro.core.baselines`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines import (
    parallel_quicksort,
    single_level_mergesort,
    single_level_sample_sort,
)
from repro.core.validation import check_globally_sorted, check_permutation
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import per_pe_workload


ALGOS = {
    "samplesort": single_level_sample_sort,
    "mergesort": single_level_mergesort,
    "quicksort": parallel_quicksort,
}


def run_algo(func, p, n_per_pe, workload="uniform", seed=0, **kwargs):
    machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
    data = per_pe_workload(workload, p, n_per_pe, seed=seed)
    output = func(machine.world(), data, **kwargs)
    return machine, data, output


@pytest.mark.parametrize("name,func", sorted(ALGOS.items()))
class TestBaselineCorrectness:
    def test_sorted_permutation(self, name, func):
        machine, data, output = run_algo(func, 8, 200)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_single_pe(self, name, func):
        machine, data, output = run_algo(func, 1, 50)
        assert output[0].tolist() == sorted(data[0].tolist())

    def test_duplicates(self, name, func):
        machine, data, output = run_algo(func, 8, 100, workload="duplicates")
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_all_equal(self, name, func):
        machine, data, output = run_algo(func, 4, 60, workload="all_equal")
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    def test_empty(self, name, func):
        machine = SimulatedMachine(4, spec=laptop_like())
        data = [np.empty(0, dtype=np.int64) for _ in range(4)]
        output = func(machine.world(), data)
        assert sum(o.size for o in output) == 0

    def test_wrong_arity(self, name, func):
        machine = SimulatedMachine(3, spec=laptop_like())
        with pytest.raises(ValueError):
            func(machine.world(), [np.array([1])])


class TestSampleSortSpecifics:
    def test_dense_schedule_startup_count(self):
        machine, _, _ = run_algo(single_level_sample_sort, 16, 100, schedule="dense")
        # a dense all-to-allv costs p-1 startups per PE on the machine counters' view
        assert machine.counters.max_startups() <= 16

    def test_sparse_schedule_also_correct(self):
        machine, data, output = run_algo(single_level_sample_sort, 8, 100, schedule="sparse")
        assert check_globally_sorted(output)

    def test_higher_oversampling_better_balance(self):
        sizes = {}
        for oversampling in (2, 64):
            _, _, output = run_algo(single_level_sample_sort, 8, 1000,
                                    oversampling=oversampling, seed=2)
            arr = np.array([o.size for o in output], dtype=float)
            sizes[oversampling] = arr.max() / arr.mean()
        assert sizes[64] <= sizes[2] + 0.05


class TestMergesortSpecifics:
    def test_resort_variant_matches_merge_variant(self):
        m1, data, out_merge = run_algo(single_level_mergesort, 6, 150,
                                       merge_received=True, seed=3)
        m2, _, out_resort = run_algo(single_level_mergesort, 6, 150,
                                     merge_received=False, seed=3)
        for a, b in zip(out_merge, out_resort):
            assert np.array_equal(a, b)

    def test_perfectly_balanced_output(self):
        machine, data, output = run_algo(single_level_mergesort, 8, 123)
        sizes = np.array([o.size for o in output])
        assert sizes.max() - sizes.min() <= 1


class TestQuicksortSpecifics:
    def test_moves_data_log_p_times(self):
        """Quicksort's total communication volume grows with log p — the
        'prohibitive communication volume' regime of the introduction."""
        m_small, _, _ = run_algo(parallel_quicksort, 4, 200, seed=1)
        m_big, _, _ = run_algo(parallel_quicksort, 16, 200, seed=1)
        vol_small = m_small.counters.total_volume() / (4 * 200)
        vol_big = m_big.counters.total_volume() / (16 * 200)
        assert vol_big > vol_small

    @given(st.integers(1, 8), st.integers(0, 40), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_property_sorted(self, p, n_per_pe, seed):
        machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 30, size=n_per_pe) for _ in range(p)]
        output = parallel_quicksort(machine.world(), data)
        assert check_globally_sorted(output)
        assert check_permutation(data, output)
