"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.spec import laptop_like, supermuc_like
from repro.sim.machine import SimulatedMachine


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_machine() -> SimulatedMachine:
    """A small 8-PE machine with laptop-like parameters."""
    return SimulatedMachine(8, spec=laptop_like(), seed=7)


@pytest.fixture
def medium_machine() -> SimulatedMachine:
    """A 32-PE machine with SuperMUC-like parameters (node size 16)."""
    return SimulatedMachine(32, spec=supermuc_like(), seed=11)


def make_local_data(p: int, n_per_pe: int, seed: int = 0, high: int = 10**9):
    """Uniform random per-PE integer arrays (test helper)."""
    out = []
    for i in range(p):
        gen = np.random.default_rng(seed * 1000 + i)
        out.append(gen.integers(0, high, size=n_per_pe, dtype=np.int64))
    return out
