"""Tests for :mod:`repro.machine.spec`."""

import math

import pytest

from repro.machine.spec import (
    MachineSpec,
    PRESETS,
    cray_xe6_like,
    cray_xt4_like,
    generic_cluster,
    laptop_like,
    spec_by_name,
    supermuc_like,
)


class TestMachineSpecBasics:
    def test_default_construction(self):
        spec = MachineSpec()
        assert spec.alpha > 0
        assert spec.beta > 0
        assert spec.cores_per_node > 0

    def test_cores_per_island(self):
        spec = MachineSpec(cores_per_node=16, nodes_per_island=512)
        assert spec.cores_per_island == 16 * 512

    def test_beta_levels_monotone(self):
        spec = supermuc_like()
        assert spec.beta_for_level(0) <= spec.beta_for_level(1) <= spec.beta_for_level(2)

    def test_island_penalty_is_four_to_one(self):
        spec = supermuc_like()
        assert spec.beta_for_level(2) == pytest.approx(4.0 * spec.beta_for_level(0))

    def test_with_overrides(self):
        spec = supermuc_like().with_overrides(alpha=1e-3)
        assert spec.alpha == 1e-3
        assert spec.beta == supermuc_like().beta

    def test_describe_contains_fields(self):
        text = supermuc_like().describe()
        assert "alpha" in text and "beta" in text


class TestLocalWorkCharges:
    def test_sort_time_zero_for_trivial(self):
        spec = MachineSpec()
        assert spec.local_sort_time(0) == 0.0
        assert spec.local_sort_time(1) == 0.0

    def test_sort_time_superlinear(self):
        spec = MachineSpec()
        t1 = spec.local_sort_time(1000)
        t2 = spec.local_sort_time(2000)
        assert t2 > 2 * t1 * 0.99  # n log n growth

    def test_merge_time_scales_with_ways(self):
        spec = MachineSpec()
        assert spec.local_merge_time(1000, 16) > spec.local_merge_time(1000, 2)

    def test_merge_time_single_run_is_copy(self):
        spec = MachineSpec()
        assert spec.local_merge_time(1000, 1) == pytest.approx(spec.local_move_time(1000))

    def test_partition_time_zero_for_one_bucket(self):
        spec = MachineSpec()
        assert spec.local_partition_time(1000, 1) == 0.0

    def test_partition_cheaper_than_merge(self):
        spec = supermuc_like()
        assert spec.local_partition_time(1000, 16) < spec.local_merge_time(1000, 16)

    def test_move_time_linear(self):
        spec = MachineSpec()
        assert spec.local_move_time(2000) == pytest.approx(2 * spec.local_move_time(1000))

    def test_negative_sizes_clamped(self):
        spec = MachineSpec()
        assert spec.local_move_time(-5) == 0.0


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_constructible(self, name):
        spec = spec_by_name(name)
        assert isinstance(spec, MachineSpec)
        assert spec.alpha > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            spec_by_name("does-not-exist")

    def test_supermuc_matches_paper_hierarchy(self):
        spec = supermuc_like()
        assert spec.cores_per_node == 16
        assert spec.nodes_per_island == 512

    def test_all_presets_distinct_names(self):
        names = {spec_by_name(n).name for n in PRESETS}
        assert len(names) == len(PRESETS)

    def test_generic_cluster_parameters(self):
        spec = generic_cluster(cores_per_node=8, nodes_per_island=4)
        assert spec.cores_per_node == 8
        assert spec.nodes_per_island == 4

    def test_laptop_has_single_island(self):
        assert laptop_like().island_beta_factor == 1.0

    def test_cray_presets(self):
        assert cray_xt4_like().cores_per_node == 4
        assert cray_xe6_like().cores_per_node == 32
