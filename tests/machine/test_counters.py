"""Tests for :mod:`repro.machine.counters`."""

import numpy as np
import pytest

from repro.machine.counters import (
    PAPER_PHASES,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_OTHER,
    PhaseBreakdown,
    PhaseTimer,
    TrafficCounters,
)


class TestTrafficCounters:
    def test_record_message(self):
        c = TrafficCounters(4)
        c.record_message(0, 3, 100)
        assert c.messages_sent[0] == 1
        assert c.messages_received[3] == 1
        assert c.words_sent[0] == 100
        assert c.words_received[3] == 100

    def test_negative_words_rejected(self):
        c = TrafficCounters(2)
        with pytest.raises(ValueError):
            c.record_message(0, 1, -1)

    def test_max_startups(self):
        c = TrafficCounters(3)
        c.record_message(0, 1, 10)
        c.record_message(0, 2, 10)
        c.record_message(1, 2, 10)
        assert c.max_startups() == 2  # PE 0 sent 2, PE 2 received 2

    def test_max_and_total_volume(self):
        c = TrafficCounters(3)
        c.record_message(0, 1, 10)
        c.record_message(2, 1, 30)
        assert c.max_volume() == 40
        assert c.total_volume() == 40
        assert c.total_messages() == 2

    def test_collective_and_exchange_ops(self):
        c = TrafficCounters(4)
        c.record_collective([0, 1, 2, 3])
        c.record_exchange([0, 1])
        assert c.collective_ops[0] == 1
        assert c.exchange_ops[0] == 1
        assert c.exchange_ops[3] == 0

    def test_summary_keys(self):
        c = TrafficCounters(2)
        summary = c.summary()
        assert set(summary) >= {
            "total_messages",
            "total_words",
            "max_startups_per_pe",
            "max_words_per_pe",
        }

    def test_reset(self):
        c = TrafficCounters(2)
        c.record_message(0, 1, 5)
        c.reset()
        assert c.total_messages() == 0
        assert c.total_volume() == 0

    def test_invalid_pe_count(self):
        with pytest.raises(ValueError):
            TrafficCounters(0)


class TestPhaseBreakdown:
    def test_add_and_max(self):
        b = PhaseBreakdown(4)
        b.add(PHASE_LOCAL_SORT, 0, 1.0)
        b.add(PHASE_LOCAL_SORT, 1, 3.0)
        assert b.max_time(PHASE_LOCAL_SORT) == 3.0
        assert b.mean_time(PHASE_LOCAL_SORT) == 1.0

    def test_negative_time_rejected(self):
        b = PhaseBreakdown(2)
        with pytest.raises(ValueError):
            b.add(PHASE_LOCAL_SORT, 0, -0.1)

    def test_add_many(self):
        b = PhaseBreakdown(3)
        b.add_many(PHASE_DATA_DELIVERY, np.array([1.0, 2.0, 3.0]))
        assert b.max_time(PHASE_DATA_DELIVERY) == 3.0

    def test_add_many_wrong_shape(self):
        b = PhaseBreakdown(3)
        with pytest.raises(ValueError):
            b.add_many(PHASE_DATA_DELIVERY, np.array([1.0, 2.0]))

    def test_total_max_sums_phases(self):
        b = PhaseBreakdown(2)
        b.add(PHASE_LOCAL_SORT, 0, 1.0)
        b.add(PHASE_DATA_DELIVERY, 1, 2.0)
        assert b.total_max() == pytest.approx(3.0)

    def test_unknown_phase_zero(self):
        b = PhaseBreakdown(2)
        assert b.max_time("nonexistent") == 0.0
        assert b.per_pe("nonexistent").tolist() == [0.0, 0.0]

    def test_as_dict_with_explicit_phases(self):
        b = PhaseBreakdown(2)
        b.add(PHASE_LOCAL_SORT, 0, 1.0)
        d = b.as_dict(PAPER_PHASES)
        assert set(d) == set(PAPER_PHASES)

    def test_merge(self):
        b1 = PhaseBreakdown(2)
        b2 = PhaseBreakdown(2)
        b1.add(PHASE_LOCAL_SORT, 0, 1.0)
        b2.add(PHASE_LOCAL_SORT, 0, 2.0)
        b1.merge(b2)
        assert b1.max_time(PHASE_LOCAL_SORT) == 3.0

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            PhaseBreakdown(2).merge(PhaseBreakdown(3))

    def test_reset(self):
        b = PhaseBreakdown(2)
        b.add(PHASE_LOCAL_SORT, 0, 1.0)
        b.reset()
        assert b.phases() == []


class TestPhaseTimer:
    def test_nesting_restores_previous(self):
        class Dummy:
            current_phase = PHASE_OTHER

        machine = Dummy()
        with PhaseTimer(machine, PHASE_LOCAL_SORT):
            assert machine.current_phase == PHASE_LOCAL_SORT
            with PhaseTimer(machine, PHASE_DATA_DELIVERY):
                assert machine.current_phase == PHASE_DATA_DELIVERY
            assert machine.current_phase == PHASE_LOCAL_SORT
        assert machine.current_phase == PHASE_OTHER

    def test_paper_phases_complete(self):
        assert len(PAPER_PHASES) == 4
