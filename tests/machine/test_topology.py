"""Tests for :mod:`repro.machine.topology`."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.spec import supermuc_like
from repro.machine.topology import (
    FlatTopology,
    HierarchicalTopology,
    TorusTopology,
    topology_for,
)


class TestFlatTopology:
    def test_all_distances_zero(self):
        topo = FlatTopology(8)
        for a in range(8):
            for b in range(8):
                assert topo.distance_level(a, b) == 0

    def test_out_of_range_raises(self):
        topo = FlatTopology(4)
        with pytest.raises(IndexError):
            topo.distance_level(0, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FlatTopology(0)

    def test_no_natural_groups(self):
        assert FlatTopology(16).natural_group_sizes() == []


class TestHierarchicalTopology:
    def test_same_node_level_zero(self):
        topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
        assert topo.distance_level(0, 3) == 0
        assert topo.distance_level(5, 6) == 0

    def test_same_island_level_one(self):
        topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
        assert topo.distance_level(0, 4) == 1
        assert topo.distance_level(0, 15) == 1

    def test_cross_island_level_two(self):
        topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
        assert topo.distance_level(0, 16) == 2
        assert topo.distance_level(0, 63) == 2

    def test_coordinates_roundtrip(self):
        topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
        coord = topo.coordinate(23)
        pe = coord.island * 16 + coord.node * 4 + coord.core
        assert pe == 23

    def test_natural_group_sizes(self):
        topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
        assert topo.natural_group_sizes() == [4, 16]

    def test_natural_groups_small_machine(self):
        topo = HierarchicalTopology(4, cores_per_node=16, nodes_per_island=512)
        assert topo.natural_group_sizes() == []

    def test_islands_and_nodes_used(self):
        topo = HierarchicalTopology(40, cores_per_node=4, nodes_per_island=4)
        assert topo.nodes_used() == 10
        assert topo.islands_used() == 3

    def test_max_distance_level_contiguous_range(self):
        topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
        assert topo.max_distance_level(range(0, 4)) == 0
        assert topo.max_distance_level(range(0, 16)) == 1
        assert topo.max_distance_level(range(0, 64)) == 2
        assert topo.max_distance_level([3]) == 0

    @given(st.integers(1, 200), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_distance_symmetric(self, p, cores, nodes):
        topo = HierarchicalTopology(p, cores_per_node=cores, nodes_per_island=nodes)
        a, b = 0, p - 1
        assert topo.distance_level(a, b) == topo.distance_level(b, a)


class TestTorusTopology:
    def test_default_dims_cover_p(self):
        topo = TorusTopology(100)
        assert topo.dims[0] * topo.dims[1] * topo.dims[2] >= 100

    def test_explicit_dims_too_small(self):
        with pytest.raises(ValueError):
            TorusTopology(100, dims=(4, 4, 4))

    def test_neighbour_distance(self):
        topo = TorusTopology(27, dims=(3, 3, 3))
        assert topo.hop_distance(0, 1) == 1
        assert topo.distance_level(0, 1) == 0

    def test_wraparound(self):
        topo = TorusTopology(27, dims=(3, 3, 3))
        # coordinate 0 and coordinate 2 along the last dim are neighbours via wraparound
        assert topo.hop_distance(0, 2) == 1

    def test_self_distance(self):
        topo = TorusTopology(27, dims=(3, 3, 3))
        assert topo.distance_level(5, 5) == 0

    def test_diameter_positive(self):
        topo = TorusTopology(64, dims=(4, 4, 4))
        assert topo.diameter() == 6

    def test_far_nodes_more_expensive(self):
        topo = TorusTopology(1000, dims=(10, 10, 10))
        near = topo.distance_level(0, 1)
        far = topo.distance_level(0, 555)
        assert far >= near


class TestTopologyFor:
    def test_hierarchical_from_spec(self):
        spec = supermuc_like()
        topo = topology_for(64, spec=spec)
        assert isinstance(topo, HierarchicalTopology)
        assert topo.cores_per_node == spec.cores_per_node

    def test_flat(self):
        assert isinstance(topology_for(8, kind="flat"), FlatTopology)

    def test_torus(self):
        assert isinstance(topology_for(8, kind="torus"), TorusTopology)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            topology_for(8, kind="ring")
