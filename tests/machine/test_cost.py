"""Tests for :mod:`repro.machine.cost`."""

import math

import pytest

from repro.machine.cost import CostModel, LocalWorkModel
from repro.machine.spec import MachineSpec, supermuc_like
from repro.machine.topology import HierarchicalTopology, FlatTopology


@pytest.fixture
def model():
    spec = supermuc_like()
    topo = HierarchicalTopology(64, cores_per_node=4, nodes_per_island=4)
    return CostModel(spec, topo)


class TestMessageAndCollectives:
    def test_message_time_formula(self, model):
        t = model.message_time(1000, level=0)
        assert t == pytest.approx(model.spec.alpha + 1000 * model.spec.beta)

    def test_message_negative_size(self, model):
        with pytest.raises(ValueError):
            model.message_time(-1)

    def test_collective_single_pe_free(self, model):
        assert model.collective_time(1, words=100) == 0.0

    def test_collective_log_growth(self, model):
        t2 = model.collective_time(2, words=1)
        t1024 = model.collective_time(1024, words=1)
        assert t1024 == pytest.approx(t2 * 10, rel=0.05)

    def test_collective_word_term(self, model):
        small = model.collective_time(16, words=1)
        big = model.collective_time(16, words=10000)
        assert big > small

    def test_collective_rounds_factor(self, model):
        gather = model.collective_time(16, words=10, rounds_factor=16)
        bcast = model.collective_time(16, words=10, rounds_factor=1)
        assert gather > bcast

    def test_collective_record(self, model):
        rec = model.collective(8, words=4, level=1)
        assert rec.participants == 8
        assert rec.time == pytest.approx(model.collective_time(8, 4, 1))

    def test_collective_invalid_participants(self, model):
        with pytest.raises(ValueError):
            model.collective_time(0)


class TestExchange:
    def test_exchange_lower_bound_formula(self, model):
        t = model.exchange_time(64, h_words=10000, r_messages=16, level=0)
        expected = 10000 * model.spec.beta + 16 * model.spec.alpha
        assert t == pytest.approx(expected)

    def test_exchange_cross_island_more_expensive(self, model):
        t_local = model.exchange_time(4, 10**6, 4, level=0)
        t_island = model.exchange_time(4, 10**6, 4, level=2)
        assert t_island > t_local

    def test_exchange_record_fields(self, model):
        rec = model.exchange(16, 100, 3, level=1)
        assert rec.h_words == 100
        assert rec.r_messages == 3
        assert rec.level == 1

    def test_exchange_negative_raises(self, model):
        with pytest.raises(ValueError):
            model.exchange_time(4, -1, 0)

    def test_exchange_level_from_members(self, model):
        assert model.exchange_level(range(4)) == 0
        assert model.exchange_level(range(64)) == 2


class TestLocalWork:
    def test_local_sort_matches_spec(self, model):
        assert model.local_sort(5000) == pytest.approx(model.spec.local_sort_time(5000))

    def test_local_search_zero_for_tiny(self, model):
        assert model.local_search(1) == 0.0
        assert model.local_search(100, iterations=0) == 0.0

    def test_local_search_grows_with_iterations(self, model):
        assert model.local_search(1000, 10) == pytest.approx(10 * model.local_search(1000, 1))

    def test_local_work_model_facade(self):
        lw = LocalWorkModel(MachineSpec())
        assert lw.sort(1000) > 0
        assert lw.merge(1000, 4) > 0
        assert lw.partition(1000, 4) > 0
        assert lw.move(1000) > 0

    def test_local_work_model_default_spec(self):
        lw = LocalWorkModel()
        assert lw.sort(10) >= 0


class TestStartupVsBandwidthRegimes:
    """Sanity checks that the calibration puts startups and bandwidth in a
    realistic relation — these relations are what make the multi-level
    algorithms pay off in the benchmarks."""

    def test_small_message_dominated_by_alpha(self):
        spec = supermuc_like()
        model = CostModel(spec, FlatTopology(2))
        t = model.message_time(10)
        assert spec.alpha / t > 0.9

    def test_large_message_dominated_by_beta(self):
        spec = supermuc_like()
        model = CostModel(spec, FlatTopology(2))
        t = model.message_time(10**7)
        assert (10**7 * spec.beta) / t > 0.9

    def test_p_startups_worse_than_sqrt_p_twice(self):
        # One exchange with p startups vs two exchanges with sqrt(p) startups
        # each: for small per-PE volume the multi-level variant must win.
        spec = supermuc_like()
        model = CostModel(spec, FlatTopology(4096))
        h = 1000  # words per PE
        single = model.exchange_time(4096, h, 4095)
        multi = 2 * model.exchange_time(4096, h, 64)
        assert multi < single
