"""Tests for :mod:`repro.workloads.records`."""

import numpy as np
import pytest

from repro.workloads.records import (
    RECORD_DTYPE,
    generate_records,
    key_to_bytes,
    pack_key_bytes,
    record_keys,
    split_records,
    unpack_key_bytes,
)


class TestRecordGeneration:
    def test_dtype_is_100_bytes(self):
        assert RECORD_DTYPE.itemsize == 100

    def test_generate_shape(self):
        records = generate_records(50, rng=0)
        assert records.shape == (50,)
        assert records.dtype == RECORD_DTYPE

    def test_zero_records(self):
        assert generate_records(0).size == 0

    def test_deterministic(self):
        a = generate_records(10, rng=5)
        b = generate_records(10, rng=5)
        assert np.array_equal(a["key"], b["key"])


class TestKeyPacking:
    def test_pack_preserves_order_of_prefixes(self):
        records = generate_records(200, rng=1)
        keys = records["key"]
        packed = pack_key_bytes(keys)
        order_bytes = np.argsort(keys)
        order_packed = np.argsort(packed, kind="stable")
        # the orders agree on the 8-byte prefix level
        prefix = np.array([k[:8] for k in keys])
        assert np.array_equal(prefix[order_bytes], prefix[order_packed])

    def test_pack_unpack_roundtrip(self):
        records = generate_records(20, rng=2)
        packed = pack_key_bytes(records["key"])
        prefixes = unpack_key_bytes(packed)
        expected = np.array([k[:8] for k in records["key"]])
        assert np.array_equal(prefixes, expected)

    def test_pack_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            pack_key_bytes(np.arange(5))

    def test_record_keys_signed_and_sorted_consistently(self):
        records = generate_records(500, rng=3)
        keys = record_keys(records)
        assert keys.dtype == np.int64
        byte_sorted = np.sort(records["key"])
        key_sorted = records[np.argsort(keys, kind="stable")]["key"]
        # orders agree except possibly among 8-byte-prefix collisions (none expected here)
        assert np.array_equal(
            np.array([k[:8] for k in byte_sorted]),
            np.array([k[:8] for k in key_sorted]),
        )


class TestPerRecordRandomKeys:
    """Regression: generate_records once broadcast ONE truncated bytes blob
    into every key (a dead first assignment of ``records["key"]``) — keys
    must be independently random per record."""

    def test_keys_differ_across_records(self):
        records = generate_records(256, rng=7)
        raw = key_to_bytes(records["key"])
        # With one broadcast blob every row would be identical; random
        # 10-byte keys are unique with overwhelming probability.
        assert np.unique(raw, axis=0).shape[0] == 256

    def test_keys_match_the_generator_stream(self):
        rng = np.random.default_rng(11)
        expected = rng.integers(0, 256, size=(40, 10), dtype=np.uint8)
        records = generate_records(40, rng=11)
        assert np.array_equal(key_to_bytes(records["key"]), expected)

    def test_payloads_per_record(self):
        records = generate_records(64, rng=9)
        payloads = np.frombuffer(
            records["payload"].tobytes(), dtype=np.uint8
        ).reshape(64, 90)
        assert np.unique(payloads, axis=0).shape[0] == 64


class TestNulSafety:
    """Regression: numpy strips trailing NUL bytes on *Python-level* reads
    of S fields; storage, comparisons and the pack/unpack helpers must keep
    every byte of a key that ends in ``0x00``."""

    def test_key_ending_in_nul_is_stored_fully(self):
        key = b"ABCDEFGH\x00\x00"  # 10 bytes, trailing NULs
        records = np.zeros(2, dtype=RECORD_DTYPE)
        records["key"] = np.frombuffer(key + key, dtype="S10")
        raw = key_to_bytes(records["key"])
        assert raw.shape == (2, 10)
        assert bytes(raw[0]) == key  # all 10 bytes, NULs included
        # ... while scalar access strips them (the documented footgun):
        assert records["key"][0] == b"ABCDEFGH"

    def test_pack_is_nul_safe(self):
        # Two keys whose 8-byte prefixes differ only in a trailing NUL.
        k1 = b"AAAAAAA\x00ZZ"
        k2 = b"AAAAAAA\x01ZZ"
        keys = np.frombuffer(k1 + k2, dtype="S10")
        packed = pack_key_bytes(keys)
        assert packed[0] != packed[1]
        assert packed[0] < packed[1]  # NUL sorts lowest, like memcmp
        prefixes = unpack_key_bytes(packed)
        assert np.array_equal(key_to_bytes(prefixes)[0], key_to_bytes(keys)[0, :8])

    def test_pack_unpack_pack_roundtrip_with_nuls(self):
        rng = np.random.default_rng(3)
        raw = rng.integers(0, 256, size=(64, 10), dtype=np.uint8)
        raw[:, 7] = 0  # force a NUL inside every prefix
        raw[::4, 8:] = 0  # and trailing NULs on some full keys
        keys = np.frombuffer(raw.tobytes(), dtype="S10")
        packed = pack_key_bytes(keys)
        assert np.array_equal(pack_key_bytes(unpack_key_bytes(packed)), packed)

    def test_sort_order_respects_nul_bytes(self):
        k_lo = b"AB\x00AAAAAAA"
        k_hi = b"ABAAAAAAAA"  # 'A' (0x41) > NUL (0x00) at position 2
        keys = np.frombuffer(k_hi + k_lo, dtype="S10")
        ordered = np.sort(keys)
        assert np.array_equal(key_to_bytes(ordered)[0], key_to_bytes(keys)[1])

    def test_key_to_bytes_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            key_to_bytes(np.arange(4))


class TestSplitRecords:
    def test_split_counts(self):
        records = generate_records(103, rng=4)
        chunks, keys = split_records(records, 4)
        assert len(chunks) == 4 and len(keys) == 4
        assert sum(c.size for c in chunks) == 103
        for c, k in zip(chunks, keys):
            assert c.size == k.size
