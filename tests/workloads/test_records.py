"""Tests for :mod:`repro.workloads.records`."""

import numpy as np
import pytest

from repro.workloads.records import (
    RECORD_DTYPE,
    generate_records,
    pack_key_bytes,
    record_keys,
    split_records,
    unpack_key_bytes,
)


class TestRecordGeneration:
    def test_dtype_is_100_bytes(self):
        assert RECORD_DTYPE.itemsize == 100

    def test_generate_shape(self):
        records = generate_records(50, rng=0)
        assert records.shape == (50,)
        assert records.dtype == RECORD_DTYPE

    def test_zero_records(self):
        assert generate_records(0).size == 0

    def test_deterministic(self):
        a = generate_records(10, rng=5)
        b = generate_records(10, rng=5)
        assert np.array_equal(a["key"], b["key"])


class TestKeyPacking:
    def test_pack_preserves_order_of_prefixes(self):
        records = generate_records(200, rng=1)
        keys = records["key"]
        packed = pack_key_bytes(keys)
        order_bytes = np.argsort(keys)
        order_packed = np.argsort(packed, kind="stable")
        # the orders agree on the 8-byte prefix level
        prefix = np.array([k[:8] for k in keys])
        assert np.array_equal(prefix[order_bytes], prefix[order_packed])

    def test_pack_unpack_roundtrip(self):
        records = generate_records(20, rng=2)
        packed = pack_key_bytes(records["key"])
        prefixes = unpack_key_bytes(packed)
        expected = np.array([k[:8] for k in records["key"]])
        assert np.array_equal(prefixes, expected)

    def test_pack_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            pack_key_bytes(np.arange(5))

    def test_record_keys_signed_and_sorted_consistently(self):
        records = generate_records(500, rng=3)
        keys = record_keys(records)
        assert keys.dtype == np.int64
        byte_sorted = np.sort(records["key"])
        key_sorted = records[np.argsort(keys, kind="stable")]["key"]
        # orders agree except possibly among 8-byte-prefix collisions (none expected here)
        assert np.array_equal(
            np.array([k[:8] for k in byte_sorted]),
            np.array([k[:8] for k in key_sorted]),
        )


class TestSplitRecords:
    def test_split_counts(self):
        records = generate_records(103, rng=4)
        chunks, keys = split_records(records, 4)
        assert len(chunks) == 4 and len(keys) == 4
        assert sum(c.size for c in chunks) == 103
        for c, k in zip(chunks, keys):
            assert c.size == k.size
