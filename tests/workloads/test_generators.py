"""Tests for :mod:`repro.workloads.generators`."""

import numpy as np
import pytest

from repro.workloads.generators import (
    PER_PE_WORKLOADS,
    WORKLOADS,
    generate_workload,
    per_pe_workload,
    splitter_aliasing_keys,
    tiny_pieces_worst_case,
)


class TestGenerateWorkload:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_workloads_produce_requested_size(self, name):
        keys = generate_workload(name, 500, rng=0)
        assert keys.size == 500
        assert keys.dtype == np.int64

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_zero_size(self, name):
        assert generate_workload(name, 0, rng=0).size == 0

    def test_deterministic_for_seed(self):
        a = generate_workload("uniform", 100, rng=7)
        b = generate_workload("uniform", 100, rng=7)
        assert np.array_equal(a, b)

    def test_generator_object_accepted(self):
        rng = np.random.default_rng(3)
        keys = generate_workload("gaussian", 50, rng=rng)
        assert keys.size == 50

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            generate_workload("fractal", 10)

    def test_all_equal(self):
        keys = generate_workload("all_equal", 20, rng=0)
        assert np.unique(keys).size == 1

    def test_duplicates_have_small_universe(self):
        keys = generate_workload("duplicates", 1000, rng=0, distinct=8)
        assert np.unique(keys).size <= 8

    def test_reverse_is_decreasing(self):
        keys = generate_workload("reverse", 100, rng=0)
        assert np.all(np.diff(keys) < 0)

    def test_nearly_sorted_mostly_sorted(self):
        keys = generate_workload("nearly_sorted", 1000, rng=0)
        inversions = np.count_nonzero(keys[1:] < keys[:-1])
        assert inversions < 100

    def test_zipf_is_skewed(self):
        keys = generate_workload("zipf", 2000, rng=0)
        values, counts = np.unique(keys, return_counts=True)
        assert counts.max() > 2000 * 0.2  # the most frequent value dominates

    def test_staggered_is_permutation_like(self):
        keys = generate_workload("staggered", 64, rng=0, buckets=4)
        assert keys.size == 64

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            generate_workload("uniform", -1)

    def test_kwargs_forwarded(self):
        keys = generate_workload("splitter_aliasing", 128, rng=0, runs=4)
        assert np.unique(keys).size == 4


class TestSplitterAliasing:
    def test_runs_sit_on_exact_quantiles(self):
        n, runs = 320, 8
        keys = splitter_aliasing_keys(n, np.random.default_rng(0), runs=runs)
        values, counts = np.unique(keys, return_counts=True)
        assert values.size == runs
        assert np.all(counts == n // runs)  # every expected splitter lands in a run
        assert np.all(np.diff(keys) >= 0)  # already sorted: pure aliasing stress

    def test_deterministic(self):
        a = splitter_aliasing_keys(100, np.random.default_rng(0))
        b = splitter_aliasing_keys(100, np.random.default_rng(99))
        assert np.array_equal(a, b)

    def test_more_runs_than_keys(self):
        keys = splitter_aliasing_keys(5, np.random.default_rng(0), runs=100)
        assert keys.size == 5


class TestPerPEWorkload:
    def test_shapes(self):
        data = per_pe_workload("uniform", 5, 100, seed=1)
        assert len(data) == 5
        assert all(d.size == 100 for d in data)

    def test_pes_independent(self):
        data = per_pe_workload("uniform", 3, 100, seed=1)
        assert not np.array_equal(data[0], data[1])

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            per_pe_workload("uniform", 0, 10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            per_pe_workload("uniform", 4, -5)

    def test_kwargs_forwarded(self):
        data = per_pe_workload("duplicates", 3, 200, seed=1, distinct=4)
        assert all(np.unique(d).size <= 4 for d in data)

    def test_tiny_pieces_dispatches_to_native_per_pe(self):
        assert "tiny_pieces" in PER_PE_WORKLOADS
        data = per_pe_workload("tiny_pieces", 16, 500, seed=0)
        sizes = np.array([d.size for d in data])
        assert sizes.max() == 500  # heavy PEs keep the full contribution
        assert sizes.min() < 100  # tiny PEs hold only slivers

    def test_tiny_pieces_r_forwarded(self):
        data = per_pe_workload("tiny_pieces", 16, 500, seed=0, r=2)
        assert len(data) == 16


class TestTinyPiecesWorstCase:
    def test_heavy_and_tiny_pes_exist(self):
        data = tiny_pieces_worst_case(p=16, r=4, n_per_pe=1000, seed=0)
        sizes = np.array([d.size for d in data])
        assert sizes.max() == 1000
        assert sizes.min() < 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            tiny_pieces_worst_case(0, 2, 10)

    def test_named_workload_entry(self):
        # Promoted to WORKLOADS: the single-stream view must honour n exactly.
        keys = generate_workload("tiny_pieces", 333, rng=0)
        assert keys.size == 333
