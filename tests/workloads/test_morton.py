"""Tests for :mod:`repro.workloads.morton`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.morton import (
    interleave_bits,
    morton_decode_2d,
    morton_encode_2d,
    morton_encode_3d,
    particle_morton_keys,
)


class TestInterleave:
    def test_spacing_two(self):
        out = interleave_bits(np.array([0b111]), 2, 3)
        assert out[0] == 0b010101

    def test_spacing_three(self):
        out = interleave_bits(np.array([0b11]), 3, 2)
        assert out[0] == 0b001001

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            interleave_bits(np.array([1]), 0, 4)

    def test_too_many_bits(self):
        with pytest.raises(ValueError):
            interleave_bits(np.array([1]), 3, 22)


class TestMorton2D:
    def test_known_values(self):
        codes = morton_encode_2d(np.array([1, 0, 1]), np.array([0, 1, 1]), bits=4)
        assert codes.tolist() == [1, 2, 3]

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2**10, 100)
        y = rng.integers(0, 2**10, 100)
        codes = morton_encode_2d(x, y, bits=10)
        rx, ry = morton_decode_2d(codes, bits=10)
        assert np.array_equal(rx, x)
        assert np.array_equal(ry, y)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            morton_encode_2d(np.array([2**21]), np.array([0]))

    @given(st.integers(0, 2**15 - 1), st.integers(0, 2**15 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_locality_monotone_in_upper_bits(self, x, y):
        """Doubling both coordinates shifts the Morton code by two bits."""
        code = morton_encode_2d(np.array([x]), np.array([y]), bits=16)[0]
        code2 = morton_encode_2d(np.array([2 * x]), np.array([2 * y]), bits=17)[0]
        assert code2 == code << np.uint64(2)


class TestMorton3D:
    def test_known_origin_neighbours(self):
        codes = morton_encode_3d(np.array([1, 0, 0]), np.array([0, 1, 0]),
                                 np.array([0, 0, 1]), bits=4)
        assert codes.tolist() == [1, 2, 4]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            morton_encode_3d(np.array([0]), np.array([2**21]), np.array([0]))


class TestParticleKeys:
    def test_shape_and_dtype(self):
        rng = np.random.default_rng(1)
        pos = rng.random((200, 3))
        keys = particle_morton_keys(pos, bits=10)
        assert keys.shape == (200,)
        assert keys.dtype == np.int64
        assert keys.min() >= 0

    def test_2d_supported(self):
        pos = np.random.default_rng(2).random((50, 2))
        assert particle_morton_keys(pos, bits=8).shape == (50,)

    def test_spatial_locality(self):
        """Particles in the same octant share high Morton bits more often than
        particles in different octants."""
        lo = np.random.default_rng(3).random((100, 3)) * 0.25
        hi = 0.75 + np.random.default_rng(4).random((100, 3)) * 0.25
        pos = np.vstack([lo, hi])
        keys = particle_morton_keys(pos, bits=10, bounds=(0.0, 1.0))
        assert keys[:100].max() < keys[100:].min()

    def test_empty(self):
        assert particle_morton_keys(np.empty((0, 3))).size == 0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            particle_morton_keys(np.zeros((5, 4)))
