"""Regenerate the golden-trace campaign summaries under ``golden/``.

Run this ONLY when a change intentionally shifts modelled clocks, sampled
elements or campaign aggregation (e.g. an RNG-stream move like PR 2/PR 3);
the diff of the regenerated files is the reviewable record of the shift::

    PYTHONPATH=src python tests/experiments/regen_golden.py

The golden campaign is the ``tiny`` profile with the uniform + zipf
workloads — small enough that the regression test re-runs it inside the
tier-1 suite, wide enough to cover every experiment, both algorithms, the
baselines and a non-uniform workload row per experiment.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.campaign import run_campaign

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PROFILE = "tiny"
GOLDEN_WORKLOADS = ("uniform", "zipf")


def golden_summary():
    """The deterministic campaign summary the golden files are cut from."""
    summary, _ = run_campaign(
        profile=GOLDEN_PROFILE, workloads=GOLDEN_WORKLOADS, jobs=1
    )
    return summary


def main() -> int:
    summary = golden_summary()
    GOLDEN_DIR.mkdir(exist_ok=True)
    meta_doc = dict(summary["meta"])
    (GOLDEN_DIR / "meta.json").write_text(
        json.dumps(meta_doc, indent=2, sort_keys=True) + "\n"
    )
    for experiment, sections in summary["experiments"].items():
        path = GOLDEN_DIR / f"{experiment}.json"
        path.write_text(json.dumps(sections, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    print(f"wrote {GOLDEN_DIR / 'meta.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
