"""Tests for :mod:`repro.experiments.campaign`.

Covers the cell model (deterministic seeds, content-hash keys), the disk
cache (round-trip, corruption, RNG-version invalidation), campaign expansion
(grids, the workload axis, the ``paper`` profile's flat-only rules) and the
headline property: sharded execution (``jobs > 1``) produces summaries
byte-identical to serial execution, including after a simulated interrupt
resumed from the cache directory.
"""

import json

import pytest

from repro.core.config import level_plan
from repro.experiments import campaign as cm
from repro.experiments.harness import PAPER_P_VALUES, scale_profile


#: Small enough that a full campaign runs in well under a second.
MICRO_PROFILE = {
    "name": "micro",
    "p_values": (4, 8),
    "n_per_pe_values": (30, 60),
    "repetitions": 2,
    "node_size": 2,
}


class TestCellSpec:
    def test_seed_is_deterministic_and_identity_sensitive(self):
        cell = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling", p=8))
        again = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling", p=8))
        other_rep = cm.finalize_cell(
            cm.CampaignCell(experiment="weak_scaling", p=8, repetition=1)
        )
        other_wl = cm.finalize_cell(
            cm.CampaignCell(experiment="weak_scaling", p=8, workload="zipf")
        )
        assert cell.seed == again.seed
        assert cell.seed != other_rep.seed
        assert cell.seed != other_wl.seed

    def test_round_trip(self):
        cell = cm.finalize_cell(
            cm.CampaignCell(experiment="overpartitioning", oversampling=2.0,
                            overpartitioning=8, samples_per_pe=16)
        )
        assert cm.CampaignCell.from_dict(cell.to_dict()) == cell

    def test_execution_details_do_not_change_the_seed(self):
        from dataclasses import replace

        cell = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling", p=8))
        for change in ({"engine": "reference"}, {"validate": False},
                       {"determinism_check": True}):
            twin = cm.finalize_cell(replace(cell, **change))
            assert twin.seed == cell.seed, change

    def test_engines_agree_on_a_finalized_cell(self):
        from dataclasses import replace

        cell = cm.finalize_cell(cm.CampaignCell(
            experiment="weak_scaling", p=6, n_per_pe=50, levels=2,
            node_size=2, workload="duplicates",
        ))
        ref = cm.finalize_cell(replace(cell, engine="reference"))
        assert cm.run_cell(cell) == cm.run_cell(ref)

    def test_key_depends_on_spec_and_rng_version(self, monkeypatch):
        cell = cm.finalize_cell(cm.CampaignCell(experiment="variance", p=8))
        key = cm.cell_key(cell)
        assert key == cm.cell_key(cell)
        other = cm.finalize_cell(cm.CampaignCell(experiment="variance", p=16))
        assert key != cm.cell_key(other)
        monkeypatch.setattr(cm, "RNG_VERSION", "different-rng-generation")
        assert key != cm.cell_key(cell)


class TestCellCache:
    def test_round_trip(self, tmp_path):
        cache = cm.CellCache(tmp_path)
        cell = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling"))
        key = cm.cell_key(cell)
        assert cache.get(key) is None
        cache.put(key, cell, {"total_time_s": 1.5})
        assert cache.get(key) == {"total_time_s": 1.5}

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = cm.CellCache(tmp_path)
        cell = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling"))
        key = cm.cell_key(cell)
        cache.put(key, cell, {"total_time_s": 1.0})
        cache.path(key).write_text("{not json")
        assert cache.get(key) is None

    def test_rng_version_mismatch_invalidates(self, tmp_path):
        cache = cm.CellCache(tmp_path)
        cell = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling"))
        key = cm.cell_key(cell)
        cache.put(key, cell, {"total_time_s": 1.0})
        doc = json.loads(cache.path(key).read_text())
        doc["rng_version"] = "older-generation"
        cache.path(key).write_text(json.dumps(doc))
        assert cache.get(key) is None

    def test_schema_incomplete_doc_is_a_miss(self, tmp_path):
        cache = cm.CellCache(tmp_path)
        cell = cm.finalize_cell(cm.CampaignCell(experiment="weak_scaling"))
        key = cm.cell_key(cell)
        cache.path(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path(key).write_text(json.dumps({"rng_version": cm.RNG_VERSION}))
        assert cache.get(key) is None
        cache.path(key).write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None


class TestExpansion:
    def test_every_experiment_and_workload_present(self):
        cells = cm.expand_campaign(MICRO_PROFILE)
        experiments = {c.experiment for c in cells}
        assert experiments == set(cm.CAMPAIGN_EXPERIMENTS)
        for experiment in cm.CAMPAIGN_EXPERIMENTS:
            workloads = {c.workload for c in cells if c.experiment == experiment}
            assert workloads == set(cm.CAMPAIGN_WORKLOADS), experiment

    def test_primary_workload_gets_the_full_grid(self):
        cells = cm.expand_campaign(MICRO_PROFILE, experiments=("weak_scaling",))
        uniform = [c for c in cells if c.workload == "uniform"]
        zipf = [c for c in cells if c.workload == "zipf"]
        assert {c.n_per_pe for c in uniform} == {30, 60}
        assert {c.n_per_pe for c in zipf} == {30}  # trimmed secondary grid
        assert len(zipf) < len(uniform)

    def test_unique_cells(self):
        cells = cm.expand_campaign(MICRO_PROFILE)
        keys = [cm.cell_key(c) for c in cells]
        assert len(keys) == len(set(keys))

    def test_unknown_experiment_or_workload(self):
        with pytest.raises(KeyError):
            cm.expand_campaign(MICRO_PROFILE, experiments=("fig99",))
        with pytest.raises(KeyError):
            cm.expand_campaign(MICRO_PROFILE, workloads=("fractal",))

    def test_paper_profile_rules(self):
        profile = scale_profile("paper")
        cells = cm.expand_campaign(profile)
        # The paper profile defaults to the weak-scaling sweep, uniform only.
        assert {c.experiment for c in cells} == {"weak_scaling"}
        assert {c.workload for c in cells} == {"uniform"}
        assert {c.engine for c in cells} == {"flat"}
        largest = [c for c in cells if c.p == 32768]
        assert largest, "paper profile must reach p=32768"
        for cell in largest:
            assert cell.levels == 3  # Table 1's three-level plan at 2^15
            assert cell.determinism_check  # bench-style flat re-run pin
            assert not cell.validate
        small = [c for c in cells if c.p == 512]
        assert small and all(c.levels == 2 for c in small)
        assert all(c.validate and not c.determinism_check for c in small)
        # Two levels everywhere below the largest machine (Table 1 policy).
        assert {c.levels for c in cells if c.p in (2048, 8192)} == {2}


class TestRunCell:
    def test_plan_cell_matches_level_plan(self):
        cell = cm.finalize_cell(cm.CampaignCell(
            experiment="level_table", kind="plan", algorithm="plan",
            levels=2, node_size=16, validate=False,
        ))
        summary = cm.run_cell(cell)
        for p in PAPER_P_VALUES:
            assert summary["plan_by_p"][str(p)] == level_plan(p, 2, node_size=16)

    def test_sort_cell_summary_is_json_safe_and_deterministic(self):
        cell = cm.finalize_cell(cm.CampaignCell(
            experiment="weak_scaling", p=8, n_per_pe=50, levels=2,
            node_size=2, workload="duplicates",
        ))
        summary = cm.run_cell(cell)
        assert json.dumps(summary)  # all plain scalars
        assert summary["total_time_s"] > 0
        assert summary["p"] == 8
        assert cm.run_cell(cell) == summary

    def test_determinism_check_cell_runs(self):
        cell = cm.finalize_cell(cm.CampaignCell(
            experiment="weak_scaling", p=8, n_per_pe=40, levels=1,
            node_size=2, determinism_check=True,
        ))
        summary = cm.run_cell(cell)
        assert summary["total_time_s"] > 0


class TestShardedEqualsSerial:
    """Satellite: sharded and serial campaigns are byte-identical, and an
    interrupted campaign resumed from the cache completes identically."""

    EXPERIMENTS = ("weak_scaling", "variance")
    WORKLOADS = ("uniform", "duplicates")

    def _run(self, jobs, cache_dir=None, resume=True):
        summary, stats = cm.run_campaign(
            profile=MICRO_PROFILE,
            experiments=self.EXPERIMENTS,
            workloads=self.WORKLOADS,
            jobs=jobs,
            cache_dir=cache_dir,
            resume=resume,
        )
        return cm.campaign_to_json(summary), stats

    def test_sharded_identical_to_serial_and_resumes_after_interrupt(self, tmp_path):
        serial_json, serial_stats = self._run(jobs=1)
        assert serial_stats["executed"] == serial_stats["cells"]

        cache_dir = tmp_path / "cache"
        sharded_json, sharded_stats = self._run(jobs=4, cache_dir=cache_dir)
        assert sharded_json == serial_json
        assert sharded_stats["executed"] == serial_stats["cells"]

        # Immediate re-run: everything from cache, zero sort executions.
        rerun_json, rerun_stats = self._run(jobs=4, cache_dir=cache_dir)
        assert rerun_json == serial_json
        assert rerun_stats["executed"] == 0
        assert rerun_stats["cache_hits"] == serial_stats["cells"]

        # Simulated interrupt: drop half the cached cells; the resumed run
        # recomputes exactly the missing ones and lands on the same bytes.
        cached_files = sorted(cache_dir.glob("*.json"))
        dropped = cached_files[::2]
        for path in dropped:
            path.unlink()
        resumed_json, resumed_stats = self._run(jobs=2, cache_dir=cache_dir)
        assert resumed_json == serial_json
        assert resumed_stats["executed"] == len(dropped)
        assert resumed_stats["cache_hits"] == serial_stats["cells"] - len(dropped)

    def test_no_resume_ignores_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _, first = self._run(jobs=1, cache_dir=cache_dir)
        _, second = self._run(jobs=1, cache_dir=cache_dir, resume=False)
        assert second["executed"] == first["cells"]
        assert second["cache_hits"] == 0


class TestAggregation:
    @pytest.fixture(scope="class")
    def summary(self):
        summary, _ = cm.run_campaign(
            profile=MICRO_PROFILE,
            experiments=("weak_scaling", "slowdown", "comparison"),
            workloads=("uniform", "zipf"),
        )
        return summary

    def test_weak_scaling_best_reduction(self, summary):
        section = summary["experiments"]["weak_scaling"]
        best = section["best"]
        assert best
        rows = section["rows"]
        for entry in best:
            candidates = [
                r for r in rows
                if (r["workload"], r["n_per_pe"], r["p"])
                == (entry["workload"], entry["n_per_pe"], entry["p"])
            ]
            assert entry["time_median_s"] == min(r["time_median_s"] for r in candidates)

    def test_slowdown_ratio(self, summary):
        rows = summary["experiments"]["slowdown"]["rows"]
        assert rows
        for row in rows:
            assert row["slowdown"] == pytest.approx(
                row["rlm_time_s"] / row["ams_time_s"]
            )

    def test_comparison_has_all_algorithms_and_unit_ams_slowdown(self, summary):
        rows = summary["experiments"]["comparison"]["rows"]
        algos = {r["algorithm"] for r in rows}
        assert algos == {"ams", "mergesort", "samplesort", "quicksort"}
        for row in rows:
            if row["algorithm"] == "ams":
                assert row["slowdown_vs_ams"] == pytest.approx(1.0)

    def test_format_campaign_renders_every_section(self, summary):
        text = cm.format_campaign(summary)
        assert "Table 2" in text and "Figure 7" in text and "Section 7.3" in text


class TestCampaignCLI:
    def test_cli_campaign_writes_canonical_json(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "campaign.json"
        rc = main([
            "campaign", "--profile", "tiny", "--experiments", "level_table",
            "--workloads", "uniform", "--no-cache", "--quiet",
            "--output", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["meta"]["profile"] == "tiny"
        assert "level_table" in doc["experiments"]
        assert "Table 1" in capsys.readouterr().out

    def test_cli_require_cached_rejects_no_cache_up_front(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main([
                "campaign", "--profile", "tiny", "--experiments", "level_table",
                "--workloads", "uniform", "--no-cache", "--quiet",
                "--require-cached",
            ])

    def test_cli_require_cached_fails_on_cold_cache(self, tmp_path):
        from repro.experiments.cli import main

        rc = main([
            "campaign", "--profile", "tiny", "--experiments", "level_table",
            "--workloads", "uniform", "--cache-dir", str(tmp_path / "cold"),
            "--quiet", "--require-cached",
        ])
        assert rc == 1

    def test_cli_require_cached_passes_on_rerun(self, tmp_path):
        from repro.experiments.cli import main

        cache = tmp_path / "cache"
        args = [
            "campaign", "--profile", "tiny", "--experiments", "level_table",
            "--workloads", "uniform", "--cache-dir", str(cache), "--quiet",
        ]
        assert main(args) == 0
        assert main(args + ["--require-cached"]) == 0
