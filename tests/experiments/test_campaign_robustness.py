"""Campaign fault tolerance: checksummed cache, retry/quarantine, chaos.

The contract under test is the robustness headline: infrastructure faults
(corrupted cache bytes, crashing worker processes, wedged cells) change
*wall-clock accounting only* — the aggregated campaign summary stays
byte-identical to a fault-free serial run, and every recovery event is
counted in the stats dict instead of silently absorbed.
"""

import json
import os

import pytest

from repro.dist.backend import NumpyBackend, SharedMemBackend, use_backend
from repro.experiments import campaign as cm


#: Two weak-scaling cells: small enough that even a chaos run with a
#: sharded backend finishes in seconds, non-degenerate enough to aggregate.
NANO_PROFILE = {
    "name": "nano",
    "p_values": (4, 8),
    "n_per_pe_values": (30,),
    "repetitions": 1,
    "node_size": 2,
    "experiments": ("weak_scaling",),
    "workloads": ("uniform",),
}


def nano_cells():
    return cm.expand_campaign(NANO_PROFILE)


def run_nano(**kw):
    return cm.run_campaign(NANO_PROFILE, **kw)


class TestCacheChecksum:
    def _seed_cache(self, tmp_path):
        cache = cm.CellCache(tmp_path)
        cell = nano_cells()[0]
        key = cm.cell_key(cell)
        summary = cm.run_cell(cell)
        cache.put(key, cell, summary)
        return cache, key, summary

    def test_round_trip_is_a_hit(self, tmp_path):
        cache, key, summary = self._seed_cache(tmp_path)
        got, status = cache.get_with_status(key)
        assert status == "hit"
        assert got == summary

    def test_bit_flip_is_detected_as_corrupt(self, tmp_path):
        cache, key, _ = self._seed_cache(tmp_path)
        path = cache.path(key)
        raw = bytearray(path.read_bytes())
        # Flip bytes inside the *summary* payload, not the JSON scaffolding:
        # the document still parses, only the checksum can catch it.
        doc = json.loads(bytes(raw))
        doc["summary"][next(iter(doc["summary"]))] = "tampered"
        path.write_text(json.dumps(doc))
        assert cache.get_with_status(key) == (None, "corrupt")

    def test_truncation_is_detected_as_corrupt(self, tmp_path):
        cache, key, _ = self._seed_cache(tmp_path)
        path = cache.path(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get_with_status(key) == (None, "corrupt")

    def test_binary_garbage_is_corrupt_not_an_error(self, tmp_path):
        cache, key, _ = self._seed_cache(tmp_path)
        cache.path(key).write_bytes(bytes(range(256)))
        assert cache.get_with_status(key) == (None, "corrupt")

    def test_pre_checksum_document_is_stale_not_corrupt(self, tmp_path):
        cache, key, _ = self._seed_cache(tmp_path)
        path = cache.path(key)
        doc = json.loads(path.read_text())
        del doc["checksum"]  # a cache written before this PR
        path.write_text(json.dumps(doc))
        # Legacy entries recompute silently: no corruption alarm.
        assert cache.get_with_status(key) == (None, "stale")

    def test_corrupt_entries_are_counted_warned_and_recomputed(self, tmp_path):
        healthy, _ = run_nano(cache_dir=tmp_path)
        cache = cm.CellCache(tmp_path)
        victim = cm.cell_key(nano_cells()[0])
        path = cache.path(victim)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        lines = []
        summary, stats = run_nano(cache_dir=tmp_path, progress=lines.append)
        assert stats["cache_corrupt"] == 1
        assert stats["executed"] == 1  # only the damaged cell recomputed
        assert stats["cache_hits"] == len(nano_cells()) - 1
        assert cm.campaign_to_json(summary) == cm.campaign_to_json(healthy)
        warnings = [l for l in lines if l.startswith("warning: corrupt cache")]
        assert len(warnings) == 1
        assert str(path) in warnings[0]
        # The recomputed entry is intact again.
        assert cache.get_with_status(victim)[1] == "hit"


class TestRetryAndQuarantine:
    def test_transient_failure_is_retried_and_recovers(self, monkeypatch):
        cells = nano_cells()
        target = cm.cell_key(cells[0])
        real = cm.run_cell
        failed = []

        def flaky(cell):
            if cm.cell_key(cell) == target and not failed:
                failed.append(True)
                raise OSError("transient infrastructure hiccup")
            return real(cell)

        monkeypatch.setattr(cm, "run_cell", flaky)
        summaries, stats = cm.execute_cells(cells, retries=2)
        assert stats["cell_retries"] == 1
        assert stats["quarantined"] == 0
        assert target in summaries
        # Retried output is byte-identical: pure cells don't care how many
        # times the infrastructure dropped them.
        monkeypatch.setattr(cm, "run_cell", real)
        clean, _ = cm.execute_cells(cells)
        assert summaries == clean

    def test_persistent_failure_is_quarantined_not_fatal(self, monkeypatch):
        cells = nano_cells()
        target = cm.cell_key(cells[0])
        real = cm.run_cell

        def doomed(cell):
            if cm.cell_key(cell) == target:
                raise RuntimeError("deterministic cell failure")
            return real(cell)

        monkeypatch.setattr(cm, "run_cell", doomed)
        lines = []
        summaries, stats = cm.execute_cells(
            cells, retries=1, progress=lines.append
        )
        assert stats["quarantined"] == 1
        assert stats["cell_retries"] == 1  # retried once, then given up
        [record] = stats["quarantined_cells"]
        assert record["key"] == target
        assert "deterministic cell failure" in record["reason"]
        assert target not in summaries
        assert any(l.startswith("warning: quarantined") for l in lines)
        # Aggregation tolerates the hole instead of KeyError-ing.
        rows = cm.aggregate_cells(cells, summaries)
        assert rows  # the surviving cells still produce rows

    def test_strict_mode_fails_fast(self, monkeypatch):
        cells = nano_cells()

        def doomed(cell):
            raise RuntimeError("first failure")

        monkeypatch.setattr(cm, "run_cell", doomed)
        with pytest.raises(RuntimeError, match="first failure"):
            cm.execute_cells(cells, strict=True)

    def test_cell_wall_clock_timeout_quarantines(self, monkeypatch):
        import time

        cells = nano_cells()[:1]

        def wedged(cell):
            time.sleep(30)

        monkeypatch.setattr(cm, "run_cell", wedged)
        summaries, stats = cm.execute_cells(
            cells, retries=0, cell_timeout_s=0.2
        )
        assert summaries == {}
        assert stats["quarantined"] == 1
        [record] = stats["quarantined_cells"]
        assert "wall-clock budget" in record["reason"]

    def test_worker_crash_rebuilds_pool_and_quarantines(self, monkeypatch):
        # Linux fork start method: pool workers inherit the patched module.
        cells = nano_cells()[:1]
        target = cm.cell_key(cells[0])

        def crasher(cell):
            os._exit(17)  # simulates a SIGKILL'd / OOM-killed worker

        monkeypatch.setattr(cm, "run_cell", crasher)
        summaries, stats = cm.execute_cells(cells, jobs=2, retries=1)
        assert summaries == {}
        assert stats["pool_rebuilds"] == 2  # initial attempt + one retry
        assert stats["quarantined"] == 1
        assert stats["quarantined_cells"][0]["key"] == target
        assert "BrokenProcessPool" in stats["quarantined_cells"][0]["reason"]

    def test_worker_crash_in_strict_mode_raises(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        cells = nano_cells()[:1]
        monkeypatch.setattr(cm, "run_cell", lambda cell: os._exit(17))
        with pytest.raises(BrokenProcessPool):
            cm.execute_cells(cells, jobs=2, strict=True)


class TestChaosByteIdentity:
    def test_worker_kills_leave_the_summary_byte_identical(self, monkeypatch):
        healthy, _ = run_nano()
        monkeypatch.setenv("REPRO_CHAOS", "seed:3,kill:0.2")
        backend = SharedMemBackend(workers=2, min_parallel_elements=0)
        try:
            with use_backend(backend):
                chaotic, _ = run_nano()
            sup = backend.stats()["supervisor"]
        finally:
            backend.close()
            monkeypatch.delenv("REPRO_CHAOS")
        assert sup["chaos_kills"] >= 1  # faults actually happened
        assert sup["respawns"] >= 1  # and were healed
        assert cm.campaign_to_json(chaotic) == cm.campaign_to_json(healthy)

    def test_chaos_corrupted_cache_recovers_byte_identically(
        self, tmp_path, monkeypatch
    ):
        healthy, _ = run_nano()
        n = len(nano_cells())
        # Chaos pass: every freshly written cache entry is attacked
        # (trunc + corrupt rates sum to 1).  The in-memory summary must be
        # unaffected — corruption lands after the cell was recorded.
        monkeypatch.setenv("REPRO_CHAOS", "seed:9,trunc:0.5,corrupt:0.5")
        attacked, stats = run_nano(cache_dir=tmp_path)
        monkeypatch.delenv("REPRO_CHAOS")
        assert stats["executed"] == n
        assert cm.campaign_to_json(attacked) == cm.campaign_to_json(healthy)
        # Healthy resume: every damaged entry is a *detected*, counted miss;
        # the recomputed campaign is still byte-identical.
        recovered, stats = run_nano(cache_dir=tmp_path)
        assert stats["cache_corrupt"] == n
        assert stats["cache_hits"] == 0
        assert stats["executed"] == n
        assert cm.campaign_to_json(recovered) == cm.campaign_to_json(healthy)
        # And the rewritten cache is clean: a third run is all hits.
        final, stats = run_nano(cache_dir=tmp_path)
        assert stats["cache_hits"] == n
        assert stats["executed"] == 0
        assert cm.campaign_to_json(final) == cm.campaign_to_json(healthy)
