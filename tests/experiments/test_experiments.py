"""Smoke and shape tests for the experiment modules (tiny configurations)."""

import pytest

from repro.experiments import (
    comparison,
    level_table,
    overpartitioning,
    slowdown,
    variance,
    weak_scaling,
)
from repro.experiments.cli import EXPERIMENTS, main
from repro.experiments.harness import ExperimentRunner
from repro.machine.spec import laptop_like


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(spec=laptop_like())


class TestLevelTable:
    def test_rows_match_paper_for_multilevel(self):
        rows = level_table.level_table_rows()
        for row in rows:
            if row["k"] == 1:
                continue  # see note about the paper's k=1 row
            for p in (512, 2048, 8192, 32768):
                assert row[f"p={p}"] == row[f"paper p={p}"]

    def test_run_outputs_text(self):
        text = level_table.run()
        assert "Table 1" in text


class TestWeakScaling:
    def test_rows_and_reductions(self, runner):
        rows = weak_scaling.weak_scaling_rows(
            p_values=(4, 8), n_per_pe_values=(50, 200), level_counts=(1, 2),
            repetitions=1, node_size=2, runner=runner,
        )
        assert len(rows) == 8
        t2 = weak_scaling.table2_rows(rows)
        assert len(t2) == 4
        assert all("best_levels" in row for row in t2)
        f8 = weak_scaling.figure8_rows(rows)
        assert len(f8) == 8
        for row in f8:
            assert row["splitter_selection"] >= 0
            assert row["data_delivery"] > 0

    def test_paper_reference_rows(self):
        rows = weak_scaling.paper_reference_rows()
        assert len(rows) == 12


class TestSlowdown:
    def test_rows_have_ratio(self, runner):
        rows = slowdown.slowdown_rows(
            p_values=(8,), n_per_pe_values=(100,), level_counts=(1, 2),
            repetitions=1, node_size=2, runner=runner,
        )
        assert len(rows) == 1
        assert rows[0]["slowdown"] > 0
        assert rows[0]["ams_time_s"] > 0 and rows[0]["rlm_time_s"] > 0


class TestOverpartitioning:
    def test_imbalance_sweep_shape_effect(self, runner):
        rows = overpartitioning.imbalance_sweep_rows(
            p=8, n_per_pe=500, b_values=(1, 8), samples_per_pe_values=(4, 64),
            node_size=2, repetitions=1, runner=runner,
        )
        assert len(rows) == 4
        # for the same number of samples, higher b should not be (much) worse
        by_key = {(row["b"], row["samples_per_pe"]): row["imbalance"] for row in rows}
        assert by_key[(8, 64)] <= by_key[(1, 64)] + 0.25

    def test_walltime_sweep(self, runner):
        rows = overpartitioning.walltime_sweep_rows(
            p=8, n_per_pe=300, a_values=(1.0,), samples_per_pe_values=(4, 64),
            node_size=2, repetitions=1, runner=runner,
        )
        assert len(rows) == 2
        assert all(row["sampling_time_s"] >= 0 for row in rows)

    def test_workload_axis(self, runner):
        rows = overpartitioning.imbalance_sweep_rows(
            p=8, n_per_pe=200, b_values=(8,), samples_per_pe_values=(16,),
            node_size=2, repetitions=1, workload="duplicates", runner=runner,
        )
        assert rows and all(row["workload"] == "duplicates" for row in rows)


class TestVariance:
    def test_rows(self, runner):
        rows = variance.variance_rows(
            p_values=(4,), n_per_pe_values=(100,), level_counts=(1,),
            repetitions=3, node_size=2, runner=runner,
        )
        assert len(rows) == 1
        assert rows[0]["runs"] == 3
        assert rows[0]["workload"] == "uniform"
        assert rows[0]["min_s"] <= rows[0]["median_s"] <= rows[0]["max_s"]

    def test_workload_axis(self, runner):
        rows = variance.variance_rows(
            p_values=(4,), n_per_pe_values=(100,), level_counts=(1,),
            repetitions=3, node_size=2, workload="zipf", runner=runner,
        )
        assert rows[0]["workload"] == "zipf"


class TestComparison:
    def test_single_level_slowdowns_reported(self, runner):
        rows = comparison.comparison_rows(
            p_values=(8,), n_per_pe=100, baselines=("mergesort",),
            node_size=2, repetitions=1, runner=runner,
        )
        algos = {row["algorithm"] for row in rows}
        assert algos == {"ams", "mergesort"}
        for row in rows:
            assert row["time_s"] > 0
            assert row["workload"] == "uniform"

    def test_workload_axis(self, runner):
        rows = comparison.comparison_rows(
            p_values=(8,), n_per_pe=100, baselines=("samplesort",),
            node_size=2, repetitions=1, workload="staggered", runner=runner,
        )
        assert rows and all(row["workload"] == "staggered" for row in rows)


class TestCLI:
    def test_registry_covers_all_figures(self):
        assert set(EXPERIMENTS) >= {"table1", "table2", "fig7", "fig8",
                                    "fig10", "fig11", "fig12", "sec73"}

    def test_main_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_workload_flag(self, capsys):
        assert main(["table1", "--workload", "zipf"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_main_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_paper_scale_is_campaign_only(self):
        with pytest.raises(SystemExit):
            main(["table2", "--scale", "paper"])
