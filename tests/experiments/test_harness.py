"""Tests for :mod:`repro.experiments.harness`."""

import pytest

from repro.experiments.harness import (
    PAPER_TABLE2_SECONDS,
    ExperimentRunner,
    RunConfig,
    SCALE_PROFILES,
    scale_profile,
)
from repro.machine.spec import laptop_like


class TestScaleProfiles:
    def test_known_profiles(self):
        for name in ("quick", "medium", "large"):
            profile = scale_profile(name)
            assert len(profile["p_values"]) >= 2
            assert len(profile["n_per_pe_values"]) >= 2

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            scale_profile("gigantic")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_profile() == dict(SCALE_PROFILES["quick"])
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert scale_profile() == dict(SCALE_PROFILES["medium"])

    def test_paper_reference_numbers_present(self):
        assert PAPER_TABLE2_SECONDS[10**5][512] == pytest.approx(0.0228)
        assert PAPER_TABLE2_SECONDS[10**7][32768] == pytest.approx(6.0932)

    def test_tiny_profile_supports_multilevel(self):
        profile = scale_profile("tiny")
        assert all(p > profile["node_size"] for p in profile["p_values"])

    def test_paper_profile_reaches_the_papers_machine(self):
        profile = scale_profile("paper")
        assert max(profile["p_values"]) == 32768
        assert profile["engine"] == "flat"
        assert profile["reference_max_p"] == 1024


class TestRunConfig:
    def test_label(self):
        cfg = RunConfig(algorithm="ams", p=8, n_per_pe=100, levels=2)
        assert "ams" in cfg.label() and "p8" in cfg.label()


class TestExperimentRunner:
    @pytest.fixture
    def runner(self):
        return ExperimentRunner(spec=laptop_like())

    def test_run_once(self, runner):
        cfg = RunConfig(algorithm="ams", p=8, n_per_pe=100, levels=2, node_size=2,
                        repetitions=1)
        result = runner.run_once(cfg)
        assert result.p == 8
        assert result.total_time > 0

    def test_run_aggregates(self, runner):
        cfg = RunConfig(algorithm="rlm", p=4, n_per_pe=80, levels=1, node_size=2,
                        repetitions=2)
        row = runner.run(cfg)
        assert row["algorithm"] == "rlm"
        assert row["time_min_s"] <= row["time_median_s"] <= row["time_max_s"]
        assert "phase_local_sort" in row

    def test_run_once_reference_engine_matches_flat(self, runner):
        cfg = RunConfig(algorithm="ams", p=8, n_per_pe=100, levels=2, node_size=2,
                        repetitions=1)
        from dataclasses import replace

        flat = runner.run_once(cfg)
        ref = runner.run_once(replace(cfg, engine="reference"))
        assert flat.total_time == ref.total_time
        assert flat.summary_dict() == ref.summary_dict()

    def test_run_with_sampling_overrides(self, runner):
        cfg = RunConfig(algorithm="ams", p=4, n_per_pe=200, levels=1, node_size=2,
                        repetitions=1, overpartitioning=4, oversampling=2.0)
        row = runner.run(cfg)
        assert row["imbalance"] >= 0

    def test_best_level_time(self, runner):
        cfg = RunConfig(algorithm="ams", p=8, n_per_pe=100, node_size=2, repetitions=1)
        best = runner.best_level_time(cfg, [1, 2])
        assert best["levels"] in (1, 2)

    def test_baseline_algorithms_supported(self, runner):
        for algo in ("samplesort", "mergesort", "quicksort"):
            cfg = RunConfig(algorithm=algo, p=4, n_per_pe=50, repetitions=1, node_size=2)
            row = runner.run(cfg)
            assert row["time_median_s"] > 0

    def test_run_grid(self, runner):
        configs = [
            RunConfig(algorithm="ams", p=4, n_per_pe=50, levels=1, node_size=2, repetitions=1),
            RunConfig(algorithm="ams", p=4, n_per_pe=50, levels=2, node_size=2, repetitions=1),
        ]
        rows = runner.run_grid(configs)
        assert len(rows) == 2
