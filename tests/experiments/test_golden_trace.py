"""Golden-trace regression: the tiny-profile campaign must match ``golden/``.

The simulator is deterministic, so every field of the campaign summary —
modelled clocks, phase breakdowns, imbalance, traffic — is reproducible to
the last bit.  These tests re-run the golden campaign (the ``tiny`` profile,
uniform + zipf workloads, all six experiments) and compare field by field
against the checked-in JSONs, so a clock-model shift (like the PR 2
pivot-stream move or the PR 3 counter-RNG migration) becomes an explicit,
reviewed update of the golden files instead of silent drift::

    PYTHONPATH=src python tests/experiments/regen_golden.py

Failures list every differing field path with both values.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.campaign import CAMPAIGN_EXPERIMENTS

from regen_golden import GOLDEN_DIR, golden_summary

MAX_REPORTED_DIFFS = 25


def _diff(expected, actual, path="", out=None):
    """Collect `path: expected != actual` strings, depth-first."""
    if out is None:
        out = []
    if len(out) >= MAX_REPORTED_DIFFS:
        return out
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                out.append(f"{sub}: UNEXPECTED field = {actual[key]!r}")
            elif key not in actual:
                out.append(f"{sub}: MISSING (golden = {expected[key]!r})")
            else:
                _diff(expected[key], actual[key], sub, out)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} != {len(actual)}")
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{i}]", out)
    elif expected != actual:
        out.append(f"{path}: golden {expected!r} != actual {actual!r}")
    return out


@pytest.fixture(scope="module")
def campaign_summary():
    return golden_summary()


def test_golden_files_exist():
    assert GOLDEN_DIR.is_dir()
    for experiment in CAMPAIGN_EXPERIMENTS:
        assert (GOLDEN_DIR / f"{experiment}.json").is_file(), (
            f"missing golden file for {experiment}; run "
            "PYTHONPATH=src python tests/experiments/regen_golden.py"
        )


def test_meta_matches_golden(campaign_summary):
    golden = json.loads((GOLDEN_DIR / "meta.json").read_text())
    diffs = _diff(golden, campaign_summary["meta"])
    assert not diffs, "campaign meta drifted from golden:\n  " + "\n  ".join(diffs)


@pytest.mark.parametrize("experiment", CAMPAIGN_EXPERIMENTS)
def test_experiment_matches_golden(campaign_summary, experiment):
    golden = json.loads((GOLDEN_DIR / f"{experiment}.json").read_text())
    # Round-trip the freshly computed sections through JSON so both sides
    # compare post-serialization values (e.g. tuples vs lists).
    actual = json.loads(json.dumps(campaign_summary["experiments"][experiment]))
    diffs = _diff(golden, actual)
    assert not diffs, (
        f"{experiment} campaign output drifted from tests/experiments/golden/"
        f"{experiment}.json — if the shift is intentional (e.g. an RNG-stream "
        "or cost-model change), regenerate with "
        "'PYTHONPATH=src python tests/experiments/regen_golden.py' and review "
        "the diff.  Field-by-field differences:\n  " + "\n  ".join(diffs)
    )
