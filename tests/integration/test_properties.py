"""Cross-cutting property-based tests (hypothesis) on the full algorithms.

Each property is checked against randomly generated machine sizes, local
data distributions (including empty PEs and heavy duplicates) and algorithm
configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ams_sort import ams_sort
from repro.core.baselines import single_level_mergesort, single_level_sample_sort
from repro.core.config import AMSConfig, RLMConfig
from repro.core.rlm_sort import rlm_sort
from repro.core.validation import check_globally_sorted, check_permutation
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine


local_data_strategy = st.lists(
    st.lists(st.integers(-50, 50), min_size=0, max_size=40),
    min_size=1,
    max_size=9,
)


def to_arrays(per_pe):
    return [np.asarray(x, dtype=np.int64) for x in per_pe]


class TestDistributedSortingProperties:
    @given(local_data_strategy, st.integers(1, 3), st.integers(0, 10_000),
           st.sampled_from(["naive", "randomized", "deterministic", "advanced"]))
    @settings(max_examples=25, deadline=None)
    def test_ams_sorted_permutation_any_delivery(self, per_pe, levels, seed, delivery):
        data = to_arrays(per_pe)
        machine = SimulatedMachine(len(data), spec=laptop_like(), seed=seed)
        output = ams_sort(machine.world(), data,
                          config=AMSConfig(levels=levels, node_size=2, delivery=delivery))
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    @given(local_data_strategy, st.integers(1, 3), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_rlm_sorted_permutation(self, per_pe, levels, seed):
        data = to_arrays(per_pe)
        machine = SimulatedMachine(len(data), spec=laptop_like(), seed=seed)
        output = rlm_sort(machine.world(), data,
                          config=RLMConfig(levels=levels, node_size=2))
        assert check_globally_sorted(output)
        assert check_permutation(data, output)

    @given(local_data_strategy, st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_rlm_output_balance(self, per_pe, seed):
        """RLM-sort output sizes are within rounding of perfect balance."""
        data = to_arrays(per_pe)
        p = len(data)
        machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
        output = rlm_sort(machine.world(), data, config=RLMConfig(levels=2, node_size=2))
        sizes = np.array([o.size for o in output])
        assert sizes.sum() == sum(d.size for d in data)
        if sizes.sum() >= p:
            assert sizes.max() - sizes.min() <= 8

    @given(local_data_strategy, st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_baselines_sorted_permutation(self, per_pe, seed):
        data = to_arrays(per_pe)
        machine1 = SimulatedMachine(len(data), spec=laptop_like(), seed=seed)
        machine2 = SimulatedMachine(len(data), spec=laptop_like(), seed=seed)
        out_ss = single_level_sample_sort(machine1.world(), data)
        out_ms = single_level_mergesort(machine2.world(), data)
        for output in (out_ss, out_ms):
            assert check_globally_sorted(output)
            assert check_permutation(data, output)

    @given(local_data_strategy, st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_modelled_time_nonnegative_and_monotone_in_phases(self, per_pe, seed):
        """The modelled clock is non-negative and the sum of phase maxima is at
        least the makespan (phases are disjoint parts of the critical path)."""
        data = to_arrays(per_pe)
        machine = SimulatedMachine(len(data), spec=laptop_like(), seed=seed)
        ams_sort(machine.world(), data, config=AMSConfig(levels=2, node_size=2))
        total = machine.elapsed()
        assert total >= 0
        phase_sum = sum(machine.breakdown.max_time(ph) for ph in machine.breakdown.phases())
        assert phase_sum >= total * 0.999

    @given(st.integers(2, 8), st.integers(0, 30), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, p, n_per_pe, seed):
        """Identical seeds produce identical outputs and identical modelled time."""
        def one_run():
            machine = SimulatedMachine(p, spec=laptop_like(), seed=seed)
            rng = np.random.default_rng(seed)
            data = [rng.integers(0, 100, n_per_pe) for _ in range(p)]
            out = ams_sort(machine.world(), data, config=AMSConfig(levels=2, node_size=2))
            return machine.elapsed(), out

        t1, out1 = one_run()
        t2, out2 = one_run()
        assert t1 == pytest.approx(t2)
        for a, b in zip(out1, out2):
            assert np.array_equal(a, b)
