"""End-to-end integration tests across the whole stack.

These tests exercise the public API the way the examples and the benchmark
harness do: build a machine, generate a workload, run an algorithm, check
the output and the reported statistics, and verify the paper's headline
qualitative claims on the simulated machine.
"""

import numpy as np
import pytest

from repro import (
    AMSConfig,
    RLMConfig,
    SimulatedMachine,
    ams_sort,
    laptop_like,
    rlm_sort,
    run_on_machine,
    sort_array,
    supermuc_like,
)
from repro.analysis.theory import startup_bound_multilevel
from repro.core.runner import distribute_array
from repro.machine.counters import PHASE_DATA_DELIVERY, PHASE_LOCAL_SORT
from repro.workloads.generators import per_pe_workload, tiny_pieces_worst_case
from repro.workloads.morton import particle_morton_keys
from repro.workloads.records import generate_records, record_keys


class TestPublicAPI:
    def test_quickstart_snippet(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 10**9, size=20_000)
        result = sort_array(data, p=16, algorithm="ams",
                            config=AMSConfig(levels=2, node_size=4))
        assert np.array_equal(np.concatenate(result.output), np.sort(data))
        assert result.imbalance < 0.5
        assert set(result.phase_times) >= {PHASE_DATA_DELIVERY, PHASE_LOCAL_SORT}

    def test_float_keys_supported(self):
        rng = np.random.default_rng(1)
        data = rng.random(5000)
        result = sort_array(data, p=8, algorithm="rlm",
                            config=RLMConfig(levels=2, node_size=2), spec=laptop_like())
        assert np.allclose(np.concatenate(result.output), np.sort(data))

    def test_records_workflow(self):
        """Sort-benchmark records: sort by packed key, as the minute-sort example does."""
        records = generate_records(4000, rng=2)
        keys = record_keys(records)
        result = sort_array(keys, p=8, algorithm="ams",
                            config=AMSConfig(levels=2, node_size=2), spec=laptop_like())
        assert np.array_equal(np.concatenate(result.output), np.sort(keys))

    def test_spacefilling_curve_workflow(self):
        """The introduction's motivating application: sort particles by Morton key."""
        rng = np.random.default_rng(3)
        positions = rng.random((8000, 3))
        keys = particle_morton_keys(positions, bits=12, bounds=(0.0, 1.0))
        result = sort_array(keys, p=16, algorithm="ams",
                            config=AMSConfig(levels=2, node_size=4), spec=laptop_like())
        out = np.concatenate(result.output)
        assert np.array_equal(out, np.sort(keys))
        # the per-PE pieces partition the curve into contiguous ranges
        maxima = [o.max() for o in result.output if o.size]
        assert maxima == sorted(maxima)


class TestPaperClaims:
    """Qualitative claims of the paper checked on the simulator."""

    def test_startup_counts_follow_k_times_kth_root(self):
        p = 64
        data = per_pe_workload("uniform", p, 200, seed=0)
        startups = {}
        for levels in (1, 2, 3):
            machine = SimulatedMachine(p, spec=supermuc_like(), seed=0)
            run_on_machine(machine, data, algorithm="ams",
                           config=AMSConfig(levels=levels, node_size=4))
            startups[levels] = machine.counters.max_startups()
        # multi-level runs need far fewer startups than the single-level run
        assert startups[2] < startups[1]
        assert startups[1] >= p - 10
        assert startups[2] <= 4 * startup_bound_multilevel(p, 2)

    def test_ams_faster_than_rlm_for_small_inputs(self):
        """Figure 7's headline: AMS-sort beats RLM-sort, especially for small n/p."""
        p, n_per_pe = 32, 200
        data = per_pe_workload("uniform", p, n_per_pe, seed=1)
        m_ams = SimulatedMachine(p, spec=supermuc_like(), seed=1)
        m_rlm = SimulatedMachine(p, spec=supermuc_like(), seed=1)
        ams_res = run_on_machine(m_ams, data, algorithm="ams",
                                 config=AMSConfig(levels=2, node_size=16))
        rlm_res = run_on_machine(m_rlm, data, algorithm="rlm",
                                 config=RLMConfig(levels=2, node_size=16))
        assert ams_res.total_time < rlm_res.total_time

    def test_multilevel_beats_single_level_at_scale(self):
        """Multi-level AMS-sort beats the dense single-level sample sort when p
        is large relative to n/p (the regime the paper targets)."""
        p, n_per_pe = 256, 200
        data = per_pe_workload("uniform", p, n_per_pe, seed=2)
        m_multi = SimulatedMachine(p, spec=supermuc_like(), seed=2)
        m_single = SimulatedMachine(p, spec=supermuc_like(), seed=2)
        multi = run_on_machine(m_multi, data, algorithm="ams",
                               config=AMSConfig(levels=2, node_size=16))
        single = run_on_machine(m_single, data, algorithm="samplesort", schedule="dense")
        assert multi.total_time < single.total_time

    def test_ams_output_imbalance_bounded(self):
        p = 16
        data = per_pe_workload("uniform", p, 3000, seed=3)
        machine = SimulatedMachine(p, spec=supermuc_like(), seed=3)
        result = run_on_machine(machine, data, algorithm="ams",
                                config=AMSConfig(levels=2, node_size=4))
        assert result.imbalance < 0.3

    def test_worst_case_input_handled_by_deterministic_delivery(self):
        """The adversarial tiny-pieces input from Section 4.3 sorts correctly and
        without concentrating messages when the two-phase delivery is used."""
        p = 16
        data = tiny_pieces_worst_case(p=p, r=4, n_per_pe=500, seed=4)
        machine = SimulatedMachine(p, spec=laptop_like(), seed=4)
        result = run_on_machine(machine, data, algorithm="ams",
                                config=AMSConfig(levels=2, node_size=4,
                                                 delivery="deterministic"))
        assert result.total_time > 0
        assert machine.counters.max_startups() < p * 3


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("workload", ["uniform", "zipf", "duplicates"])
    def test_all_algorithms_agree(self, workload):
        p = 8
        data = per_pe_workload(workload, p, 300, seed=5)
        expected = np.sort(np.concatenate(data))
        for algorithm, config in [
            ("ams", AMSConfig(levels=2, node_size=2)),
            ("rlm", RLMConfig(levels=2, node_size=2)),
            ("samplesort", None),
            ("mergesort", None),
            ("quicksort", None),
        ]:
            machine = SimulatedMachine(p, spec=laptop_like(), seed=5)
            result = run_on_machine(machine, data, algorithm=algorithm, config=config)
            assert np.array_equal(np.concatenate(result.output), expected), algorithm

    def test_distribute_then_sort_matches_numpy(self):
        data = np.random.default_rng(6).integers(-10**9, 10**9, 30_000)
        local = distribute_array(data, 12)
        machine = SimulatedMachine(12, spec=laptop_like(), seed=6)
        result = run_on_machine(machine, local, algorithm="ams",
                                config=AMSConfig(levels=2, node_size=4))
        assert np.array_equal(np.concatenate(result.output), np.sort(data))
