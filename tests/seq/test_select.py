"""Tests for :mod:`repro.seq.select`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seq.select import (
    quickselect,
    select_from_sorted_runs,
    split_positions_are_consistent,
    split_sorted_runs_at_ranks,
)


sorted_run = st.lists(st.integers(0, 50), min_size=0, max_size=25).map(sorted)


class TestQuickselect:
    def test_matches_sort(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, 37)
        for k in (0, 5, 18, 36):
            assert quickselect(values, k) == np.sort(values)[k]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            quickselect(np.array([1, 2, 3]), 3)


class TestSplitAtRanks:
    def test_basic_split(self):
        runs = [np.array([1, 4, 7]), np.array([2, 5, 8]), np.array([3, 6, 9])]
        splits = split_sorted_runs_at_ranks(runs, [3, 6])
        assert splits[0].sum() == 3
        assert splits[1].sum() == 6
        # rank 3 split takes exactly {1,2,3}
        assert splits[0].tolist() == [1, 1, 1]

    def test_rank_zero_and_total(self):
        runs = [np.array([1, 2]), np.array([3])]
        splits = split_sorted_runs_at_ranks(runs, [0, 3])
        assert splits[0].tolist() == [0, 0]
        assert splits[1].tolist() == [2, 1]

    def test_duplicates_distributed_by_run_index(self):
        runs = [np.array([5, 5]), np.array([5, 5]), np.array([5])]
        splits = split_sorted_runs_at_ranks(runs, [3])
        assert splits[0].sum() == 3
        # tie breaking by run index: take from earlier runs first
        assert splits[0].tolist() == [2, 1, 0]

    def test_unsorted_run_rejected(self):
        with pytest.raises(ValueError):
            split_sorted_runs_at_ranks([np.array([3, 1])], [1])

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            split_sorted_runs_at_ranks([np.array([1])], [2])
        with pytest.raises(ValueError):
            split_sorted_runs_at_ranks([np.array([1])], [-1])

    def test_decreasing_ranks_rejected(self):
        with pytest.raises(ValueError):
            split_sorted_runs_at_ranks([np.array([1, 2, 3])], [2, 1])

    def test_empty_runs(self):
        splits = split_sorted_runs_at_ranks([np.empty(0), np.empty(0)], [0])
        assert splits[0].tolist() == [0, 0]

    @given(st.lists(sorted_run, min_size=1, max_size=5), st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_exact_ranks_and_consistency(self, runs, data):
        arrays = [np.asarray(r, dtype=np.int64) for r in runs]
        total = sum(a.size for a in arrays)
        num_ranks = data.draw(st.integers(1, 4))
        ranks = sorted(data.draw(st.lists(st.integers(0, total),
                                          min_size=num_ranks, max_size=num_ranks)))
        splits = split_sorted_runs_at_ranks(arrays, ranks)
        for t, k in enumerate(ranks):
            assert int(splits[t].sum()) == k
            assert split_positions_are_consistent(arrays, splits[t])
            for i, a in enumerate(arrays):
                assert 0 <= splits[t, i] <= a.size


class TestSelectFromRuns:
    def test_matches_global_sort(self):
        rng = np.random.default_rng(7)
        runs = [np.sort(rng.integers(0, 40, rng.integers(1, 10))) for _ in range(4)]
        union = np.sort(np.concatenate(runs))
        for k in range(0, union.size, 3):
            assert select_from_sorted_runs(runs, k) == union[k]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            select_from_sorted_runs([np.array([1, 2])], 2)


class TestConsistencyChecker:
    def test_consistent(self):
        runs = [np.array([1, 5]), np.array([2, 9])]
        assert split_positions_are_consistent(runs, [1, 1])

    def test_inconsistent(self):
        runs = [np.array([1, 5]), np.array([2, 9])]
        # left part {1,5} vs right part {2,9} -> 5 > 2 violates consistency
        assert not split_positions_are_consistent(runs, [2, 0])

    def test_trivial_splits(self):
        runs = [np.array([1, 2])]
        assert split_positions_are_consistent(runs, [0])
        assert split_positions_are_consistent(runs, [2])
