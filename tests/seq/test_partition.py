"""Tests for :mod:`repro.seq.partition`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seq.partition import (
    bucket_indices,
    bucket_sizes,
    partition_by_splitters,
    partition_with_equality_buckets,
    splitters_from_sorted,
)


class TestBucketIndices:
    def test_basic(self):
        idx = bucket_indices(np.array([1, 5, 10, 15]), np.array([5, 10]))
        assert idx.tolist() == [0, 1, 2, 2]

    def test_no_splitters(self):
        idx = bucket_indices(np.array([3, 1, 2]), np.empty(0))
        assert idx.tolist() == [0, 0, 0]

    def test_unsorted_splitters_rejected(self):
        with pytest.raises(ValueError):
            bucket_indices(np.array([1]), np.array([5, 3]))

    def test_equal_to_splitter_goes_right_bucket(self):
        # value == splitter s_i lands in bucket i+1 (buckets are [s_{i-1}, s_i))
        idx = bucket_indices(np.array([5]), np.array([5]))
        assert idx.tolist() == [1]

    def test_bucket_sizes(self):
        sizes = bucket_sizes(np.array([1, 5, 10, 15, 3]), np.array([5, 10]))
        assert sizes.tolist() == [2, 1, 2]
        assert sizes.sum() == 5


class TestPartitionBySplitters:
    def test_partition_covers_input(self):
        values = np.array([9, 1, 7, 3, 5])
        parts = partition_by_splitters(values, np.array([4, 8]))
        assert sorted(np.concatenate(parts).tolist()) == sorted(values.tolist())
        assert [p.tolist() for p in parts] == [[1, 3], [7, 5], [9]]

    def test_empty_input(self):
        parts = partition_by_splitters(np.empty(0, dtype=np.int64), np.array([1, 2]))
        assert len(parts) == 3
        assert all(p.size == 0 for p in parts)

    def test_order_within_bucket_preserved(self):
        values = np.array([3, 1, 2, 1, 3])
        parts = partition_by_splitters(values, np.array([2]))
        assert parts[0].tolist() == [1, 1]
        assert parts[1].tolist() == [3, 2, 3]

    @given(
        st.lists(st.integers(0, 100), min_size=0, max_size=60),
        st.lists(st.integers(0, 100), min_size=0, max_size=8).map(sorted),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bucket_ranges(self, values, splitters):
        values = np.asarray(values, dtype=np.int64)
        splitters = np.asarray(splitters, dtype=np.int64)
        parts = partition_by_splitters(values, splitters)
        assert len(parts) == splitters.size + 1
        assert sum(p.size for p in parts) == values.size
        for b, part in enumerate(parts):
            if part.size == 0:
                continue
            if b > 0:
                assert part.min() >= splitters[b - 1]
            if b < splitters.size:
                assert part.max() < splitters[b]


class TestEqualityBuckets:
    def test_split_of_equal_values(self):
        values = np.array([1, 2, 2, 3, 2])
        result = partition_with_equality_buckets(values, np.array([2]))
        assert result.buckets[0].tolist() == [1]
        assert result.buckets[1].tolist() == [3]
        assert result.equality_buckets[0].tolist() == [2, 2, 2]
        assert result.total_size() == 5

    def test_no_splitters(self):
        values = np.array([5, 1])
        result = partition_with_equality_buckets(values, np.empty(0))
        assert result.buckets[0].tolist() == [5, 1]
        assert result.equality_buckets == []

    def test_merged_buckets_left(self):
        values = np.array([1, 2, 2, 3])
        result = partition_with_equality_buckets(values, np.array([2]))
        merged = result.merged_buckets(equal_goes_left=True)
        assert sorted(merged[0].tolist()) == [1, 2, 2]
        assert merged[1].tolist() == [3]

    def test_merged_buckets_right(self):
        values = np.array([1, 2, 2, 3])
        result = partition_with_equality_buckets(values, np.array([2]))
        merged = result.merged_buckets(equal_goes_left=False)
        assert merged[0].tolist() == [1]
        assert sorted(merged[1].tolist()) == [2, 2, 3]

    @given(
        st.lists(st.integers(0, 20), min_size=0, max_size=50),
        st.lists(st.integers(0, 20), min_size=1, max_size=5).map(lambda s: sorted(set(s))),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_conservation(self, values, splitters):
        values = np.asarray(values, dtype=np.int64)
        splitters = np.asarray(splitters, dtype=np.int64)
        result = partition_with_equality_buckets(values, splitters)
        assert result.total_size() == values.size
        merged = result.merged_buckets()
        assert sorted(np.concatenate(merged).tolist() if merged else []) == sorted(values.tolist())
        for i, eq in enumerate(result.equality_buckets):
            assert np.all(eq == splitters[i])


class TestSplittersFromSorted:
    def test_equidistant(self):
        sample = np.arange(100)
        splitters = splitters_from_sorted(sample, 3)
        assert splitters.tolist() == [25, 50, 75]

    def test_count_zero(self):
        assert splitters_from_sorted(np.arange(10), 0).size == 0

    def test_empty_sample(self):
        assert splitters_from_sorted(np.empty(0), 5).size == 0

    def test_more_splitters_than_sample(self):
        splitters = splitters_from_sorted(np.array([1, 2]), 5)
        assert splitters.size == 5
        assert np.all(np.diff(splitters) >= 0)
