"""Tests for :mod:`repro.seq.sequences`."""

import numpy as np
import pytest

from repro.seq.sequences import SortedRuns, check_runs_sorted, runs_total_size


class TestSortedRuns:
    def test_construction_and_iteration(self):
        runs = SortedRuns([np.array([1, 2]), np.array([3])])
        assert len(runs) == 2
        assert [r.tolist() for r in runs] == [[1, 2], [3]]
        assert runs[1].tolist() == [3]

    def test_validate_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SortedRuns([np.array([2, 1])], validate=True)

    def test_validate_rejects_2d(self):
        with pytest.raises(ValueError):
            SortedRuns([np.zeros((2, 2))], validate=True)

    def test_append_extend(self):
        runs = SortedRuns()
        runs.append(np.array([1]))
        runs.extend([np.array([2]), np.array([3])])
        assert runs.total_size() == 3

    def test_merged(self):
        runs = SortedRuns([np.array([1, 4]), np.array([2, 3])])
        assert runs.merged().tolist() == [1, 2, 3, 4]

    def test_concatenated_keeps_run_order(self):
        runs = SortedRuns([np.array([4, 5]), np.array([1])])
        assert runs.concatenated().tolist() == [4, 5, 1]

    def test_concatenated_empty(self):
        assert SortedRuns([np.empty(0)]).concatenated().size == 0
        assert SortedRuns([]).concatenated().size == 0

    def test_non_empty_filter(self):
        runs = SortedRuns([np.empty(0), np.array([1])])
        assert len(runs.non_empty()) == 1

    def test_dtype(self):
        runs = SortedRuns([np.empty(0, dtype=np.int32), np.array([1, 2], dtype=np.int64)])
        assert runs.dtype() == np.int64


class TestHelpers:
    def test_runs_total_size(self):
        assert runs_total_size([np.arange(3), np.arange(2)]) == 5
        assert runs_total_size([]) == 0

    def test_check_runs_sorted(self):
        assert check_runs_sorted([np.array([1, 2]), np.empty(0)])
        assert not check_runs_sorted([np.array([1, 2]), np.array([3, 1])])
