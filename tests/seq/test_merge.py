"""Tests for :mod:`repro.seq.merge`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seq.merge import LoserTree, merge_runs_numpy, merge_two, multiway_merge


sorted_run = st.lists(st.integers(-1000, 1000), min_size=0, max_size=30).map(sorted)


class TestLoserTree:
    def test_pop_order(self):
        tree = LoserTree([np.array([1, 5, 9]), np.array([2, 3]), np.array([0, 7])])
        out = [tree.pop() for _ in range(7)]
        assert out == [0, 1, 2, 3, 5, 7, 9]

    def test_empty_runs(self):
        tree = LoserTree([np.empty(0), np.empty(0)])
        assert tree.empty()
        with pytest.raises(IndexError):
            tree.pop()

    def test_len(self):
        tree = LoserTree([np.array([1, 2]), np.array([3])])
        assert len(tree) == 3
        tree.pop()
        assert len(tree) == 2

    def test_peek_does_not_consume(self):
        tree = LoserTree([np.array([5]), np.array([2])])
        assert tree.peek() == 2
        assert tree.peek() == 2
        assert tree.pop() == 2

    def test_stability_ties_favour_lower_run(self):
        # Using float arrays with equal keys: the run index decides.
        tree = LoserTree([np.array([1.0]), np.array([1.0])])
        first = tree.pop()
        assert first == 1.0
        # cannot observe origin directly, but popping twice must not crash
        assert tree.pop() == 1.0
        assert tree.empty()

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            LoserTree([np.zeros((2, 2))])


class TestMergeTwo:
    def test_basic(self):
        out = merge_two(np.array([1, 3, 5]), np.array([2, 4, 6]))
        assert out.tolist() == [1, 2, 3, 4, 5, 6]

    def test_empty_sides(self):
        assert merge_two(np.empty(0), np.array([1, 2])).tolist() == [1, 2]
        assert merge_two(np.array([1, 2]), np.empty(0)).tolist() == [1, 2]

    def test_duplicates(self):
        out = merge_two(np.array([1, 2, 2, 3]), np.array([2, 2, 4]))
        assert out.tolist() == [1, 2, 2, 2, 2, 3, 4]

    def test_result_is_new_array(self):
        a = np.array([1, 2])
        out = merge_two(a, np.empty(0))
        out[0] = 99
        assert a[0] == 1

    @given(sorted_run, sorted_run)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_sort(self, a, b):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = merge_two(a, b)
        assert out.tolist() == sorted(a.tolist() + b.tolist())


class TestMultiwayMerge:
    def test_matches_sort(self):
        rng = np.random.default_rng(0)
        runs = [np.sort(rng.integers(0, 50, rng.integers(0, 10))) for _ in range(6)]
        out = multiway_merge(runs)
        assert out.tolist() == sorted(np.concatenate(runs).tolist())

    def test_all_empty(self):
        assert multiway_merge([np.empty(0), np.empty(0)]).size == 0

    def test_single_run(self):
        out = multiway_merge([np.array([1, 2, 3])])
        assert out.tolist() == [1, 2, 3]

    @given(st.lists(sorted_run, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalent_to_sort(self, runs):
        arrays = [np.asarray(r, dtype=np.int64) for r in runs]
        out = multiway_merge(arrays)
        expected = sorted(x for r in runs for x in r)
        assert out.tolist() == expected


class TestMergeRunsNumpy:
    def test_matches_loser_tree(self):
        rng = np.random.default_rng(3)
        runs = [np.sort(rng.integers(0, 1000, rng.integers(0, 200))) for _ in range(9)]
        assert merge_runs_numpy(runs).tolist() == multiway_merge(runs).tolist()

    def test_empty_input_list(self):
        assert merge_runs_numpy([]).size == 0

    def test_no_aliasing_with_single_nonempty_run(self):
        a = np.array([1, 2, 3])
        out = merge_runs_numpy([np.empty(0, dtype=np.int64), a])
        out[0] = 99
        assert a[0] == 1

    @given(st.lists(sorted_run, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalent_to_sort(self, runs):
        arrays = [np.asarray(r, dtype=np.int64) for r in runs]
        out = merge_runs_numpy(arrays)
        expected = sorted(x for r in runs for x in r)
        assert out.tolist() == expected
