"""Tests for :mod:`repro.seq.sorting`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seq.sorting import (
    counting_sort_small_range,
    insertion_sort,
    is_sorted,
    local_sort,
    sortedness_violations,
)


class TestLocalSort:
    def test_sorts(self):
        out = local_sort(np.array([3, 1, 2]))
        assert out.tolist() == [1, 2, 3]

    def test_input_untouched(self):
        a = np.array([3, 1, 2])
        local_sort(a)
        assert a.tolist() == [3, 1, 2]

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            local_sort(np.zeros((2, 2)))


class TestInsertionSort:
    @given(st.lists(st.integers(-100, 100), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_matches_builtin(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert insertion_sort(arr).tolist() == sorted(values)

    def test_empty(self):
        assert insertion_sort(np.empty(0, dtype=np.int64)).size == 0


class TestSortednessChecks:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.empty(0))
        assert is_sorted(np.array([7]))

    def test_violations_count(self):
        assert sortedness_violations(np.array([1, 2, 3])) == 0
        assert sortedness_violations(np.array([3, 2, 1])) == 2
        assert sortedness_violations(np.array([1, 3, 2, 4, 0])) == 2


class TestCountingSort:
    def test_matches_sort(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 16, 100)
        assert counting_sort_small_range(values).tolist() == sorted(values.tolist())

    def test_requires_integers(self):
        with pytest.raises(TypeError):
            counting_sort_small_range(np.array([1.5, 2.5]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            counting_sort_small_range(np.array([-1, 2]))

    def test_empty(self):
        assert counting_sort_small_range(np.empty(0, dtype=np.int64)).size == 0
