"""Tests for :mod:`repro.blocks.delivery` (data delivery to PE groups)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.delivery import DELIVERY_METHODS, deliver_to_groups
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=9).world()


def random_pieces(p, r, seed=0, max_piece=30):
    """pieces[i][j]: keys in the j-th value range so group ordering is checkable."""
    rng = np.random.default_rng(seed)
    pieces = []
    for i in range(p):
        row = []
        for j in range(r):
            size = int(rng.integers(0, max_piece + 1))
            row.append(rng.integers(j * 1000, (j + 1) * 1000, size=size, dtype=np.int64))
        pieces.append(row)
    return pieces


def total_of_group(pieces, j):
    return int(sum(pieces[i][j].size for i in range(len(pieces))))


@pytest.mark.parametrize("method", DELIVERY_METHODS)
class TestDeliveryAllMethods:
    def test_conservation_and_group_membership(self, method):
        p, r = 8, 4
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=1)
        result = deliver_to_groups(comm, groups, pieces, method=method)
        # every element arrives exactly once, in the right group's key range
        for j, group in enumerate(groups):
            received = []
            for rank in range(p):
                if result.group_of_rank[rank] == j:
                    received.append(result.received_concat(rank))
            got = np.sort(np.concatenate([x for x in received if x.size]) if received else np.empty(0))
            expected = np.sort(np.concatenate([pieces[i][j] for i in range(p)]))
            assert np.array_equal(got, expected)

    def test_balance_within_groups(self, method):
        p, r = 8, 2
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=2, max_piece=50)
        result = deliver_to_groups(comm, groups, pieces, method=method)
        for j, group in enumerate(groups):
            m_j = total_of_group(pieces, j)
            p_g = group.size
            cap = math.ceil(m_j / p_g) if m_j else 0
            ranks = [rank for rank in range(p) if result.group_of_rank[rank] == j]
            sizes = [int(result.received_sizes[rank]) for rank in ranks]
            # deterministic method may exceed the block capacity slightly due
            # to whole small pieces; allow the documented slack.
            slack = cap if method == "deterministic" else 1
            assert max(sizes, default=0) <= cap + slack

    def test_time_charged_and_counters(self, method):
        p, r = 6, 3
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=3)
        deliver_to_groups(comm, groups, pieces, method=method)
        assert comm.machine.elapsed() > 0

    def test_empty_pieces_everywhere(self, method):
        p, r = 4, 2
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = [[np.empty(0, dtype=np.int64) for _ in range(r)] for _ in range(p)]
        result = deliver_to_groups(comm, groups, pieces, method=method)
        assert result.received_sizes.sum() == 0

    def test_group_loads_reported(self, method):
        p, r = 6, 3
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=4)
        result = deliver_to_groups(comm, groups, pieces, method=method)
        for j in range(r):
            assert result.group_loads[j] == total_of_group(pieces, j)


class TestDeliveryValidation:
    def test_unknown_method(self):
        comm = make_comm(4)
        groups = comm.split(2)
        pieces = random_pieces(4, 2)
        with pytest.raises(ValueError):
            deliver_to_groups(comm, groups, pieces, method="teleport")

    def test_wrong_piece_arity(self):
        comm = make_comm(4)
        groups = comm.split(2)
        pieces = [[np.empty(0)] for _ in range(4)]  # only one piece per PE
        with pytest.raises(ValueError):
            deliver_to_groups(comm, groups, pieces)

    def test_groups_must_partition(self):
        comm = make_comm(6)
        groups = comm.split(3)[:2]  # drop one group
        pieces = random_pieces(6, 2)
        with pytest.raises(ValueError):
            deliver_to_groups(comm, groups, pieces)

    def test_zero_groups(self):
        comm = make_comm(4)
        with pytest.raises(ValueError):
            deliver_to_groups(comm, [], [[] for _ in range(4)])


class TestMessageBounds:
    def test_sender_message_bound(self):
        """Each PE sends at most O(r) messages (pieces split over <= a few targets)."""
        p, r = 16, 4
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=5, max_piece=40)
        result = deliver_to_groups(comm, groups, pieces, method="deterministic")
        assert result.max_sent_messages() <= 3 * r

    def test_naive_worst_case_concentrates_messages(self):
        """The adversarial tiny-piece input makes one PE of each group receive
        a message from nearly every sender under naive delivery ..."""
        p, r = 16, 2
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = []
        for i in range(p):
            if i == 0:
                pieces.append([np.arange(200), np.arange(200)])
            else:
                pieces.append([np.array([1]), np.array([1])])
        naive = deliver_to_groups(comm, groups, pieces, method="naive")
        assert naive.max_received_messages() >= p - 2

    def test_randomization_or_determinism_spreads_messages(self):
        """... while the deterministic two-phase algorithm bounds it by O(r)."""
        p, r = 16, 2
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = []
        for i in range(p):
            if i == 0:
                pieces.append([np.arange(200), np.arange(200)])
            else:
                pieces.append([np.array([1]), np.array([1])])
        det = deliver_to_groups(comm, groups, pieces, method="deterministic")
        naive = deliver_to_groups(make_comm(p), make_comm(p).split(r), pieces, method="naive")
        assert det.max_received_messages() < naive.max_received_messages()
        assert det.max_received_messages() <= 2 * r + 2

    def test_advanced_bounds_received_messages(self):
        p, r = 16, 4
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=6, max_piece=100)
        result = deliver_to_groups(comm, groups, pieces, method="advanced", oversplit=2.0)
        # Lemma 6: <= 1 + 2r(1 + 1/a) received messages w.h.p.
        assert result.max_received_messages() <= 1 + 2 * r * (1 + 1 / 2.0) + r


class TestDeliveryProperties:
    @given(
        st.integers(2, 8),
        st.integers(1, 4),
        st.integers(0, 10_000),
        st.sampled_from(list(DELIVERY_METHODS)),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_conservation(self, p, r, seed, method):
        r = min(r, p)
        comm = make_comm(p)
        groups = comm.split(r)
        pieces = random_pieces(p, r, seed=seed, max_piece=12)
        result = deliver_to_groups(comm, groups, pieces, method=method, seed=seed)
        sent = sorted(
            np.concatenate(
                [pieces[i][j] for i in range(p) for j in range(r)]
            ).tolist()
        ) if any(pieces[i][j].size for i in range(p) for j in range(r)) else []
        received = sorted(
            np.concatenate(
                [result.received_concat(rank) for rank in range(p)]
            ).tolist()
        ) if result.received_sizes.sum() else []
        assert sent == received
