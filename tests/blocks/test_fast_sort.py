"""Tests for :mod:`repro.blocks.fast_sort` (fast work-inefficient sorting)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.fast_sort import (
    fast_work_inefficient_sort,
    grid_shape,
    select_splitters_by_rank,
)
from repro.machine.counters import PHASE_SPLITTER_SELECTION
from repro.machine.spec import laptop_like
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=5).world()


class TestGridShape:
    @pytest.mark.parametrize("p,rows,cols", [(1, 1, 1), (2, 2, 1), (4, 2, 2),
                                             (8, 4, 2), (16, 4, 4), (64, 8, 8)])
    def test_powers_of_two(self, p, rows, cols):
        shape = grid_shape(p)
        assert (shape.rows, shape.cols) == (rows, cols)

    @pytest.mark.parametrize("p", [3, 5, 6, 7, 12, 50])
    def test_general_p_fits(self, p):
        shape = grid_shape(p)
        assert 1 <= shape.size <= p
        assert shape.rows * shape.cols == shape.size

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_shape(0)


class TestFastSort:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_global_ranks_are_a_permutation(self, p):
        comm = make_comm(p)
        rng = np.random.default_rng(p)
        local = [rng.integers(0, 10**6, size=5) for _ in range(p)]
        sorted_vals, sorted_ids, per_pe_vals, per_pe_ranks = fast_work_inefficient_sort(
            comm, local
        )
        total = 5 * p
        all_ranks = np.concatenate(per_pe_ranks)
        assert sorted(all_ranks.tolist()) == list(range(total))
        assert np.all(np.diff(sorted_vals) >= 0)
        assert sorted_vals.size == total

    def test_ranks_respect_values(self):
        comm = make_comm(4)
        local = [np.array([10, 40]), np.array([20]), np.array([30, 5]), np.array([1])]
        sorted_vals, _, per_pe_vals, per_pe_ranks = fast_work_inefficient_sort(comm, local)
        flat_vals = np.concatenate(per_pe_vals)
        flat_ranks = np.concatenate(per_pe_ranks)
        order = np.argsort(flat_ranks)
        assert np.all(np.diff(flat_vals[order]) >= 0)
        assert sorted_vals.tolist() == sorted(flat_vals.tolist())

    def test_duplicates_get_distinct_ranks(self):
        comm = make_comm(4)
        local = [np.full(3, 7) for _ in range(4)]
        _, _, _, per_pe_ranks = fast_work_inefficient_sort(comm, local)
        all_ranks = np.concatenate(per_pe_ranks)
        assert sorted(all_ranks.tolist()) == list(range(12))

    def test_non_power_of_two_pe_count(self):
        comm = make_comm(6)
        rng = np.random.default_rng(0)
        local = [rng.integers(0, 100, size=4) for _ in range(6)]
        sorted_vals, _, _, per_pe_ranks = fast_work_inefficient_sort(comm, local)
        assert sorted_vals.size == 24
        assert sorted(np.concatenate(per_pe_ranks).tolist()) == list(range(24))

    def test_empty_contributions(self):
        comm = make_comm(4)
        local = [np.empty(0, dtype=np.int64), np.array([3, 1]),
                 np.empty(0, dtype=np.int64), np.array([2])]
        sorted_vals, _, _, per_pe_ranks = fast_work_inefficient_sort(comm, local)
        assert sorted_vals.tolist() == [1, 2, 3]
        assert per_pe_ranks[0].size == 0

    def test_all_empty(self):
        comm = make_comm(4)
        local = [np.empty(0, dtype=np.int64) for _ in range(4)]
        sorted_vals, ids, _, _ = fast_work_inefficient_sort(comm, local)
        assert sorted_vals.size == 0

    def test_charges_splitter_selection_phase(self):
        comm = make_comm(8)
        rng = np.random.default_rng(0)
        local = [rng.integers(0, 100, 8) for _ in range(8)]
        fast_work_inefficient_sort(comm, local)
        assert comm.machine.breakdown.max_time(PHASE_SPLITTER_SELECTION) > 0

    def test_wrong_arity(self):
        comm = make_comm(4)
        with pytest.raises(ValueError):
            fast_work_inefficient_sort(comm, [np.array([1])])

    @given(st.integers(1, 9), st.integers(0, 6), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_sorted_union(self, p, per_pe, seed):
        comm = make_comm(p)
        rng = np.random.default_rng(seed)
        local = [rng.integers(0, 50, size=per_pe) for _ in range(p)]
        sorted_vals, _, _, _ = fast_work_inefficient_sort(comm, local)
        expected = np.sort(np.concatenate(local)) if per_pe else np.empty(0)
        assert sorted_vals.tolist() == expected.tolist()


class TestSplitterSelection:
    def test_splitters_are_sorted_and_in_range(self):
        comm = make_comm(8)
        rng = np.random.default_rng(1)
        local = [rng.integers(0, 1000, 20) for _ in range(8)]
        splitters = select_splitters_by_rank(comm, local, 15)
        assert splitters.size == 15
        assert np.all(np.diff(splitters) >= 0)
        union = np.concatenate(local)
        assert np.all(np.isin(splitters, union))

    def test_splitters_roughly_equidistant(self):
        comm = make_comm(4)
        local = [np.arange(i * 100, (i + 1) * 100) for i in range(4)]
        splitters = select_splitters_by_rank(comm, local, 3)
        assert splitters.tolist() == [100, 200, 300]

    def test_zero_splitters(self):
        comm = make_comm(4)
        local = [np.arange(5) for _ in range(4)]
        assert select_splitters_by_rank(comm, local, 0).size == 0

    def test_empty_sample(self):
        comm = make_comm(4)
        local = [np.empty(0, dtype=np.int64) for _ in range(4)]
        assert select_splitters_by_rank(comm, local, 7).size == 0
