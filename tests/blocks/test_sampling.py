"""Tests for :mod:`repro.blocks.sampling`."""

import numpy as np
import pytest

from repro.blocks.sampling import (
    SamplingParams,
    default_oversampling,
    draw_local_sample,
    draw_samples,
    splitter_ranks,
)
from repro.dist.ctr_rng import CounterRNG


class TestSamplingParams:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SamplingParams(oversampling=0)
        with pytest.raises(ValueError):
            SamplingParams(overpartitioning=0)

    def test_num_buckets_and_splitters(self):
        params = SamplingParams(oversampling=2, overpartitioning=4)
        assert params.num_buckets(8) == 32
        assert params.num_splitters(8) == 31

    def test_samples_per_pe_paper_mode(self):
        params = SamplingParams(oversampling=12.0, overpartitioning=16, per_pe=True)
        assert params.samples_per_pe(p=512, r=32) == 192

    def test_samples_per_pe_theory_mode(self):
        params = SamplingParams(oversampling=2.0, overpartitioning=8, per_pe=False)
        # total sample a*b*r = 2*8*16 = 256 spread over 64 PEs -> 4 per PE
        assert params.samples_per_pe(p=64, r=16) == 4

    def test_total_samples(self):
        params = SamplingParams(oversampling=1.0, overpartitioning=4, per_pe=True)
        assert params.total_samples(p=10, r=2) == 40

    def test_paper_defaults(self):
        params = SamplingParams.paper_defaults(10**7)
        assert params.overpartitioning == 16
        assert params.oversampling == pytest.approx(1.6 * 7, rel=0.01)

    def test_theory_choice_scales_with_eps(self):
        tight = SamplingParams.theory(eps=0.01, r=64)
        loose = SamplingParams.theory(eps=0.5, r=64)
        assert tight.overpartitioning > loose.overpartitioning

    def test_theory_invalid_eps(self):
        with pytest.raises(ValueError):
            SamplingParams.theory(eps=0, r=4)

    def test_default_oversampling_monotone(self):
        assert default_oversampling(10**6) < default_oversampling(10**9)
        assert default_oversampling(1) == 1.0


class TestDrawSamples:
    def test_draw_local_sample_size(self):
        rng = np.random.default_rng(0)
        data = np.arange(100)
        sample = draw_local_sample(data, 10, rng)
        assert sample.size == 10
        assert np.all(np.isin(sample, data))

    def test_draw_from_empty(self):
        rng = np.random.default_rng(0)
        assert draw_local_sample(np.empty(0), 5, rng).size == 0

    def test_draw_more_than_available(self):
        rng = np.random.default_rng(0)
        sample = draw_local_sample(np.arange(3), 10, rng)
        assert sample.size == 10

    def test_zero_count(self):
        rng = np.random.default_rng(0)
        assert draw_local_sample(np.arange(5), 0, rng).size == 0

    def test_draw_samples_per_pe(self):
        params = SamplingParams(oversampling=2, overpartitioning=2, per_pe=True)
        data = [np.arange(50) for _ in range(4)]
        rng = CounterRNG(0)
        samples = draw_samples(
            data, params, p=4, r=2, rng=rng, level=0, pes=np.arange(4)
        )
        assert len(samples) == 4
        assert all(s.size == 4 for s in samples)
        assert all(np.isin(s, d).all() for s, d in zip(samples, data))

    def test_draw_samples_arity_check(self):
        params = SamplingParams()
        with pytest.raises(ValueError):
            draw_samples([np.arange(5)], params, p=2, r=2,
                         rng=CounterRNG(0), level=0, pes=np.arange(2))


class TestSplitterRanks:
    def test_equidistant(self):
        ranks = splitter_ranks(100, 4)
        assert ranks.tolist() == [20, 40, 60, 80]

    def test_empty_cases(self):
        assert splitter_ranks(0, 4).size == 0
        assert splitter_ranks(100, 0).size == 0

    def test_clamped_to_range(self):
        ranks = splitter_ranks(3, 10)
        assert ranks.max() <= 2
        assert ranks.min() >= 0
