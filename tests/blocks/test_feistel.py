"""Tests for :mod:`repro.blocks.feistel` (Appendix B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.feistel import FeistelPermutation, pseudorandom_permutation


class TestFeistelPermutation:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 100, 1000])
    def test_is_a_permutation(self, n):
        perm = FeistelPermutation(n, seed=42).permutation_array()
        assert sorted(perm.tolist()) == list(range(n))

    def test_deterministic_for_same_seed(self):
        a = FeistelPermutation(50, seed=1).permutation_array()
        b = FeistelPermutation(50, seed=1).permutation_array()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = FeistelPermutation(100, seed=1).permutation_array()
        b = FeistelPermutation(100, seed=2).permutation_array()
        assert not np.array_equal(a, b)

    def test_scalar_and_array_apply_agree(self):
        perm = FeistelPermutation(64, seed=5)
        arr = perm.apply(np.arange(64))
        for i in (0, 13, 63):
            assert perm.apply(i) == arr[i]
        assert isinstance(perm.apply(3), int)

    def test_out_of_domain_rejected(self):
        perm = FeistelPermutation(10, seed=0)
        with pytest.raises(ValueError):
            perm.apply(10)
        with pytest.raises(ValueError):
            perm.apply(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FeistelPermutation(0)
        with pytest.raises(ValueError):
            FeistelPermutation(4, rounds=0)

    def test_callable_interface(self):
        perm = FeistelPermutation(8, seed=3)
        assert perm(np.arange(8)).shape == (8,)

    def test_not_identity_for_reasonable_sizes(self):
        # A pseudorandom permutation of 256 elements is essentially never the identity.
        perm = FeistelPermutation(256, seed=7).permutation_array()
        assert not np.array_equal(perm, np.arange(256))

    def test_spreads_consecutive_inputs(self):
        """Consecutive inputs should not stay consecutive (the whole point of
        randomising PE numbers during data delivery)."""
        perm = FeistelPermutation(1024, seed=11).permutation_array()
        gaps = np.abs(np.diff(perm.astype(np.int64)))
        assert np.median(gaps) > 10

    @given(st.integers(1, 400), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_bijection(self, n, seed):
        perm = pseudorandom_permutation(n, seed=seed)
        assert np.unique(perm).size == n
        assert perm.min() == 0 and perm.max() == n - 1


class TestHelper:
    def test_zero_size(self):
        assert pseudorandom_permutation(0).size == 0
