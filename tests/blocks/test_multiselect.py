"""Tests for :mod:`repro.blocks.multiselect` (distributed multisequence selection)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.multiselect import multisequence_select
from repro.machine.spec import laptop_like
from repro.seq.select import split_positions_are_consistent
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=3).world()


def sorted_local_data(p, sizes, seed=0, high=1000):
    rng = np.random.default_rng(seed)
    return [np.sort(rng.integers(0, high, size=s)) for s in sizes]


class TestMultisequenceSelect:
    def test_exact_ranks(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [50, 50, 50, 50], seed=1)
        total = 200
        ranks = [50, 100, 150]
        result = multisequence_select(comm, data, ranks)
        assert result.splits.shape == (3, 4)
        for t, k in enumerate(ranks):
            assert int(result.splits[t].sum()) == k
            assert split_positions_are_consistent(data, result.splits[t])

    def test_trivial_ranks(self):
        comm = make_comm(3)
        data = sorted_local_data(3, [10, 10, 10])
        result = multisequence_select(comm, data, [0, 30])
        assert result.splits[0].sum() == 0
        assert result.splits[1].sum() == 30

    def test_uneven_local_sizes(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [0, 5, 100, 13], seed=2)
        result = multisequence_select(comm, data, [59])
        assert int(result.splits[0].sum()) == 59
        assert split_positions_are_consistent(data, result.splits[0])

    def test_heavy_duplicates(self):
        comm = make_comm(4)
        data = [np.full(20, 7) for _ in range(4)]
        result = multisequence_select(comm, data, [13, 40, 66])
        for t, k in enumerate([13, 40, 66]):
            assert int(result.splits[t].sum()) == k

    def test_all_data_on_one_pe(self):
        comm = make_comm(4)
        data = [np.sort(np.random.default_rng(0).integers(0, 100, 40)),
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64)]
        result = multisequence_select(comm, data, [10, 20, 30])
        assert result.splits[:, 0].tolist() == [10, 20, 30]

    def test_unsorted_input_rejected(self):
        comm = make_comm(2)
        with pytest.raises(ValueError):
            multisequence_select(comm, [np.array([3, 1]), np.array([1])], [1])

    def test_bad_rank_rejected(self):
        comm = make_comm(2)
        data = [np.array([1]), np.array([2])]
        with pytest.raises(ValueError):
            multisequence_select(comm, data, [5])
        with pytest.raises(ValueError):
            multisequence_select(comm, data, [2, 1])

    def test_wrong_arity(self):
        comm = make_comm(3)
        with pytest.raises(ValueError):
            multisequence_select(comm, [np.array([1])], [0])

    def test_charges_time(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [100] * 4, seed=5)
        multisequence_select(comm, data, [200])
        assert comm.machine.elapsed() > 0

    def test_splits_monotone_across_ranks(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [30] * 4, seed=9)
        ranks = [20, 40, 60, 100]
        result = multisequence_select(comm, data, ranks)
        diffs = np.diff(result.splits, axis=0)
        assert np.all(diffs >= 0)

    def test_pieces_for_pe(self):
        comm = make_comm(2)
        data = [np.arange(10), np.arange(10, 20)]
        result = multisequence_select(comm, data, [5, 15])
        slices = result.pieces_for_pe(0, 10)
        assert len(slices) == 3
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 10

    @given(
        st.integers(2, 5),
        st.lists(st.integers(0, 25), min_size=2, max_size=5),
        st.integers(0, 1000),
        st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_exact_and_consistent(self, p, sizes, seed, key_range_exp):
        p = min(p, len(sizes))
        sizes = sizes[:p]
        high = 2 ** key_range_exp + 1  # small ranges force many duplicates
        comm = make_comm(p)
        data = sorted_local_data(p, sizes, seed=seed, high=high)
        total = int(sum(sizes))
        rng = np.random.default_rng(seed + 1)
        ranks = sorted(int(x) for x in rng.integers(0, total + 1, size=3))
        result = multisequence_select(comm, data, ranks)
        for t, k in enumerate(ranks):
            assert int(result.splits[t].sum()) == k
            assert split_positions_are_consistent(data, result.splits[t])
