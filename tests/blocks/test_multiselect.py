"""Tests for :mod:`repro.blocks.multiselect` (distributed multisequence selection)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.multiselect import (
    multisequence_select,
    multisequence_select_batched,
    multisequence_select_flat,
)
from repro.dist.array import DistArray
from repro.machine.spec import laptop_like
from repro.seq.select import split_positions_are_consistent
from repro.sim.groups import GroupBatch
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=3).world()


def sorted_local_data(p, sizes, seed=0, high=1000):
    rng = np.random.default_rng(seed)
    return [np.sort(rng.integers(0, high, size=s)) for s in sizes]


class TestMultisequenceSelect:
    def test_exact_ranks(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [50, 50, 50, 50], seed=1)
        total = 200
        ranks = [50, 100, 150]
        result = multisequence_select(comm, data, ranks)
        assert result.splits.shape == (3, 4)
        for t, k in enumerate(ranks):
            assert int(result.splits[t].sum()) == k
            assert split_positions_are_consistent(data, result.splits[t])

    def test_trivial_ranks(self):
        comm = make_comm(3)
        data = sorted_local_data(3, [10, 10, 10])
        result = multisequence_select(comm, data, [0, 30])
        assert result.splits[0].sum() == 0
        assert result.splits[1].sum() == 30

    def test_uneven_local_sizes(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [0, 5, 100, 13], seed=2)
        result = multisequence_select(comm, data, [59])
        assert int(result.splits[0].sum()) == 59
        assert split_positions_are_consistent(data, result.splits[0])

    def test_heavy_duplicates(self):
        comm = make_comm(4)
        data = [np.full(20, 7) for _ in range(4)]
        result = multisequence_select(comm, data, [13, 40, 66])
        for t, k in enumerate([13, 40, 66]):
            assert int(result.splits[t].sum()) == k

    def test_all_data_on_one_pe(self):
        comm = make_comm(4)
        data = [np.sort(np.random.default_rng(0).integers(0, 100, 40)),
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64)]
        result = multisequence_select(comm, data, [10, 20, 30])
        assert result.splits[:, 0].tolist() == [10, 20, 30]

    def test_unsorted_input_rejected(self):
        comm = make_comm(2)
        with pytest.raises(ValueError):
            multisequence_select(comm, [np.array([3, 1]), np.array([1])], [1])

    def test_bad_rank_rejected(self):
        comm = make_comm(2)
        data = [np.array([1]), np.array([2])]
        with pytest.raises(ValueError):
            multisequence_select(comm, data, [5])
        with pytest.raises(ValueError):
            multisequence_select(comm, data, [2, 1])

    def test_wrong_arity(self):
        comm = make_comm(3)
        with pytest.raises(ValueError):
            multisequence_select(comm, [np.array([1])], [0])

    def test_charges_time(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [100] * 4, seed=5)
        multisequence_select(comm, data, [200])
        assert comm.machine.elapsed() > 0

    def test_splits_monotone_across_ranks(self):
        comm = make_comm(4)
        data = sorted_local_data(4, [30] * 4, seed=9)
        ranks = [20, 40, 60, 100]
        result = multisequence_select(comm, data, ranks)
        diffs = np.diff(result.splits, axis=0)
        assert np.all(diffs >= 0)

    def test_pieces_for_pe(self):
        comm = make_comm(2)
        data = [np.arange(10), np.arange(10, 20)]
        result = multisequence_select(comm, data, [5, 15])
        slices = result.pieces_for_pe(0, 10)
        assert len(slices) == 3
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 10

    @given(
        st.integers(2, 5),
        st.lists(st.integers(0, 25), min_size=2, max_size=5),
        st.integers(0, 1000),
        st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_exact_and_consistent_flat_and_reference(
        self, p, sizes, seed, key_range_exp
    ):
        p = min(p, len(sizes))
        sizes = sizes[:p]
        high = 2 ** key_range_exp + 1  # small ranges force many duplicates
        comm = make_comm(p)
        data = sorted_local_data(p, sizes, seed=seed, high=high)
        total = int(sum(sizes))
        rng = np.random.default_rng(seed + 1)
        ranks = sorted(int(x) for x in rng.integers(0, total + 1, size=3))
        result = multisequence_select(comm, data, ranks)
        for t, k in enumerate(ranks):
            assert int(result.splits[t].sum()) == k
            assert split_positions_are_consistent(data, result.splits[t])
        # The segmented flat engine must match the reference bit for bit.
        comm2 = make_comm(p)
        flat = multisequence_select_flat(
            comm2, DistArray.from_list([d.copy() for d in data]), ranks
        )
        assert np.array_equal(flat.splits, result.splits)
        assert flat.iterations == result.iterations


def _splits_and_machine(data, ranks, via):
    p = len(data)
    machine = SimulatedMachine(p, spec=laptop_like(), seed=3)
    if via == "reference":
        res = multisequence_select(
            machine.world(), [d.copy() for d in data], ranks
        )
    elif via == "flat":
        res = multisequence_select_flat(
            machine.world(), DistArray.from_list([d.copy() for d in data]), ranks
        )
    else:
        islands = GroupBatch(
            machine, np.arange(p, dtype=np.int64),
            np.array([0, p], dtype=np.int64),
        )
        res = multisequence_select_batched(
            islands, DistArray.from_list([d.copy() for d in data]),
            [ranks], [machine.rng],
        )[0]
    return res, machine


class TestMultiselectDuplicateBoundaries:
    """Pivot on a duplicate run spanning a PE boundary (piece boundaries).

    With all-equal keys every pivot lands inside one machine-wide run of
    duplicates, so a two-sided *value* search alone cannot place the split:
    on the pivot-owning PE, all equal elements right of the pivot position
    would be counted too, the committed left parts would overshoot the
    requested rank, and the piece sizes derived from consecutive splits
    would go negative.  Only the Appendix D position-based count on the
    owner keeps the implicit ``(value, PE, position)`` key exact.  These
    tests were written against the segmented rewrite first and fail on any
    variant that drops the owner-position override.
    """

    @pytest.mark.parametrize("via", ["reference", "flat", "batched"])
    def test_all_equal_across_pes(self, via):
        data = [np.full(10, 7) for _ in range(4)]
        ranks = [5, 13, 25, 33]  # every split falls strictly inside a PE run
        res, _ = _splits_and_machine(data, ranks, via)
        for t, k in enumerate(ranks):
            assert int(res.splits[t].sum()) == k
        # Composite-key prefixes are unique, so splits fill PEs left to
        # right and successive piece boundaries never cross.
        assert np.all(np.diff(res.splits, axis=0) >= 0)
        for t, k in enumerate(ranks):
            expect = np.clip(k - np.arange(4) * 10, 0, 10)
            assert np.array_equal(res.splits[t], expect)

    @pytest.mark.parametrize("via", ["reference", "flat", "batched"])
    def test_near_all_equal_run_spans_boundary(self, via):
        # One run of 7s spans the boundary between PE 1 and PE 2.
        data = [
            np.array([1, 2, 7, 7]),
            np.array([7, 7, 7, 7]),
            np.array([7, 7, 9, 9]),
            np.array([7, 8, 8, 8]),
        ]
        ranks = [3, 6, 9, 12]
        res, _ = _splits_and_machine(data, ranks, via)
        for t, k in enumerate(ranks):
            assert int(res.splits[t].sum()) == k
            assert split_positions_are_consistent(data, res.splits[t])
        assert np.all(np.diff(res.splits, axis=0) >= 0)

    def test_flat_and_batched_match_reference_on_duplicates(self):
        rng = np.random.default_rng(5)
        for trial in range(25):
            p = int(rng.integers(2, 6))
            high = int(rng.integers(1, 3))  # at most two distinct keys
            data = [
                np.sort(rng.integers(0, high + 1, size=int(rng.integers(0, 15))))
                for _ in range(p)
            ]
            total = int(sum(d.size for d in data))
            ranks = sorted(
                int(x) for x in rng.integers(0, total + 1, size=3)
            )
            ref, m_ref = _splits_and_machine(data, ranks, "reference")
            for via in ("flat", "batched"):
                got, m = _splits_and_machine(data, ranks, via)
                assert np.array_equal(got.splits, ref.splits), (trial, via)
                assert got.iterations == ref.iterations, (trial, via)
                assert np.array_equal(m.clock, m_ref.clock), (trial, via)

    @pytest.mark.parametrize("via", ["flat", "batched"])
    def test_piece_sizes_from_duplicate_splits_are_valid(self, via):
        """Consecutive splits delimit non-negative piece sizes (RLM pieces)."""
        data = [np.full(8, 1) for _ in range(5)]
        ranks = [8, 16, 24, 32]
        res, _ = _splits_and_machine(data, ranks, via)
        sizes = np.array([d.size for d in data])
        bounds = np.vstack([
            np.zeros((1, 5), dtype=np.int64), res.splits, sizes[None, :]
        ])
        assert np.all(np.diff(bounds, axis=0) >= 0)
        for pe in range(5):
            slices = res.pieces_for_pe(pe, int(sizes[pe]))
            assert sum(s.stop - s.start for s in slices) == int(sizes[pe])
