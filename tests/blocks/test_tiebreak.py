"""Tests for :mod:`repro.blocks.tiebreak` (Appendix D)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.tiebreak import (
    can_encode_inline,
    make_unique_keys,
    original_positions,
    strip_tiebreak,
)


class TestInlineEncoding:
    def test_small_integer_keys_inline(self):
        data = [np.array([5, 5, 3]), np.array([5, 1])]
        assert can_encode_inline(data)
        unique, info = make_unique_keys(data)
        assert info["mode"] == "inline"
        all_keys = np.concatenate(unique)
        assert np.unique(all_keys).size == 5  # all unique now

    def test_order_preserved(self):
        data = [np.array([2, 1, 2]), np.array([1, 2])]
        unique, info = make_unique_keys(data)
        merged = np.sort(np.concatenate(unique))
        restored = strip_tiebreak([merged], info)[0]
        assert restored.tolist() == [1, 1, 2, 2, 2]

    def test_ties_broken_by_global_position(self):
        data = [np.array([7, 7]), np.array([7])]
        unique, info = make_unique_keys(data)
        merged = np.sort(np.concatenate(unique))
        positions = original_positions([merged], info)[0]
        assert positions.tolist() == [0, 1, 2]

    def test_negative_keys(self):
        data = [np.array([-5, -5, 0]), np.array([-5, 3])]
        unique, info = make_unique_keys(data)
        merged = np.sort(np.concatenate(unique))
        restored = strip_tiebreak([merged], info)[0]
        assert restored.tolist() == [-5, -5, -5, 0, 3]

    def test_roundtrip_per_pe(self):
        data = [np.array([9, 1]), np.array([4])]
        unique, info = make_unique_keys(data)
        restored = strip_tiebreak(unique, info)
        for orig, rest in zip(data, restored):
            assert orig.tolist() == rest.tolist()

    def test_empty_input(self):
        unique, info = make_unique_keys([np.empty(0, dtype=np.int64)])
        assert unique[0].size == 0


class TestStructuredFallback:
    def test_float_keys_use_structured(self):
        data = [np.array([1.5, 1.5]), np.array([0.5])]
        assert not can_encode_inline(data)
        unique, info = make_unique_keys(data)
        assert info["mode"] == "structured"
        merged = np.sort(np.concatenate(unique), order=("key", "tag"))
        restored = strip_tiebreak([merged], info)[0]
        assert restored.tolist() == [0.5, 1.5, 1.5]

    def test_huge_integers_use_structured(self):
        data = [np.array([2**62, 2**62]), np.array([2**61])]
        assert not can_encode_inline(data)
        unique, info = make_unique_keys(data)
        assert info["mode"] == "structured"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            strip_tiebreak([np.array([1])], {"mode": "bogus"})
        with pytest.raises(ValueError):
            original_positions([np.array([1])], {"mode": "bogus"})


class TestTiebreakProperties:
    @given(st.lists(st.lists(st.integers(-1000, 1000), max_size=20), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_property_uniqueness_and_order(self, per_pe):
        data = [np.asarray(x, dtype=np.int64) for x in per_pe]
        unique, info = make_unique_keys(data)
        all_unique = np.concatenate(unique) if any(u.size for u in unique) else np.empty(0)
        # uniqueness
        assert np.unique(all_unique).size == all_unique.size
        # sorting composite keys then stripping equals a stable sort of the originals
        order = np.argsort(all_unique, kind="stable")
        restored = strip_tiebreak([all_unique[order]], info)[0]
        originals = np.concatenate(data) if any(d.size for d in data) else np.empty(0)
        assert restored.tolist() == sorted(originals.tolist())
