"""Tests for the lockstep Appendix C bound search.

:func:`repro.blocks.grouping.optimal_bucket_grouping_batched` must reproduce
``optimal_bucket_grouping(..., method='accelerated')`` byte for byte for
every island of a batch — boundaries, bound (the ``largest_group`` the
search settled on), group loads (whose minimum-overflow updates drive the
search) and even the probe count.  The Hypothesis oracle below pins that,
including the edge regimes the accelerated search special-cases: all-zero
buckets, islands whose bound search hits infeasible probes (more groups
needed than available), and oversized single buckets that dominate the
lower bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.grouping import (
    BatchedGroupingResult,
    optimal_bucket_grouping,
    optimal_bucket_grouping_batched,
)


def _flatten(islands):
    sizes = [np.asarray(s, dtype=np.int64) for s, _ in islands]
    groups = np.array([r for _, r in islands], dtype=np.int64)
    offsets = np.zeros(len(islands) + 1, dtype=np.int64)
    np.cumsum([s.size for s in sizes], out=offsets[1:])
    flat = np.concatenate(sizes) if islands else np.empty(0, dtype=np.int64)
    return flat, offsets, groups


def _assert_matches_reference(islands):
    flat, offsets, groups = _flatten(islands)
    res = optimal_bucket_grouping_batched(flat, offsets, groups)
    assert isinstance(res, BatchedGroupingResult)
    assert res.num_islands == len(islands)
    luts = []
    for k, (sizes, r) in enumerate(islands):
        ref = optimal_bucket_grouping(sizes, r, method="accelerated")
        got = res.result_for(k)
        assert np.array_equal(got.boundaries, ref.boundaries), k
        assert got.bound == ref.bound, k
        assert np.array_equal(got.group_loads, ref.group_loads), k
        assert got.scan_calls == ref.scan_calls, k
        luts.append(np.repeat(
            np.arange(r, dtype=np.int64), np.diff(ref.boundaries)
        ))
    assert np.array_equal(
        res.bucket_group_lut(),
        np.concatenate(luts) if luts else np.empty(0, dtype=np.int64),
    )


island_strategy = st.tuples(
    st.lists(st.integers(min_value=0, max_value=500), min_size=0, max_size=24),
    st.integers(min_value=1, max_value=9),
)


class TestBatchedGroupingHypothesis:
    @given(st.lists(island_strategy, min_size=1, max_size=8))
    @settings(max_examples=120, deadline=None)
    def test_matches_per_island_accelerated(self, islands):
        _assert_matches_reference(
            [(np.asarray(s, dtype=np.int64), r) for s, r in islands]
        )

    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=6),
                         min_size=1, max_size=20),
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=100, max_value=100000),
                st.integers(min_value=0, max_value=19),
            ),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_oversized_single_bucket(self, spec):
        """One bucket dwarfing the rest forces the max-bucket lower bound."""
        islands = []
        for sizes, r, big, pos in spec:
            arr = np.asarray(sizes, dtype=np.int64)
            arr[pos % arr.size] = big
            islands.append((arr, r))
        _assert_matches_reference(islands)

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2 ** 31),
    )
    @settings(max_examples=60, deadline=None)
    def test_infeasible_probes_wide_range(self, m, r, scale):
        """Wide value ranges make early probes infeasible (tight bounds)."""
        rng = np.random.default_rng(scale)
        islands = [
            (rng.integers(0, max(2, scale + 1), size=m).astype(np.int64), r)
            for _ in range(4)
        ]
        _assert_matches_reference(islands)


class TestBatchedGroupingEdges:
    def test_empty_batch(self):
        res = optimal_bucket_grouping_batched(
            np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        assert res.num_islands == 0
        assert res.boundaries.size == 0
        assert res.bucket_group_lut().size == 0

    def test_mixed_trivial_and_searching_islands(self):
        _assert_matches_reference([
            (np.empty(0, dtype=np.int64), 3),        # no buckets
            (np.zeros(5, dtype=np.int64), 2),        # zero total
            (np.array([7, 1, 1, 9, 2]), 3),          # regular search
            (np.array([1, 1000, 1]), 2),             # oversized bucket
            (np.ones(16, dtype=np.int64), 4),        # uniform buckets
        ])

    def test_single_island_matches(self):
        _assert_matches_reference([(np.array([5, 1, 7, 2, 2, 9]), 3)])

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_bucket_grouping_batched(
                np.array([1, 2]), np.array([0, 2]), np.array([0])
            )
        with pytest.raises(ValueError):
            optimal_bucket_grouping_batched(
                np.array([1, -2]), np.array([0, 2]), np.array([1])
            )
        with pytest.raises(ValueError):
            optimal_bucket_grouping_batched(
                np.array([1, 2]), np.array([0, 2]), np.array([1, 1])
            )
