"""Tests for :mod:`repro.blocks.grouping` (bucket grouping, Lemma 1 / Appendix C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.grouping import (
    group_sizes_from_boundaries,
    optimal_bucket_grouping,
    optimal_max_load_dp,
    scan_buckets_with_bound,
)


class TestScanWithBound:
    def test_feasible(self):
        boundaries = scan_buckets_with_bound([3, 3, 3, 3], 2, 6)
        assert boundaries is not None
        loads = group_sizes_from_boundaries([3, 3, 3, 3], boundaries)
        assert loads.max() <= 6
        assert loads.sum() == 12

    def test_infeasible_bucket_too_large(self):
        assert scan_buckets_with_bound([10, 1], 2, 5) is None

    def test_infeasible_too_many_groups_needed(self):
        assert scan_buckets_with_bound([4, 4, 4, 4], 2, 4) is None

    def test_exact_fit(self):
        boundaries = scan_buckets_with_bound([2, 2, 2, 2], 2, 4)
        assert boundaries is not None
        assert group_sizes_from_boundaries([2, 2, 2, 2], boundaries).tolist() == [4, 4]

    def test_trailing_empty_groups(self):
        boundaries = scan_buckets_with_bound([1, 1], 4, 10)
        assert boundaries is not None
        assert len(boundaries) == 5
        loads = group_sizes_from_boundaries([1, 1], boundaries)
        assert loads.tolist() == [2, 0, 0, 0]

    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError):
            scan_buckets_with_bound([1], 0, 1)

    def test_negative_bound(self):
        assert scan_buckets_with_bound([1], 1, -1) is None


class TestOptimalGrouping:
    @pytest.mark.parametrize("method", ["binary", "accelerated", "candidates"])
    def test_matches_dp_optimum_small(self, method):
        rng = np.random.default_rng(0)
        for _ in range(10):
            sizes = rng.integers(0, 20, size=rng.integers(1, 12)).tolist()
            r = int(rng.integers(1, 5))
            result = optimal_bucket_grouping(sizes, r, method=method)
            assert result.max_load == optimal_max_load_dp(sizes, r)

    def test_boundaries_consistent_with_loads(self):
        sizes = [5, 1, 7, 2, 2, 9]
        result = optimal_bucket_grouping(sizes, 3)
        loads = group_sizes_from_boundaries(sizes, result.boundaries)
        assert np.array_equal(loads, result.group_loads)
        assert loads.sum() == sum(sizes)
        assert result.max_load <= result.bound

    def test_single_group(self):
        result = optimal_bucket_grouping([1, 2, 3], 1)
        assert result.max_load == 6

    def test_more_groups_than_buckets(self):
        result = optimal_bucket_grouping([4, 4], 5)
        assert result.max_load == 4
        assert len(result.group_loads) == 5

    def test_empty_buckets(self):
        result = optimal_bucket_grouping([0, 0, 0], 2)
        assert result.max_load == 0
        assert result.group_loads.sum() == 0

    def test_no_buckets(self):
        result = optimal_bucket_grouping([], 3)
        assert result.max_load == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_bucket_grouping([1, -2], 2)
        with pytest.raises(ValueError):
            optimal_bucket_grouping([1], 0)
        with pytest.raises(ValueError):
            optimal_bucket_grouping([1], 1, method="magic")

    def test_accelerated_uses_fewer_scans_than_binary(self):
        rng = np.random.default_rng(1)
        sizes = rng.integers(0, 1000, size=256).tolist()
        binary = optimal_bucket_grouping(sizes, 16, method="binary")
        accel = optimal_bucket_grouping(sizes, 16, method="accelerated")
        assert accel.max_load == binary.max_load
        assert accel.scan_calls <= binary.scan_calls

    def test_overpartitioning_scenario(self):
        """b*r buckets of roughly n/(b*r) elements each grouped into r groups
        should give an imbalance well below 1/b (the Lemma 2 situation)."""
        rng = np.random.default_rng(2)
        b, r = 16, 8
        n = 10**6
        sizes = rng.multinomial(n, np.ones(b * r) / (b * r))
        result = optimal_bucket_grouping(sizes, r)
        imbalance = result.max_load / (n / r) - 1.0
        assert imbalance < 1.0 / b

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=14),
        st.integers(1, 6),
        st.sampled_from(["binary", "accelerated"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_optimality(self, sizes, r, method):
        result = optimal_bucket_grouping(sizes, r, method=method)
        assert result.max_load == optimal_max_load_dp(sizes, r)
        loads = group_sizes_from_boundaries(sizes, result.boundaries)
        assert int(loads.sum()) == sum(sizes)
        # boundaries are monotone and cover all buckets
        assert result.boundaries[0] == 0
        assert result.boundaries[-1] == len(sizes)
        assert np.all(np.diff(result.boundaries) >= 0)
