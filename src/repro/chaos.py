"""Deterministic chaos injection for the *real* execution infrastructure.

:mod:`repro.sim.faults` injects *simulated* faults into the modelled
clocks — stragglers, dropped exchange rounds — and is part of the paper
reproduction's physics.  This module is the other half of the robustness
story: it attacks the **host-level** execution layer (the shared-memory
worker pool and the campaign cell cache) so the self-healing machinery can
be proven to recover.  Chaos never touches modelled time, RNG streams or
sorted outputs; by the backend byte-identity contract a chaos run that
*completes* must produce results byte-identical to a healthy run — the
injection only exercises respawn/retry/recompute paths.

Enable it with the ``REPRO_CHAOS`` environment variable (OFF by default),
a compact ``key:value`` spec mirroring the fault-plan grammar::

    REPRO_CHAOS="seed:7,kill:0.3,corrupt:0.4,trunc:0.2"

* ``seed`` — base seed of the chaos draws (default 0).
* ``kill`` — probability that a shared-memory pool dispatch round SIGKILLs
  one of its worker processes (parent-side injection, after the shard task
  was sent, so the worker may die mid-kernel).
* ``corrupt`` — probability that a just-written campaign cell cache file
  has a run of bytes flipped in place.
* ``trunc`` — probability that a just-written cache file is truncated to
  half its length instead.

All draws are **deterministic**: SHA-256 of ``(seed, stream, counter)``,
never :func:`random.random`, so a chaos run is reproducible bit for bit.
Cache-corruption draws are keyed by the cache *file name* (the content
hash of the cell), so which cells get corrupted does not depend on the
completion order of a sharded campaign.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Union


@dataclass(frozen=True)
class ChaosPlan:
    """Parsed ``REPRO_CHAOS`` spec; all rates default to zero (no chaos)."""

    seed: int = 0
    kill_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0

    @property
    def enabled(self) -> bool:
        return (
            self.kill_rate > 0 or self.corrupt_rate > 0 or self.truncate_rate > 0
        )


_KEYS = {
    "seed": "seed",
    "kill": "kill_rate",
    "corrupt": "corrupt_rate",
    "trunc": "truncate_rate",
}


def parse_chaos_spec(
    spec: Union[None, str, ChaosPlan]
) -> Optional[ChaosPlan]:
    """Parse a chaos spec string; ``None``/empty → ``None`` (chaos off).

    Raises :class:`ValueError` with the offending key/value for anything
    that is not part of the grammar, so a typo in ``REPRO_CHAOS`` fails at
    startup instead of silently running a healthy campaign.
    """
    if spec is None or isinstance(spec, ChaosPlan):
        return spec
    text = str(spec).strip()
    if not text:
        return None
    fields: Dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition(":")
        key = key.strip().lower()
        if not sep or key not in _KEYS:
            raise ValueError(
                f"bad chaos spec {spec!r}: unknown key {key!r} "
                f"(known: {', '.join(sorted(_KEYS))})"
            )
        try:
            parsed = int(value) if key == "seed" else float(value)
        except ValueError:
            raise ValueError(
                f"bad chaos spec {spec!r}: {key} needs a number, got {value!r}"
            ) from None
        if key != "seed" and not 0.0 <= parsed <= 1.0:
            raise ValueError(
                f"bad chaos spec {spec!r}: {key} must be a rate in [0, 1]"
            )
        fields[_KEYS[key]] = parsed
    plan = ChaosPlan(**fields)  # type: ignore[arg-type]
    if plan.corrupt_rate + plan.truncate_rate > 1.0:
        raise ValueError(
            f"bad chaos spec {spec!r}: corrupt + trunc rates exceed 1"
        )
    return plan


class ChaosState:
    """Runtime chaos draws + counters for one process.

    The counters are reporting only (they surface next to the recovery
    counters so a chaos run's log shows what was injected); the draws are
    pure functions of the plan seed and their stream/counter key.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._kill_round = 0
        self.counters: Dict[str, int] = {
            "kills_injected": 0,
            "cache_corruptions": 0,
            "cache_truncations": 0,
        }

    def _draw(self, stream: str, counter: "int | str") -> float:
        digest = hashlib.sha256(
            f"{self.plan.seed}|{stream}|{counter}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    # ------------------------------------------------------------------
    # Worker-pool injection
    # ------------------------------------------------------------------
    def kill_worker(self, nworkers: int) -> Optional[int]:
        """Worker index to SIGKILL this dispatch round, or ``None``.

        Each call consumes one round counter, so bounded shard retries
        re-draw (a retry round can be hit again — at any rate below 1 the
        pool recovers; at rate 1 the retry budget exhausts and the backend
        degrades to inline execution, which is also a legal outcome).
        """
        i = self._kill_round
        self._kill_round += 1
        if nworkers <= 0 or self._draw("kill", i) >= self.plan.kill_rate:
            return None
        self.counters["kills_injected"] += 1
        return int(self._draw("kill-target", i) * nworkers) % nworkers

    # ------------------------------------------------------------------
    # Cache corruption
    # ------------------------------------------------------------------
    def maybe_corrupt_cache(self, path: "os.PathLike | str") -> Optional[str]:
        """Corrupt or truncate the file at ``path`` per the plan's rates.

        Returns ``"corrupt"``/``"truncate"`` when an injection happened,
        ``None`` otherwise.  The draw is keyed by the file *name* so the
        same cells are attacked regardless of write order.
        """
        name = os.path.basename(os.fspath(path))
        u = self._draw("cache", name)
        if u < self.plan.truncate_rate:
            try:
                size = os.path.getsize(path)
                os.truncate(path, size // 2)
            except OSError:  # pragma: no cover - racing cleanup
                return None
            self.counters["cache_truncations"] += 1
            return "truncate"
        if u < self.plan.truncate_rate + self.plan.corrupt_rate:
            try:
                with open(path, "r+b") as f:
                    f.seek(0, os.SEEK_END)
                    size = f.tell()
                    if size == 0:
                        return None
                    mid = size // 2
                    f.seek(mid)
                    chunk = f.read(min(16, size - mid)) or b"\0"
                    f.seek(mid)
                    f.write(bytes(b ^ 0xFF for b in chunk))
            except OSError:  # pragma: no cover - racing cleanup
                return None
            self.counters["cache_corruptions"] += 1
            return "corrupt"
        return None


# ----------------------------------------------------------------------
# Process singleton (resolved from the environment)
# ----------------------------------------------------------------------
_STATE: Optional[ChaosState] = None
_SPEC: Optional[str] = None


def get_chaos() -> Optional[ChaosState]:
    """The process chaos state per ``REPRO_CHAOS``; ``None`` when off.

    Re-reads the environment on every call (it is two dict lookups), so
    tests can monkeypatch ``REPRO_CHAOS`` without import-order games; the
    state object itself is kept while the spec string is unchanged so the
    round counters advance across calls.
    """
    global _STATE, _SPEC
    spec = os.environ.get("REPRO_CHAOS", "").strip()
    if spec != _SPEC:
        plan = parse_chaos_spec(spec)
        _STATE = ChaosState(plan) if plan is not None and plan.enabled else None
        _SPEC = spec
    return _STATE
