"""Hardware parameter sets (``MachineSpec``) and calibration presets.

The paper evaluates AMS-sort and RLM-sort on the SuperMUC thin-node cluster
(Section 7).  We cannot run on SuperMUC, so the benchmark harness replays the
algorithms on a simulated machine whose behaviour is governed by a
:class:`MachineSpec`.  The spec captures exactly the parameters that appear
in the paper's cost model:

* ``alpha`` — message startup latency (seconds),
* ``beta`` — per machine-word transfer time (seconds/word) on the lowest
  (intra-node) level of the hierarchy,
* bandwidth degradation factors for node-level and island-level traffic
  (SuperMUC's pruned island tree has a 4:1 bandwidth ratio, Section 7),
* local-work constants used to charge time for sorting, merging,
  partitioning and moving elements.

All presets are deliberately *rough* calibrations.  Absolute times produced
by the simulator are not meant to match the paper to the nanosecond; the
purpose of the calibration is that the *relative* weight of startups,
bandwidth and local work is realistic enough for the paper's qualitative
claims (multi-level algorithms win for large ``p`` and moderate ``n/p``) to
be visible.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field


#: Number of bytes in one machine word.  The paper equates the machine word
#: size with the size of one 64-bit key (Section 2.1).
WORD_BYTES = 8


@dataclass(frozen=True)
class MachineSpec:
    """A complete description of the simulated machine's performance model.

    Parameters
    ----------
    name:
        Human readable identifier, used in reports.
    alpha:
        Message startup overhead in seconds.  Charged once per message.
    beta:
        Per-word transfer time in seconds for traffic that stays on the
        cheapest hierarchy level (within a node).
    node_beta_factor:
        Multiplier applied to ``beta`` when a message crosses node
        boundaries but stays within an island.
    island_beta_factor:
        Multiplier applied to ``beta`` when a message crosses island
        boundaries.  SuperMUC's pruned tree has a 4:1 bandwidth ratio, so the
        preset uses four times the intra-island factor.
    cores_per_node:
        Number of PEs (MPI ranks in the paper) mapped onto one node.
    nodes_per_island:
        Number of nodes per island.
    comparison_ns:
        Cost (nanoseconds) charged per element comparison during local
        sorting (``n/p * log(n/p)`` comparisons for a local sort).
    merge_ns:
        Cost (nanoseconds) per element and per ``log2(r)`` during multiway
        merging of ``r`` runs.
    partition_ns:
        Cost (nanoseconds) per element and per ``log2(k)`` during
        ``k``-splitter partitioning (super scalar sample sort is branch-free,
        hence typically cheaper than merging).
    move_ns:
        Cost (nanoseconds) per element for copying/packing an element into a
        message buffer or out of one.
    collective_word_ns:
        Per-word cost of small vector collectives (broadcast, reduction,
        prefix sum).  Usually close to ``beta`` expressed in nanoseconds.
    """

    name: str = "generic"
    alpha: float = 1.0e-5
    beta: float = 2.5e-9
    node_beta_factor: float = 1.0
    island_beta_factor: float = 4.0
    cores_per_node: int = 16
    nodes_per_island: int = 512
    comparison_ns: float = 4.0
    merge_ns: float = 3.0
    partition_ns: float = 2.0
    move_ns: float = 1.0
    collective_word_ns: float = 4.0

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    @property
    def cores_per_island(self) -> int:
        """Number of PEs per island."""
        return self.cores_per_node * self.nodes_per_island

    def beta_for_level(self, level: int) -> float:
        """Per-word transfer time for traffic crossing hierarchy ``level``.

        ``level`` uses the convention of :mod:`repro.machine.topology`:
        ``0`` = intra-node, ``1`` = intra-island (crosses nodes),
        ``2`` = inter-island.
        """
        if level <= 0:
            return self.beta
        if level == 1:
            return self.beta * self.node_beta_factor
        return self.beta * self.island_beta_factor

    def local_sort_time(self, m: int) -> float:
        """Modelled time (seconds) to sort ``m`` elements locally."""
        if m <= 1:
            return 0.0
        return self.comparison_ns * 1e-9 * m * max(1.0, math.log2(m))

    def local_merge_time(self, m: int, ways: int) -> float:
        """Modelled time to merge ``m`` elements from ``ways`` sorted runs."""
        if m <= 0 or ways <= 1:
            return self.move_ns * 1e-9 * max(m, 0)
        return self.merge_ns * 1e-9 * m * max(1.0, math.log2(ways))

    def local_partition_time(self, m: int, buckets: int) -> float:
        """Modelled time to partition ``m`` elements into ``buckets`` buckets."""
        if m <= 0 or buckets <= 1:
            return 0.0
        return self.partition_ns * 1e-9 * m * max(1.0, math.log2(buckets))

    def local_move_time(self, m: int) -> float:
        """Modelled time to copy ``m`` elements."""
        return self.move_ns * 1e-9 * max(m, 0)

    def with_overrides(self, **kwargs: object) -> "MachineSpec":
        """Return a copy of this spec with selected fields replaced."""
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Return a multi-line human readable description of the spec."""
        lines = [f"MachineSpec '{self.name}':"]
        for f in dataclasses.fields(self):
            lines.append(f"  {f.name} = {getattr(self, f.name)}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Calibration presets
# ----------------------------------------------------------------------
def supermuc_like() -> MachineSpec:
    """Approximation of the SuperMUC thin-node islands used in the paper.

    Two 8-core Sandy Bridge processors per node (16 MPI ranks/node),
    512 nodes per island, InfiniBand FDR10 within an island and a 4:1 pruned
    tree between islands.
    """
    return MachineSpec(
        name="supermuc-like",
        alpha=8.0e-6,
        beta=2.0e-9,          # ~4 GB/s effective per rank for 8-byte words
        node_beta_factor=1.0,
        island_beta_factor=4.0,
        cores_per_node=16,
        nodes_per_island=512,
        comparison_ns=3.5,
        merge_ns=3.0,
        partition_ns=1.8,
        move_ns=0.8,
        collective_word_ns=4.0,
    )


def cray_xt4_like() -> MachineSpec:
    """Approximation of the Cray XT4 used by Solomonik and Kale [34]."""
    return MachineSpec(
        name="cray-xt4-like",
        alpha=6.0e-6,
        beta=1.4e-9,
        node_beta_factor=1.2,
        island_beta_factor=1.6,
        cores_per_node=4,
        nodes_per_island=2048,
        comparison_ns=4.5,
        merge_ns=3.8,
        partition_ns=2.2,
        move_ns=1.0,
        collective_word_ns=4.5,
    )


def cray_xe6_like() -> MachineSpec:
    """Approximation of the Cray XE6 (Blue Waters) used by MP-sort [12]."""
    return MachineSpec(
        name="cray-xe6-like",
        alpha=5.0e-6,
        beta=1.2e-9,
        node_beta_factor=1.2,
        island_beta_factor=2.0,
        cores_per_node=32,
        nodes_per_island=1563,
        comparison_ns=4.0,
        merge_ns=3.2,
        partition_ns=2.0,
        move_ns=0.9,
        collective_word_ns=4.0,
    )


def generic_cluster(cores_per_node: int = 16, nodes_per_island: int = 64) -> MachineSpec:
    """A generic commodity cluster with an InfiniBand-class network."""
    return MachineSpec(
        name="generic-cluster",
        alpha=1.2e-5,
        beta=3.0e-9,
        node_beta_factor=1.0,
        island_beta_factor=2.0,
        cores_per_node=cores_per_node,
        nodes_per_island=nodes_per_island,
    )


def laptop_like() -> MachineSpec:
    """A tiny shared-memory 'machine' useful for unit tests and examples.

    Startup cost and bandwidth are those of an in-memory message queue, so
    even very small simulated runs produce non-degenerate phase breakdowns.
    """
    return MachineSpec(
        name="laptop-like",
        alpha=5.0e-7,
        beta=1.0e-9,
        node_beta_factor=1.0,
        island_beta_factor=1.0,
        cores_per_node=8,
        nodes_per_island=1,
        comparison_ns=5.0,
        merge_ns=4.0,
        partition_ns=2.5,
        move_ns=1.0,
        collective_word_ns=2.0,
    )


#: Registry of named presets, used by the CLI / experiment harness.
PRESETS = {
    "supermuc": supermuc_like,
    "cray-xt4": cray_xt4_like,
    "cray-xe6": cray_xe6_like,
    "generic": generic_cluster,
    "laptop": laptop_like,
}


def spec_by_name(name: str) -> MachineSpec:
    """Look up a preset :class:`MachineSpec` by name.

    Raises
    ------
    KeyError
        If ``name`` does not denote a known preset.
    """
    try:
        factory = PRESETS[name]
    except KeyError as exc:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown machine preset {name!r}; known presets: {known}") from exc
    return factory()
