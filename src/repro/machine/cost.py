"""Communication and local-work cost model.

This module turns counts (words, messages, comparisons) into modelled time.
It implements the cost expressions used throughout the paper:

* point to point message of ``l`` words: ``alpha + l * beta``  (Section 2.1),
* collectives over vectors of length ``l`` on ``P`` PEs:
  ``O(l * beta + alpha * log P)`` (broadcast, reduction, prefix sums, [2, 30]),
* the data exchange primitive ``Exch(P, h, r)``: no PE sends or receives more
  than ``h`` words in total and at most ``r`` messages; a single-ported lower
  bound (and the cost we charge) is ``h * beta + r * alpha``,
* local work: charged through :class:`~repro.machine.spec.MachineSpec`'s
  calibrated per-element constants.

The cost model is deliberately separate from the simulator so that the same
counting infrastructure can be re-priced for a different machine without
re-running an experiment (see :meth:`ExchangeCost.time`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology


@dataclass(frozen=True)
class CollectiveCost:
    """Cost of one collective operation on ``P`` PEs with vectors of ``l`` words."""

    participants: int
    words: int
    level: int
    time: float

    def __post_init__(self) -> None:
        if self.participants <= 0:
            raise ValueError("collective needs at least one participant")
        if self.words < 0:
            raise ValueError("negative word count")


@dataclass(frozen=True)
class ExchangeCost:
    """Cost of one irregular data exchange ``Exch(P, h, r)``.

    Attributes
    ----------
    participants:
        Number of PEs involved (``P``).
    h_words:
        Bottleneck communication volume: maximum over PEs of
        ``max(words sent, words received)``.
    r_messages:
        Bottleneck startup count: maximum over PEs of
        ``max(messages sent, messages received)``.
    level:
        Topology level crossed by the exchange (prices ``beta``).
    time:
        Modelled time in seconds.
    """

    participants: int
    h_words: int
    r_messages: int
    level: int
    time: float


class CostModel:
    """Prices communication and local work on a given machine.

    Parameters
    ----------
    spec:
        The machine's performance parameters.
    topology:
        The machine's topology; determines bandwidth penalties for traffic
        that crosses nodes or islands.
    """

    def __init__(self, spec: MachineSpec, topology: Topology):
        self.spec = spec
        self.topology = topology

    # ------------------------------------------------------------------
    # Point-to-point and collectives
    # ------------------------------------------------------------------
    def message_time(self, words: int, level: int = 0) -> float:
        """Time for one point-to-point message of ``words`` machine words."""
        if words < 0:
            raise ValueError("negative message size")
        return self.spec.alpha + words * self.spec.beta_for_level(level)

    def collective_time(
        self,
        participants: int,
        words: int = 1,
        level: int = 0,
        rounds_factor: float = 1.0,
    ) -> float:
        """Time of a tree-based collective (bcast/reduce/scan/gather).

        The model is the standard ``alpha * ceil(log2 P) + beta * l`` bound
        for pipelined two-tree collectives [30]; ``rounds_factor`` allows
        all-gather style operations to charge the extra volume they move
        (an allgather over ``P`` PEs moves ``P * l`` words through each PE in
        the worst case, expressed by ``rounds_factor=P``).
        """
        if participants <= 0:
            raise ValueError("collective needs at least one participant")
        if participants == 1:
            return 0.0
        log_p = math.ceil(math.log2(participants))
        beta = self.spec.beta_for_level(level)
        word_cost = self.spec.collective_word_ns * 1e-9 + beta
        return self.spec.alpha * log_p + word_cost * words * rounds_factor

    def collective(self, participants: int, words: int = 1, level: int = 0,
                   rounds_factor: float = 1.0) -> CollectiveCost:
        """Like :meth:`collective_time` but returning a :class:`CollectiveCost` record."""
        t = self.collective_time(participants, words, level, rounds_factor)
        return CollectiveCost(participants=participants, words=words, level=level, time=t)

    # ------------------------------------------------------------------
    # Irregular exchange: Exch(P, h, r)
    # ------------------------------------------------------------------
    def exchange_time(self, participants: int, h_words: int, r_messages: int,
                      level: int = 0) -> float:
        """Time of ``Exch(P, h, r)`` under direct single-ported delivery."""
        if h_words < 0 or r_messages < 0:
            raise ValueError("negative exchange size")
        beta = self.spec.beta_for_level(level)
        return h_words * beta + r_messages * self.spec.alpha

    def exchange(self, participants: int, h_words: int, r_messages: int,
                 level: int = 0) -> ExchangeCost:
        """Like :meth:`exchange_time` but returning an :class:`ExchangeCost` record."""
        t = self.exchange_time(participants, h_words, r_messages, level)
        return ExchangeCost(
            participants=participants,
            h_words=h_words,
            r_messages=r_messages,
            level=level,
            time=t,
        )

    def exchange_level(self, pes: Sequence[int]) -> int:
        """Topology level crossed by an exchange among ``pes``."""
        return self.topology.max_distance_level(pes)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def local_sort(self, m: int) -> float:
        """Modelled time to sort ``m`` elements on one PE."""
        return self.spec.local_sort_time(m)

    def local_merge(self, m: int, ways: int) -> float:
        """Modelled time to ``ways``-way merge ``m`` elements on one PE."""
        return self.spec.local_merge_time(m, ways)

    def local_partition(self, m: int, buckets: int) -> float:
        """Modelled time to partition ``m`` elements into ``buckets`` buckets."""
        return self.spec.local_partition_time(m, buckets)

    def local_move(self, m: int) -> float:
        """Modelled time to copy ``m`` elements on one PE."""
        return self.spec.local_move_time(m)

    def local_search(self, m: int, iterations: int = 1) -> float:
        """Modelled time for ``iterations`` binary searches over ``m`` elements."""
        if m <= 1 or iterations <= 0:
            return 0.0
        return self.spec.comparison_ns * 1e-9 * iterations * max(1.0, math.log2(m))


class LocalWorkModel:
    """Convenience facade charging only local work (no communication).

    Useful for sequential baselines and for unit tests that want to verify
    the analytic charges independent of any simulator state.
    """

    def __init__(self, spec: Optional[MachineSpec] = None):
        self.spec = spec if spec is not None else MachineSpec()

    def sort(self, m: int) -> float:
        """Time to sort ``m`` elements."""
        return self.spec.local_sort_time(m)

    def merge(self, m: int, ways: int) -> float:
        """Time to ``ways``-way merge ``m`` elements."""
        return self.spec.local_merge_time(m, ways)

    def partition(self, m: int, buckets: int) -> float:
        """Time to partition ``m`` elements into ``buckets`` buckets."""
        return self.spec.local_partition_time(m, buckets)

    def move(self, m: int) -> float:
        """Time to copy ``m`` elements."""
        return self.spec.local_move_time(m)
