"""Per-PE traffic counters and phase timers.

Section 7.1 of the paper divides every recursion level of both algorithms
into four phases — *splitter selection*, *bucket processing* (partitioning or
multiway merging), *data delivery* and *local sorting* — and reports the time
spent in each phase accumulated over all levels (Figure 8).  The classes in
this module provide exactly that bookkeeping for the simulator:

* :class:`TrafficCounters` — per-PE message/word counts, split by direction,
  plus the number of collective operations,
* :class:`PhaseBreakdown` — per-PE accumulated modelled time per phase,
* :class:`PhaseTimer` — a context manager the algorithms use to attribute
  clock advances to a phase.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np


# Canonical phase names (they match the labels used in Figure 8).
PHASE_LOCAL_SORT = "local_sort"
PHASE_SPLITTER_SELECTION = "splitter_selection"
PHASE_BUCKET_PROCESSING = "bucket_processing"
PHASE_DATA_DELIVERY = "data_delivery"
PHASE_OTHER = "other"

#: The four phases reported in the paper, in plotting order.
PAPER_PHASES = (
    PHASE_SPLITTER_SELECTION,
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
)


class TrafficCounters:
    """Per-PE counters of communication activity.

    All arrays have length ``p`` (one slot per PE).  Counters are plain
    integers of messages / machine words; time is *not* tracked here (see
    :class:`PhaseBreakdown`).
    """

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError("need at least one PE")
        self.p = int(p)
        self.messages_sent = np.zeros(p, dtype=np.int64)
        self.messages_received = np.zeros(p, dtype=np.int64)
        self.words_sent = np.zeros(p, dtype=np.int64)
        self.words_received = np.zeros(p, dtype=np.int64)
        self.collective_ops = np.zeros(p, dtype=np.int64)
        self.exchange_ops = np.zeros(p, dtype=np.int64)

    # ------------------------------------------------------------------
    def record_message(self, src: int, dst: int, words: int) -> None:
        """Record one point-to-point message of ``words`` machine words."""
        if words < 0:
            raise ValueError("negative message size")
        self.messages_sent[src] += 1
        self.messages_received[dst] += 1
        self.words_sent[src] += words
        self.words_received[dst] += words

    def record_messages(
        self, src: np.ndarray, dst: np.ndarray, words: np.ndarray
    ) -> None:
        """Record many point-to-point messages at once (vectorised).

        Equivalent to calling :meth:`record_message` for every triple; the
        counters are integers, so the accumulated state is identical.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        words = np.asarray(words, dtype=np.int64)
        if np.any(words < 0):
            raise ValueError("negative message size")
        np.add.at(self.messages_sent, src, 1)
        np.add.at(self.messages_received, dst, 1)
        np.add.at(self.words_sent, src, words)
        np.add.at(self.words_received, dst, words)

    def record_collective(self, pes: Iterable[int]) -> None:
        """Record participation of ``pes`` in one collective operation."""
        idx = np.asarray(list(pes), dtype=np.int64)
        self.collective_ops[idx] += 1

    def record_exchange(self, pes: Iterable[int]) -> None:
        """Record participation of ``pes`` in one irregular exchange."""
        idx = np.asarray(list(pes), dtype=np.int64)
        self.exchange_ops[idx] += 1

    # ------------------------------------------------------------------
    def max_startups(self) -> int:
        """Maximum over PEs of messages sent or received.

        This is the quantity the multi-level algorithms reduce from
        ``O(p)`` to ``O(k * p^(1/k))``.
        """
        if self.p == 0:
            return 0
        return int(max(self.messages_sent.max(initial=0),
                       self.messages_received.max(initial=0)))

    def max_volume(self) -> int:
        """Maximum over PEs of words sent or received (bottleneck volume ``h``)."""
        return int(max(self.words_sent.max(initial=0),
                       self.words_received.max(initial=0)))

    def total_volume(self) -> int:
        """Total number of words moved across the network."""
        return int(self.words_sent.sum())

    def total_messages(self) -> int:
        """Total number of point-to-point messages."""
        return int(self.messages_sent.sum())

    def summary(self) -> Dict[str, int]:
        """Machine-wide summary used by the experiment harness."""
        return {
            "total_messages": self.total_messages(),
            "total_words": self.total_volume(),
            "max_startups_per_pe": self.max_startups(),
            "max_words_per_pe": self.max_volume(),
            "collective_ops": int(self.collective_ops.max(initial=0)),
            "exchange_ops": int(self.exchange_ops.max(initial=0)),
        }

    def reset(self) -> None:
        """Zero all counters."""
        for arr in (self.messages_sent, self.messages_received,
                    self.words_sent, self.words_received,
                    self.collective_ops, self.exchange_ops):
            arr.fill(0)


class FaultCounters:
    """Per-PE tallies of injected faults and their recovery costs.

    Kept separate from :class:`TrafficCounters` so fault-free runs report
    byte-identical summaries with or without the fault layer compiled in.
    Event counts are integers; costs are modelled seconds.  Populated by
    :class:`repro.sim.faults.FaultState`:

    * ``dropped_rounds`` / ``resent_words`` / ``timeout_wait_s`` /
      ``recovery_s`` — retransmission protocol: number of per-PE exchange
      failures, words re-sent recovering from them, idle time waiting for
      timeouts, and the total extra exchange time (timeouts + resends).
    * ``degraded_rounds`` / ``degraded_s`` — slow-link rounds and their
      extra bandwidth cost.
    * ``hiccup_events`` / ``straggle_s`` — per-PE stall events, and the
      total extra local/collective time from speed heterogeneity, straggler
      windows and hiccups combined.
    """

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError("need at least one PE")
        self.p = int(p)
        self.dropped_rounds = np.zeros(p, dtype=np.int64)
        self.degraded_rounds = np.zeros(p, dtype=np.int64)
        self.resent_words = np.zeros(p, dtype=np.int64)
        self.hiccup_events = np.zeros(p, dtype=np.int64)
        self.timeout_wait_s = np.zeros(p, dtype=np.float64)
        self.recovery_s = np.zeros(p, dtype=np.float64)
        self.degraded_s = np.zeros(p, dtype=np.float64)
        self.straggle_s = np.zeros(p, dtype=np.float64)

    def summary(self) -> Dict[str, object]:
        """Machine-wide totals (JSON-safe plain scalars)."""
        return {
            "dropped_rounds": int(self.dropped_rounds.sum()),
            "degraded_rounds": int(self.degraded_rounds.sum()),
            "resent_words": int(self.resent_words.sum()),
            "hiccup_events": int(self.hiccup_events.sum()),
            "timeout_wait_s": float(self.timeout_wait_s.sum()),
            "recovery_s": float(self.recovery_s.sum()),
            "recovery_s_max": float(self.recovery_s.max(initial=0.0)),
            "degraded_s": float(self.degraded_s.sum()),
            "straggle_s": float(self.straggle_s.sum()),
        }

    def reset(self) -> None:
        """Zero all tallies."""
        for arr in (self.dropped_rounds, self.degraded_rounds,
                    self.resent_words, self.hiccup_events,
                    self.timeout_wait_s, self.recovery_s,
                    self.degraded_s, self.straggle_s):
            arr.fill(0)


class PhaseBreakdown:
    """Per-PE accumulated modelled time, attributed to named phases."""

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError("need at least one PE")
        self.p = int(p)
        self._phases: Dict[str, np.ndarray] = {}

    def add(self, phase: str, pe: int, seconds: float) -> None:
        """Attribute ``seconds`` of PE ``pe``'s time to ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative phase time {seconds} for phase {phase!r}")
        arr = self._phases.get(phase)
        if arr is None:
            arr = np.zeros(self.p, dtype=np.float64)
            self._phases[phase] = arr
        arr[pe] += seconds

    def add_many(self, phase: str, seconds_per_pe: np.ndarray) -> None:
        """Attribute a vector of per-PE times to ``phase``."""
        seconds_per_pe = np.asarray(seconds_per_pe, dtype=np.float64)
        if seconds_per_pe.shape != (self.p,):
            raise ValueError("per-PE time vector has wrong shape")
        if (seconds_per_pe < 0).any():
            raise ValueError("negative phase times")
        arr = self._phases.setdefault(phase, np.zeros(self.p, dtype=np.float64))
        arr += seconds_per_pe

    # ------------------------------------------------------------------
    def phases(self) -> List[str]:
        """Names of all phases that received any time."""
        return sorted(self._phases)

    def per_pe(self, phase: str) -> np.ndarray:
        """Per-PE time vector of ``phase`` (zeros if the phase never ran)."""
        return self._phases.get(phase, np.zeros(self.p, dtype=np.float64)).copy()

    def max_time(self, phase: str) -> float:
        """Bottleneck (max over PEs) time of ``phase``."""
        arr = self._phases.get(phase)
        return float(arr.max()) if arr is not None and arr.size else 0.0

    def mean_time(self, phase: str) -> float:
        """Average per-PE time of ``phase``."""
        arr = self._phases.get(phase)
        return float(arr.mean()) if arr is not None and arr.size else 0.0

    def total_max(self) -> float:
        """Sum over phases of the bottleneck time — the reported wall-time proxy."""
        return float(sum(self.max_time(ph) for ph in self._phases))

    def as_dict(self, phases: Optional[Iterable[str]] = None) -> Dict[str, float]:
        """Bottleneck time per phase as an ordinary dictionary."""
        names = list(phases) if phases is not None else self.phases()
        return {name: self.max_time(name) for name in names}

    def merge(self, other: "PhaseBreakdown") -> None:
        """Accumulate another breakdown (same ``p``) into this one."""
        if other.p != self.p:
            raise ValueError("cannot merge breakdowns with different PE counts")
        for phase, arr in other._phases.items():
            self.add_many(phase, arr)

    def reset(self) -> None:
        """Drop all accumulated times."""
        self._phases.clear()


@dataclass
class PhaseTimer:
    """Context manager that routes clock advances into a phase.

    The simulator keeps a *current phase* attribute; every time a PE clock is
    advanced the delta is attributed to the current phase.  Algorithms wrap
    their steps as::

        with machine.phase(PHASE_DATA_DELIVERY):
            comm.exchange(...)

    Nested phases are allowed; the innermost phase wins (matching how the
    paper instruments its implementation with per-phase barriers).

    When the machine has wall-clock profiling enabled (see
    :meth:`~repro.sim.machine.SimulatedMachine.enable_wall_profile`), phase
    transitions also accumulate *host* wall time per phase name — the
    simulator's own execution cost, not modelled time — which is what the
    engine-performance tooling (``benchmarks/profile_engine.py``, the
    ``--profile`` flag of the scaling benchmark) reports.  Exclusive
    attribution: while a nested phase is open, wall time goes to the inner
    phase only.
    """

    machine: "object"
    phase: str
    previous: Optional[str] = field(default=None, init=False)

    def __enter__(self) -> "PhaseTimer":
        self.previous = getattr(self.machine, "current_phase", PHASE_OTHER)
        profile = getattr(self.machine, "wall_profile", None)
        if profile is not None:
            now = time.perf_counter()
            mark = getattr(self.machine, "_wall_mark", None)
            if mark is not None:
                profile[self.previous] = (
                    profile.get(self.previous, 0.0) + now - mark
                )
            self.machine._wall_mark = now
        self.machine.current_phase = self.phase
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        previous = self.previous if self.previous is not None else PHASE_OTHER
        profile = getattr(self.machine, "wall_profile", None)
        if profile is not None:
            now = time.perf_counter()
            mark = getattr(self.machine, "_wall_mark", None)
            if mark is not None:
                profile[self.phase] = profile.get(self.phase, 0.0) + now - mark
            self.machine._wall_mark = now
        self.machine.current_phase = previous
