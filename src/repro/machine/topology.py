"""Network topologies for the simulated machine.

The paper (Section 5) points out that the PE groups of the multi-level
algorithms should be mapped to "natural" units of the machine: cores within a
node, nodes within an island/rack, islands within the full machine.  The
topology classes here provide exactly that information:

* a mapping from PE index to a coordinate in the hierarchy,
* the *distance level* between two PEs (0 = same node, 1 = same island,
  2 = different islands, ...), which the cost model translates into a
  bandwidth penalty,
* natural group sizes which :func:`repro.core.config.level_plan` uses to pick
  the number of groups per recursion level (Table 1 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class Topology:
    """Abstract base class for network topologies of ``p`` PEs."""

    #: total number of PEs
    p: int

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError(f"topology needs at least one PE, got p={p}")
        self.p = int(p)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def distance_level(self, a: int, b: int) -> int:
        """Return the hierarchy level that traffic between ``a`` and ``b`` crosses.

        Level ``0`` is the cheapest (e.g. same node).  Larger levels are more
        expensive.  ``a == b`` is level ``0`` by convention.
        """
        raise NotImplementedError

    def max_distance_level(self, pes: Sequence[int]) -> int:
        """Worst (most expensive) distance level among a set of PEs.

        Used to price collectives and exchanges over a sub-communicator: the
        bulk-synchronous step is only as fast as its slowest link.
        """
        pes = list(pes)
        if len(pes) <= 1:
            return 0
        lo, hi = min(pes), max(pes)
        # For the hierarchical topologies used here, PEs are numbered
        # contiguously within nodes/islands, so the extreme indices realise
        # the maximum distance.
        return self.distance_level(lo, hi)

    def distance_levels(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_level` over PE index pairs.

        Identical results to the scalar method; the lockstep engine uses it
        to price thousands of sub-groups at once.  Subclasses override it
        with pure array arithmetic.
        """
        return np.array(
            [self.distance_level(int(x), int(y)) for x, y in zip(a, b)],
            dtype=np.int64,
        )

    def natural_group_sizes(self) -> List[int]:
        """Sizes of the natural hierarchy units, innermost first.

        Example: a SuperMUC-like machine returns ``[16, 8192]`` (PEs per
        node, PEs per island) for PEs within a larger machine.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human readable description."""
        return f"{type(self).__name__}(p={self.p})"

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def validate_pe(self, pe: int) -> None:
        """Raise :class:`IndexError` when ``pe`` is out of range."""
        if not 0 <= pe < self.p:
            raise IndexError(f"PE index {pe} out of range 0..{self.p - 1}")


class FlatTopology(Topology):
    """All PEs are equidistant (a single crossbar / fat tree stage)."""

    def distance_level(self, a: int, b: int) -> int:
        self.validate_pe(a)
        self.validate_pe(b)
        return 0

    def distance_levels(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(a).shape, dtype=np.int64)

    def natural_group_sizes(self) -> List[int]:
        return []

    def describe(self) -> str:
        return f"FlatTopology(p={self.p})"


@dataclass(frozen=True)
class PECoordinate:
    """Hierarchical coordinate of one PE."""

    island: int
    node: int
    core: int


class HierarchicalTopology(Topology):
    """Cores within nodes within islands — the SuperMUC structure.

    PEs are numbered contiguously: PE ``i`` lives on core ``i % cores_per_node``
    of node ``(i // cores_per_node) % nodes_per_island`` of island
    ``i // (cores_per_node * nodes_per_island)``.
    """

    def __init__(self, p: int, cores_per_node: int = 16, nodes_per_island: int = 512):
        super().__init__(p)
        if cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if nodes_per_island <= 0:
            raise ValueError("nodes_per_island must be positive")
        self.cores_per_node = int(cores_per_node)
        self.nodes_per_island = int(nodes_per_island)
        self.cores_per_island = self.cores_per_node * self.nodes_per_island

    # ------------------------------------------------------------------
    def coordinate(self, pe: int) -> PECoordinate:
        """Return the (island, node, core) coordinate of ``pe``."""
        self.validate_pe(pe)
        island = pe // self.cores_per_island
        rem = pe % self.cores_per_island
        node = rem // self.cores_per_node
        core = rem % self.cores_per_node
        return PECoordinate(island=island, node=node, core=core)

    def distance_level(self, a: int, b: int) -> int:
        ca = self.coordinate(a)
        cb = self.coordinate(b)
        if ca.island != cb.island:
            return 2
        if ca.node != cb.node:
            return 1
        return 0

    def distance_levels(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        same_island = (a // self.cores_per_island) == (b // self.cores_per_island)
        same_node = (a // self.cores_per_node) == (b // self.cores_per_node)
        return np.where(same_island, np.where(same_node, 0, 1), 2).astype(np.int64)

    def natural_group_sizes(self) -> List[int]:
        sizes: List[int] = []
        if self.p > self.cores_per_node:
            sizes.append(self.cores_per_node)
        if self.p > self.cores_per_island:
            sizes.append(self.cores_per_island)
        return sizes

    def islands_used(self) -> int:
        """Number of islands the ``p`` PEs span."""
        return (self.p + self.cores_per_island - 1) // self.cores_per_island

    def nodes_used(self) -> int:
        """Number of nodes the ``p`` PEs span."""
        return (self.p + self.cores_per_node - 1) // self.cores_per_node

    def describe(self) -> str:
        return (
            f"HierarchicalTopology(p={self.p}, cores/node={self.cores_per_node}, "
            f"nodes/island={self.nodes_per_island}, islands={self.islands_used()})"
        )


class TorusTopology(Topology):
    """A d-dimensional torus (mesh with wraparound), e.g. Cray XT/XE networks.

    The distance level is the hop distance bucketed into three classes so
    that the same cost interface as the hierarchical topology can be used:
    level 0 for neighbours, level 1 for "nearby" PEs (within a quarter of the
    machine diameter) and level 2 otherwise.
    """

    def __init__(self, p: int, dims: Tuple[int, ...] | None = None):
        super().__init__(p)
        if dims is None:
            dims = self._default_dims(p)
        if math.prod(dims) < p:
            raise ValueError(f"torus dims {dims} hold {math.prod(dims)} < p={p} PEs")
        self.dims = tuple(int(d) for d in dims)

    @staticmethod
    def _default_dims(p: int) -> Tuple[int, ...]:
        """Pick an approximately cubic 3-D shape holding ``p`` PEs."""
        side = max(1, round(p ** (1.0 / 3.0)))
        while side * side * side < p:
            side += 1
        return (side, side, side)

    def coordinate(self, pe: int) -> Tuple[int, ...]:
        """Return the torus coordinate of ``pe`` (row-major numbering)."""
        self.validate_pe(pe)
        coords = []
        rem = pe
        for d in reversed(self.dims):
            coords.append(rem % d)
            rem //= d
        return tuple(reversed(coords))

    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan distance with wraparound between two PEs."""
        ca = self.coordinate(a)
        cb = self.coordinate(b)
        dist = 0
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            dist += min(delta, d - delta)
        return dist

    def diameter(self) -> int:
        """Maximum hop distance of the torus."""
        return sum(d // 2 for d in self.dims)

    def distance_level(self, a: int, b: int) -> int:
        self.validate_pe(a)
        self.validate_pe(b)
        if a == b:
            return 0
        hops = self.hop_distance(a, b)
        diam = max(1, self.diameter())
        if hops <= 1:
            return 0
        if hops <= max(1, diam // 4):
            return 1
        return 2

    def natural_group_sizes(self) -> List[int]:
        # A natural sub-unit of a torus is a near-cubic sub-torus holding
        # roughly p^(1/2) PEs; we expose that single hint.
        if self.p < 4:
            return []
        return [max(2, int(round(math.sqrt(self.p))))]

    def describe(self) -> str:
        return f"TorusTopology(p={self.p}, dims={self.dims})"


def topology_for(p: int, spec=None, kind: str = "hierarchical") -> Topology:
    """Build a topology of ``p`` PEs matching a :class:`~repro.machine.spec.MachineSpec`.

    Parameters
    ----------
    p:
        Number of PEs.
    spec:
        Optional :class:`MachineSpec`; its ``cores_per_node`` and
        ``nodes_per_island`` determine the hierarchy.  When omitted a
        flat topology is returned for ``kind='flat'`` and a generic
        16-cores/node hierarchy otherwise.
    kind:
        ``'hierarchical'``, ``'flat'`` or ``'torus'``.
    """
    kind = kind.lower()
    if kind == "flat":
        return FlatTopology(p)
    if kind == "torus":
        return TorusTopology(p)
    if kind != "hierarchical":
        raise ValueError(f"unknown topology kind {kind!r}")
    if spec is None:
        return HierarchicalTopology(p, cores_per_node=16, nodes_per_island=512)
    return HierarchicalTopology(
        p,
        cores_per_node=spec.cores_per_node,
        nodes_per_island=spec.nodes_per_island,
    )
