"""Machine model: hardware parameters, topology and communication cost.

This subpackage describes the *machine* on which the simulated sorting
algorithms run.  It intentionally mirrors the model of computation used in
Section 2.1 of the paper:

* single-ported message passing — sending a message of ``l`` machine words
  costs ``alpha + l * beta``,
* a black-box data exchange primitive ``Exch(P, h, r)`` parameterised by the
  subnetwork size ``P``, the per-PE bottleneck communication volume ``h`` and
  the per-PE number of message startups ``r``,
* a hierarchical network (cores within nodes within islands, as on SuperMUC)
  whose bandwidth degrades when messages cross higher levels of the
  hierarchy.

The classes here carry *no* simulation state; they are pure descriptions that
the :mod:`repro.sim` package consumes.
"""

from repro.machine.spec import (
    MachineSpec,
    supermuc_like,
    cray_xt4_like,
    cray_xe6_like,
    generic_cluster,
    laptop_like,
)
from repro.machine.topology import (
    Topology,
    FlatTopology,
    HierarchicalTopology,
    TorusTopology,
    topology_for,
)
from repro.machine.cost import (
    CostModel,
    CollectiveCost,
    ExchangeCost,
    LocalWorkModel,
)
from repro.machine.counters import (
    PhaseTimer,
    TrafficCounters,
    PhaseBreakdown,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_OTHER,
    PAPER_PHASES,
)

__all__ = [
    "MachineSpec",
    "supermuc_like",
    "cray_xt4_like",
    "cray_xe6_like",
    "generic_cluster",
    "laptop_like",
    "Topology",
    "FlatTopology",
    "HierarchicalTopology",
    "TorusTopology",
    "topology_for",
    "CostModel",
    "CollectiveCost",
    "ExchangeCost",
    "LocalWorkModel",
    "PhaseTimer",
    "TrafficCounters",
    "PhaseBreakdown",
    "PHASE_LOCAL_SORT",
    "PHASE_SPLITTER_SELECTION",
    "PHASE_BUCKET_PROCESSING",
    "PHASE_DATA_DELIVERY",
    "PHASE_OTHER",
    "PAPER_PHASES",
]
