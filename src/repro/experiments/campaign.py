"""Sharded, cached experiment campaigns over the paper's evaluation.

The paper (Section 7, Appendix E) evaluates at ``p`` in {512, 2048, 8192,
32768} across Table 2 and Figs. 7-12.  A *campaign* expands each experiment
(weak scaling, slowdown, overpartitioning, variance, comparison, level
table) into a flat list of **cells** — one ``(machine, algorithm, config,
workload, repetition)`` single run each — and then

* fans the cells across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs > 1``) with a deterministic per-cell seed derived from the cell
  spec, so sharded and serial execution produce **byte-identical** summaries,
* caches each cell's :meth:`~repro.core.runner.SortResult.summary_dict` on
  disk keyed by a content hash of the cell spec plus :data:`RNG_VERSION`
  (the code-relevant RNG generation), so interrupted or re-run campaigns
  resume from the cache instead of recomputing,
* aggregates the cell summaries into the per-experiment rows (medians over
  repetitions, best-level reductions, slowdown ratios) that correspond to
  the paper's tables and figures.

Cells above ``reference_max_p`` (the per-PE reference engine's feasibility
limit, relevant for the ``"paper"`` profile reaching ``p = 32768``) are
flat-engine only and are pinned by a seeded-determinism re-run instead of a
cross-engine comparison, exactly like ``benchmarks/bench_engine_scaling.py``.

Command line::

    python -m repro.experiments.cli campaign --profile quick --jobs 4
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import slowdown as slowdown_metric
from repro.analysis.metrics import summarize_runs
from repro.analysis.tables import format_table
from repro.core.config import level_plan
from repro.core.runner import run_on_machine
from repro.experiments.harness import PAPER_P_VALUES, build_algo_config, scale_profile
from repro.machine.spec import spec_by_name
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import WORKLOADS, per_pe_workload


#: Code-relevant RNG generation.  The cell cache key includes this string, so
#: bumping it invalidates every cached summary.  Bump whenever a change moves
#: which random streams the algorithms consume (e.g. the PR 2 pivot-stream
#: move or the PR 3 counter-RNG migration): such changes shift modelled
#: clocks/imbalance and stale cached summaries would otherwise survive.
RNG_VERSION = "ctr-philox-v1+group-rng-v1"

#: Experiments a campaign can expand, in display order.
CAMPAIGN_EXPERIMENTS = (
    "weak_scaling",
    "slowdown",
    "overpartitioning",
    "variance",
    "comparison",
    "level_table",
    "faults",
)

#: Default workload axis: the paper's uniform input plus the adversarial
#: distributions from :mod:`repro.workloads.generators`.  The first entry is
#: the *primary* workload and gets the full profile grid; the others ride a
#: trimmed grid (smallest machine/input sizes) so every figure gains
#: non-uniform rows without multiplying the campaign cost by the number of
#: workloads.
CAMPAIGN_WORKLOADS = (
    "uniform",
    "zipf",
    "nearly_sorted",
    "duplicates",
    "staggered",
    "all_equal",
    "reverse",
)

_BASELINES = ("mergesort", "samplesort", "quicksort")


# ----------------------------------------------------------------------
# Cell spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a single repetition of a single config.

    ``kind == "sort"`` cells run one sorting algorithm on the simulator;
    ``kind == "plan"`` cells (level table) compute level plans only.  The
    ``seed`` is derived from the identity fields by :func:`derive_cell_seed`
    at expansion time, so a cell is self-contained: any process can execute
    it and obtain the same summary.
    """

    experiment: str
    kind: str = "sort"
    machine: str = "supermuc"
    algorithm: str = "ams"
    p: int = 16
    n_per_pe: int = 1000
    levels: int = 2
    workload: str = "uniform"
    node_size: int = 4
    repetition: int = 0
    series: str = ""
    delivery: str = "deterministic"
    overpartitioning: Optional[int] = None
    oversampling: Optional[float] = None
    samples_per_pe: Optional[int] = None
    engine: str = "flat"
    validate: bool = True
    determinism_check: bool = False
    #: Fault-injection spec string (see :mod:`repro.sim.faults`); "" = healthy.
    faults: str = ""
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "CampaignCell":
        return cls(**d)  # type: ignore[arg-type]

    def group_key(self) -> "CampaignCell":
        """The cell with repetition/seed erased: the aggregation group."""
        return replace(self, repetition=0, seed=0)


def _canonical_json(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_cell_seed(identity: Mapping[str, object]) -> int:
    """Deterministic seed from the cell's identity fields.

    Uses SHA-256 (never :func:`hash`, which is salted per process) so every
    worker process — and every future session — derives the same seed.
    """
    digest = hashlib.sha256(_canonical_json(dict(identity)).encode()).hexdigest()
    return int(digest[:8], 16) % (2**31 - 1)


#: Fields that describe *how* a cell executes, not *what* experiment it is.
#: They are excluded from the seed identity so e.g. a reference-engine run of
#: a cell draws the same streams (and must reproduce the same summary) as the
#: flat-engine run.  They remain part of the cache key.
_EXECUTION_FIELDS = ("seed", "engine", "validate", "determinism_check")


def finalize_cell(cell: CampaignCell) -> CampaignCell:
    """Fill in the derived seed (identity = spec minus execution details)."""
    identity = cell.to_dict()
    for field in _EXECUTION_FIELDS:
        identity.pop(field)
    # The fault spec never enters the seed: healthy cells keep their
    # pre-fault-layer identity (and golden traces), and every rung of a
    # fault ladder sorts the *same* input with the *same* sampling streams —
    # a controlled degradation comparison, not a different experiment.  The
    # spec remains part of the cache key (cell_key hashes the full spec).
    identity.pop("faults", None)
    return replace(cell, seed=derive_cell_seed(identity))


def cell_key(cell: CampaignCell) -> str:
    """Content hash of the full cell spec + RNG generation: the cache key."""
    payload = _canonical_json({"spec": cell.to_dict(), "rng_version": RNG_VERSION})
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _run_sort_cell(cell: CampaignCell) -> Dict[str, object]:
    machine = SimulatedMachine(
        cell.p, spec=spec_by_name(cell.machine), seed=cell.seed,
        faults=cell.faults or None,
    )
    local_data = per_pe_workload(cell.workload, cell.p, cell.n_per_pe, seed=cell.seed + 1)
    config = build_algo_config(
        cell.algorithm,
        p=cell.p,
        n_per_pe=cell.n_per_pe,
        levels=cell.levels,
        node_size=cell.node_size,
        delivery=cell.delivery,
        overpartitioning=cell.overpartitioning,
        oversampling=cell.oversampling,
    )
    result = run_on_machine(
        machine,
        local_data,
        algorithm=cell.algorithm,
        config=config,
        validate=cell.validate,
        engine=cell.engine,
    )
    return result.summary_dict()


def run_cell(cell: CampaignCell) -> Dict[str, object]:
    """Execute one cell and return its JSON-safe summary.

    ``plan`` cells compute the Table 1 level plans for the paper's machine
    sizes.  ``sort`` cells with ``determinism_check`` run twice with the same
    seed and must reproduce the identical summary (the large-``p`` substitute
    for the cross-engine comparison).
    """
    if cell.kind == "plan":
        return {
            "plan_by_p": {
                str(p): [int(r) for r in level_plan(p, cell.levels, node_size=cell.node_size)]
                for p in PAPER_P_VALUES
            }
        }
    summary = _run_sort_cell(cell)
    if cell.determinism_check:
        again = _run_sort_cell(cell)
        if again != summary:
            raise AssertionError(
                f"cell {cell_key(cell)} ({cell.experiment}, p={cell.p}, "
                f"workload={cell.workload}) is not seed-deterministic"
            )
    return summary


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
def _summary_checksum(summary: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON of a cell summary."""
    return hashlib.sha256(_canonical_json(dict(summary)).encode()).hexdigest()


class CellCache:
    """One JSON file per cell summary, written atomically and checksummed.

    The file name is the content hash (:func:`cell_key`), so a cache
    directory can be shared between profiles and survives interrupted
    campaigns: completed cells are flushed as they finish, and a re-run only
    executes the missing ones.  Clock-model changes must bump
    :data:`RNG_VERSION`, which changes every key and therefore invalidates
    the whole cache.  Every document embeds a SHA-256 checksum of its
    summary, so a truncated or bit-flipped file is *detected* — it becomes
    a counted ``corrupt`` miss and the cell recomputes; cached bytes are
    never trusted on parseability alone.  Any unreadable, stale or
    schema-incomplete entry is likewise a miss, never an error.
    """

    def __init__(self, root: "Path | str"):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self.get_with_status(key)[0]

    def get_with_status(
        self, key: str
    ) -> Tuple[Optional[Dict[str, object]], str]:
        """``(summary or None, status)`` for one cache entry.

        Status is ``"hit"``, ``"miss"`` (no entry), ``"stale"`` (readable
        but from another RNG generation or a pre-checksum writer — silently
        recompute) or ``"corrupt"`` (bytes cannot be trusted: unparseable,
        schema-broken or checksum mismatch — recompute *and report*).
        """
        path = self.path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None, "miss"
        except (OSError, UnicodeDecodeError):
            # Unreadable or bit-flipped into invalid UTF-8: corrupt bytes.
            return None, "corrupt"
        try:
            doc = json.loads(text)
        except ValueError:
            return None, "corrupt"
        if not isinstance(doc, dict):
            return None, "corrupt"
        if doc.get("rng_version") != RNG_VERSION:
            return None, "stale"
        summary = doc.get("summary")
        if not isinstance(summary, dict):
            return None, "corrupt"
        checksum = doc.get("checksum")
        if checksum is None:
            # Pre-checksum cache generation: recompute without alarm.
            return None, "stale"
        if checksum != _summary_checksum(summary):
            return None, "corrupt"
        return summary, "hit"

    def put(self, key: str, cell: CampaignCell, summary: Mapping[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "rng_version": RNG_VERSION,
            "spec": cell.to_dict(),
            "summary": dict(summary),
            "checksum": _summary_checksum(summary),
        }
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path(key))


# ----------------------------------------------------------------------
# Campaign expansion
# ----------------------------------------------------------------------
def _level_candidates(
    profile: Mapping[str, object], p: int, counts: Sequence[int] = (1, 2, 3)
) -> Tuple[int, ...]:
    policy = profile.get("level_counts")
    if policy == "paper":
        # Table 1: three levels at the largest machine (p = 2^15), two below.
        return (3,) if p > 8192 else (2,)
    if policy:
        counts = tuple(policy)  # type: ignore[arg-type]
    node = int(profile["node_size"])
    return tuple(k for k in counts if k == 1 or p > node)


def _grid(profile: Mapping[str, object], primary: bool):
    """(p_values, n_per_pe_values, repetitions) — full grid for the primary
    workload, a trimmed one (small machines/inputs) for the others."""
    ps = tuple(profile["p_values"])
    ns = tuple(profile["n_per_pe_values"])
    reps = int(profile["repetitions"])
    if primary:
        return ps, ns, reps
    return ps[:2], ns[:1], min(2, reps)


def _expand_weak_scaling(profile, workload, primary) -> List[CampaignCell]:
    ps, ns, reps = _grid(profile, primary)
    cells = []
    for n_per_pe in ns:
        for p in ps:
            candidates = _level_candidates(profile, p)
            if not primary:
                candidates = tuple(k for k in candidates if k <= 2)
            for levels in candidates:
                for rep in range(max(1, reps)):
                    cells.append(CampaignCell(
                        experiment="weak_scaling", algorithm="ams", p=p,
                        n_per_pe=n_per_pe, levels=levels, workload=workload,
                        node_size=int(profile["node_size"]), repetition=rep,
                    ))
    return cells


def _expand_slowdown(profile, workload, primary) -> List[CampaignCell]:
    ps, ns, reps = _grid(profile, primary)
    if primary:
        ps, ns = ps, ns[:2]
    else:
        ps, ns = ps[:1], ns[:1]
    cells = []
    for n_per_pe in ns:
        for p in ps:
            candidates = _level_candidates(profile, p)
            if not primary:
                candidates = tuple(k for k in candidates if k <= 2)
            for algorithm in ("ams", "rlm"):
                for levels in candidates:
                    for rep in range(max(1, reps)):
                        cells.append(CampaignCell(
                            experiment="slowdown", algorithm=algorithm, p=p,
                            n_per_pe=n_per_pe, levels=levels, workload=workload,
                            node_size=int(profile["node_size"]), repetition=rep,
                        ))
    return cells


def _expand_overpartitioning(profile, workload, primary) -> List[CampaignCell]:
    ps = tuple(profile["p_values"])
    ns = tuple(profile["n_per_pe_values"])
    p = int(ps[0])
    n_per_pe = int(ns[min(1, len(ns) - 1)])
    node_size = int(profile["node_size"])
    reps = min(2, int(profile["repetitions"])) if primary else 1
    cells = []
    if primary:
        b_values, samples = (1, 8, 16), (4, 16, 64, 256)
        a_values = (1.0, 8.0, 16.0)
    else:
        b_values, samples = (1, 8), (16, 64)
        a_values = ()
    # Figure 10: imbalance vs samples per PE for several overpartitioning b.
    for b in b_values:
        for ab in samples:
            a = max(ab / b, 0.25)
            for rep in range(reps):
                cells.append(CampaignCell(
                    experiment="overpartitioning", series="fig10", algorithm="ams",
                    p=p, n_per_pe=n_per_pe, levels=1, workload=workload,
                    node_size=node_size, repetition=rep,
                    overpartitioning=int(b), oversampling=float(a),
                    samples_per_pe=int(ab),
                ))
    # Figure 11: wall-time vs samples per PE for several oversampling a.
    for a in a_values:
        for ab in samples:
            b = max(1, int(round(ab / a)))
            for rep in range(reps):
                cells.append(CampaignCell(
                    experiment="overpartitioning", series="fig11", algorithm="ams",
                    p=p, n_per_pe=n_per_pe, levels=1, workload=workload,
                    node_size=node_size, repetition=rep,
                    overpartitioning=int(b), oversampling=float(a),
                    samples_per_pe=int(ab),
                ))
    return cells


def _expand_variance(profile, workload, primary) -> List[CampaignCell]:
    ps = tuple(profile["p_values"])[:2] if primary else tuple(profile["p_values"])[:1]
    ns = tuple(profile["n_per_pe_values"])[:2] if primary else tuple(profile["n_per_pe_values"])[:1]
    reps = max(3, int(profile["repetitions"])) if primary else 3
    cells = []
    for n_per_pe in ns:
        for p in ps:
            candidates = _level_candidates(profile, p)
            if not primary:
                candidates = candidates[:1]
            for levels in candidates:
                for rep in range(reps):
                    cells.append(CampaignCell(
                        experiment="variance", algorithm="ams", p=p,
                        n_per_pe=n_per_pe, levels=levels, workload=workload,
                        node_size=int(profile["node_size"]), repetition=rep,
                    ))
    return cells


def _expand_comparison(profile, workload, primary) -> List[CampaignCell]:
    ps = tuple(profile["p_values"]) if primary else tuple(profile["p_values"])[:1]
    n_per_pe = int(profile["n_per_pe_values"][0])
    reps = min(2, int(profile["repetitions"])) if primary else 1
    cells = []
    for p in ps:
        candidates = _level_candidates(profile, p)
        if not primary:
            candidates = tuple(k for k in candidates if k <= 2)
        for levels in candidates:
            for rep in range(reps):
                cells.append(CampaignCell(
                    experiment="comparison", algorithm="ams", p=p,
                    n_per_pe=n_per_pe, levels=levels, workload=workload,
                    node_size=int(profile["node_size"]), repetition=rep,
                ))
        for baseline in _BASELINES:
            for rep in range(reps):
                cells.append(CampaignCell(
                    experiment="comparison", algorithm=baseline, p=p,
                    n_per_pe=n_per_pe, levels=1, workload=workload,
                    node_size=int(profile["node_size"]), repetition=rep,
                ))
    return cells


def _expand_level_table(profile, workload, primary) -> List[CampaignCell]:
    # The plan is workload-invariant; the workload is recorded anyway so
    # every experiment's rows share the campaign-wide schema.
    return [
        CampaignCell(
            experiment="level_table", kind="plan", algorithm="plan",
            p=int(PAPER_P_VALUES[0]), n_per_pe=0, levels=k, workload=workload,
            node_size=16, repetition=0, validate=False,
        )
        for k in (1, 2, 3)
    ]


def _expand_faults(profile, workload, primary) -> List[CampaignCell]:
    """Degradation grid: each algorithm climbs a ladder of fault specs.

    The healthy spec (``""``) is always present — it is the slowdown
    baseline — and the remaining rungs come from the profile's
    ``fault_specs`` override (the campaign CLI's ``--faults``) or the
    default ladders of :mod:`repro.experiments.faults`.
    """
    from repro.experiments.faults import DEFAULT_FAULT_SPECS, TRIMMED_FAULT_SPECS

    ps = tuple(profile["p_values"])
    n_per_pe = int(tuple(profile["n_per_pe_values"])[0])
    node_size = int(profile["node_size"])
    if primary:
        p = int(ps[min(1, len(ps) - 1)])
        algorithms = ("ams", "rlm", "samplesort")
        specs = tuple(profile.get("fault_specs", DEFAULT_FAULT_SPECS))
        reps = min(2, int(profile["repetitions"]))
    else:
        p = int(ps[0])
        algorithms = ("ams", "rlm")
        specs = tuple(profile.get("fault_specs", TRIMMED_FAULT_SPECS))
        reps = 1
    if "" not in specs:
        specs = ("",) + specs
    cells = []
    for algorithm in algorithms:
        levels = 2 if (algorithm in ("ams", "rlm") and p > node_size) else 1
        for spec in specs:
            for rep in range(max(1, reps)):
                cells.append(CampaignCell(
                    experiment="faults", algorithm=algorithm, p=p,
                    n_per_pe=n_per_pe, levels=levels, workload=workload,
                    node_size=node_size, repetition=rep, faults=spec,
                ))
    return cells


_EXPANDERS: Dict[str, Callable[..., List[CampaignCell]]] = {
    "weak_scaling": _expand_weak_scaling,
    "slowdown": _expand_slowdown,
    "overpartitioning": _expand_overpartitioning,
    "variance": _expand_variance,
    "comparison": _expand_comparison,
    "level_table": _expand_level_table,
    "faults": _expand_faults,
}


def expand_campaign(
    profile: Mapping[str, object],
    experiments: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
) -> List[CampaignCell]:
    """Expand a profile into the flat, deterministic list of campaign cells."""
    if experiments is None:
        experiments = tuple(profile.get("experiments", CAMPAIGN_EXPERIMENTS))
    if workloads is None:
        workloads = tuple(profile.get("workloads", CAMPAIGN_WORKLOADS))
    unknown = [e for e in experiments if e not in _EXPANDERS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown!r}; known: {sorted(_EXPANDERS)}"
        )
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads {unknown!r}; known: {sorted(WORKLOADS)}")

    engine = str(profile.get("engine", "flat"))
    machine = str(profile.get("machine", "supermuc"))
    reference_max_p = int(profile.get("reference_max_p", 1024))
    validate_max_p = int(profile.get("validate_max_p", 2**62))

    cells: List[CampaignCell] = []
    for experiment in experiments:
        for i, workload in enumerate(workloads):
            for cell in _EXPANDERS[experiment](profile, workload, i == 0):
                if cell.kind == "sort":
                    cell = replace(
                        cell,
                        machine=machine,
                        engine=engine,
                        validate=cell.p <= validate_max_p,
                        determinism_check=cell.p > reference_max_p,
                    )
                cells.append(finalize_cell(cell))
    return cells


# ----------------------------------------------------------------------
# Execution (serial or sharded)
# ----------------------------------------------------------------------
class CellTimeoutError(RuntimeError):
    """A cell exceeded its wall-clock budget (beyond-tier safety valve)."""


def _run_cell_guarded(
    cell: CampaignCell, timeout_s: Optional[float] = None
) -> Dict[str, object]:
    """:func:`run_cell` under an optional SIGALRM wall-clock deadline.

    Module level (picklable) so sharded campaigns submit it to pool
    workers; the itimer fires in the executing process's main thread, which
    is exactly where :class:`ProcessPoolExecutor` workers run their tasks.
    Wall-clock only — modelled time is untouched, and a cell that finishes
    in budget produces the same summary with or without the guard.
    """
    if not timeout_s:
        return run_cell(cell)
    import signal

    def _on_alarm(signum, frame):
        raise CellTimeoutError(
            f"cell {cell_key(cell)} ({cell.experiment}, p={cell.p}, "
            f"workload={cell.workload}) exceeded its {timeout_s}s "
            "wall-clock budget"
        )

    old = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        return run_cell(cell)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _cell_desc(cell: CampaignCell) -> str:
    return (
        f"{cell.experiment} {cell.algorithm} p={cell.p} n/p={cell.n_per_pe} "
        f"k={cell.levels} {cell.workload} rep={cell.repetition}"
    )


#: Exponential backoff before a cell retry: 0.1 s doubling, capped at 2 s.
_BACKOFF_BASE_S = 0.1
_BACKOFF_CAP_S = 2.0


def execute_cells(
    cells: Sequence[CampaignCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    resume: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    retries: int = 2,
    strict: bool = False,
    cell_timeout_s: Optional[float] = None,
) -> Tuple[Dict[str, Dict[str, object]], Dict[str, object]]:
    """Run every cell (or fetch it from the cache); returns summaries + stats.

    Summaries are keyed by :func:`cell_key`.  With ``jobs > 1`` the pending
    cells are fanned across a process pool; because each cell carries its own
    derived seed, the summaries are byte-identical to serial execution
    regardless of completion order.  Completed cells are flushed to the cache
    as they finish, so an interrupted campaign resumes where it stopped.

    **Fault tolerance.**  A failing cell is retried up to ``retries`` times
    with exponential backoff; a cell that keeps failing is *quarantined* —
    skipped, reported in ``stats['quarantined_cells']`` — instead of
    aborting the campaign (``strict=True`` restores fail-fast on the first
    error).  A crash of a pool worker process (``BrokenProcessPool``)
    rebuilds the pool and charges one attempt to every cell that had not
    finished in that round, which bounds the damage a deterministically
    crashing cell can do: it exhausts its own budget within ``retries + 1``
    rebuilds and is quarantined.  ``cell_timeout_s`` puts a wall-clock
    ceiling on each cell (for beyond-tier rows), enforced via SIGALRM in
    the executing process.  Corrupt cache entries (checksum mismatch,
    truncation) are counted in ``stats['cache_corrupt']``, warned about
    once with the offending path, and recomputed.
    """
    stats: Dict[str, object] = {
        "cells": len(cells),
        "executed": 0,
        "cache_hits": 0,
        "cache_corrupt": 0,
        "cell_retries": 0,
        "pool_rebuilds": 0,
        "quarantined": 0,
        "quarantined_cells": [],
    }
    summaries: Dict[str, Dict[str, object]] = {}
    pending: List[Tuple[str, CampaignCell]] = []
    pending_keys = set()
    for cell in cells:
        key = cell_key(cell)
        if key in summaries or key in pending_keys:
            continue
        cached: Optional[Dict[str, object]] = None
        if cache is not None and resume:
            cached, status = cache.get_with_status(key)
            if status == "corrupt":
                stats["cache_corrupt"] += 1
                if progress is not None:
                    progress(
                        f"warning: corrupt cache entry {cache.path(key)} "
                        "(checksum/parse failure) — recomputing"
                    )
        if cached is not None:
            summaries[key] = cached
            stats["cache_hits"] += 1
        else:
            pending.append((key, cell))
            pending_keys.add(key)

    from repro.chaos import get_chaos

    def _finish(key: str, cell: CampaignCell, summary: Dict[str, object]) -> None:
        summaries[key] = summary
        stats["executed"] += 1
        if cache is not None:
            cache.put(key, cell, summary)
            chaos = get_chaos()
            if chaos is not None:
                # Deterministic chaos: attack the just-written bytes.  The
                # in-memory summary is already recorded, so this campaign
                # is unaffected; the *next* resume must detect the damage.
                chaos.maybe_corrupt_cache(cache.path(key))
        if progress is not None:
            done = stats["executed"] + stats["cache_hits"]
            progress(
                f"[{done}/{len(cells)}] {cell.experiment} "
                f"{cell.algorithm} p={cell.p} n/p={cell.n_per_pe} "
                f"k={cell.levels} {cell.workload} rep={cell.repetition}"
            )

    attempts: Dict[str, int] = {key: 0 for key, _ in pending}

    def _charge_failure(
        key: str, cell: CampaignCell, reason: str,
        retry_round: List[Tuple[str, CampaignCell]],
    ) -> None:
        """One failed attempt: requeue the cell or quarantine it."""
        attempts[key] += 1
        if attempts[key] > max(0, int(retries)):
            stats["quarantined"] += 1
            stats["quarantined_cells"].append(
                {"cell": _cell_desc(cell), "key": key, "reason": reason}
            )
            if progress is not None:
                progress(
                    f"warning: quarantined {_cell_desc(cell)} after "
                    f"{attempts[key]} attempts: {reason}"
                )
        else:
            stats["cell_retries"] += 1
            retry_round.append((key, cell))

    todo = list(pending)
    round_idx = 0
    while todo:
        if round_idx > 0:
            time.sleep(min(_BACKOFF_BASE_S * 2 ** (round_idx - 1), _BACKOFF_CAP_S))
        round_idx += 1
        retry_round: List[Tuple[str, CampaignCell]] = []
        if jobs <= 1:
            for key, cell in todo:
                try:
                    summary = _run_cell_guarded(cell, cell_timeout_s)
                except Exception as exc:
                    if strict:
                        raise
                    _charge_failure(key, cell, repr(exc), retry_round)
                else:
                    _finish(key, cell, summary)
        else:
            pool = ProcessPoolExecutor(max_workers=jobs)
            try:
                futures = {
                    pool.submit(_run_cell_guarded, cell, cell_timeout_s): (key, cell)
                    for key, cell in todo
                }
                unfinished = dict(futures)
                for future in as_completed(futures):
                    key, cell = futures[future]
                    try:
                        summary = future.result()
                    except BrokenProcessPool:
                        # The pool is gone: every cell still unfinished in
                        # this round failed with it.  Rebuild and charge
                        # each one attempt — bounded, because the true
                        # crasher exhausts its own budget within
                        # ``retries + 1`` rebuilds.
                        if strict:
                            raise
                        stats["pool_rebuilds"] += 1
                        for okey, ocell in unfinished.values():
                            _charge_failure(
                                okey, ocell,
                                "worker process crashed (BrokenProcessPool)",
                                retry_round,
                            )
                        break
                    except Exception as exc:
                        if strict:
                            raise
                        unfinished.pop(future, None)
                        _charge_failure(key, cell, repr(exc), retry_round)
                    else:
                        unfinished.pop(future, None)
                        _finish(key, cell, summary)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        todo = retry_round
    return summaries, stats


# ----------------------------------------------------------------------
# Aggregation: cells -> the paper's rows
# ----------------------------------------------------------------------
def _grouped(pairs: Iterable[Tuple[CampaignCell, Dict[str, object]]]):
    """Group (cell, summary) pairs by the repetition-erased cell, in order."""
    groups: Dict[CampaignCell, List[Tuple[CampaignCell, Dict[str, object]]]] = {}
    for cell, summary in pairs:
        groups.setdefault(cell.group_key(), []).append((cell, summary))
    for members in groups.values():
        members.sort(key=lambda cs: cs[0].repetition)
    return groups


def _median_row(members) -> Dict[str, object]:
    """Median/min/max over repetitions + the median run's detail columns."""
    times = [float(s["total_time_s"]) for _, s in members]
    stats = summarize_runs(times)
    median_idx = int(np.argsort(times)[len(times) // 2])
    cell, rep = members[median_idx]
    row: Dict[str, object] = {
        "workload": cell.workload,
        "n_per_pe": cell.n_per_pe,
        "p": cell.p,
        "levels": cell.levels,
        "time_median_s": stats["median"],
        "time_min_s": stats["min"],
        "time_max_s": stats["max"],
        "imbalance": rep["imbalance"],
        "max_startups": rep["traffic"]["max_startups_per_pe"],
        "max_words": rep["traffic"]["max_words_per_pe"],
    }
    for phase, value in rep["phase_times"].items():
        row[f"phase_{phase}"] = value
    return row


def _aggregate_weak_scaling(pairs) -> Dict[str, List[Dict[str, object]]]:
    rows = [_median_row(members) for members in _grouped(pairs).values()]
    best: Dict[tuple, Dict[str, object]] = {}
    for row in rows:
        key = (row["workload"], row["n_per_pe"], row["p"])
        if key not in best or row["time_median_s"] < best[key]["time_median_s"]:
            best[key] = row
    best_rows = [
        {
            "workload": workload,
            "n_per_pe": n_per_pe,
            "p": p,
            "best_levels": row["levels"],
            "time_median_s": row["time_median_s"],
            "imbalance": row["imbalance"],
            "max_startups": row["max_startups"],
        }
        for (workload, n_per_pe, p), row in sorted(
            best.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        )
    ]
    return {"rows": rows, "best": best_rows}


def _aggregate_slowdown(pairs) -> Dict[str, List[Dict[str, object]]]:
    per_algo: Dict[tuple, Dict[str, object]] = {}
    for group, members in _grouped(pairs).items():
        row = _median_row(members)
        key = (group.workload, group.n_per_pe, group.p, group.algorithm)
        if key not in per_algo or row["time_median_s"] < per_algo[key]["time_median_s"]:
            per_algo[key] = row
    rows = []
    seen = set()
    for (workload, n_per_pe, p, _), _row in sorted(per_algo.items()):
        point = (workload, n_per_pe, p)
        if point in seen:
            continue
        seen.add(point)
        best_ams = per_algo.get((workload, n_per_pe, p, "ams"))
        best_rlm = per_algo.get((workload, n_per_pe, p, "rlm"))
        if best_ams is None or best_rlm is None:
            continue
        rows.append(
            {
                "workload": workload,
                "p": p,
                "n_per_pe": n_per_pe,
                "ams_levels": best_ams["levels"],
                "ams_time_s": best_ams["time_median_s"],
                "rlm_levels": best_rlm["levels"],
                "rlm_time_s": best_rlm["time_median_s"],
                "slowdown": slowdown_metric(
                    float(best_rlm["time_median_s"]), float(best_ams["time_median_s"])
                ),
            }
        )
    return {"rows": rows}


def _aggregate_overpartitioning(pairs) -> Dict[str, List[Dict[str, object]]]:
    fig10, fig11 = [], []
    for group, members in _grouped(pairs).items():
        row = _median_row(members)
        entry = {
            "workload": group.workload,
            "samples_per_pe": group.samples_per_pe,
            "b": group.overpartitioning,
            "a": group.oversampling,
            "imbalance": row["imbalance"],
            "time_median_s": row["time_median_s"],
        }
        if group.series == "fig11":
            entry["sampling_time_s"] = row.get("phase_splitter_selection", 0.0)
            fig11.append(entry)
        else:
            fig10.append(entry)
    return {"fig10": fig10, "fig11": fig11}


def _aggregate_variance(pairs) -> Dict[str, List[Dict[str, object]]]:
    rows = []
    for group, members in _grouped(pairs).items():
        times = [float(s["total_time_s"]) for _, s in members]
        stats = summarize_runs(times)
        rows.append(
            {
                "workload": group.workload,
                "p": group.p,
                "n_per_pe": group.n_per_pe,
                "levels": group.levels,
                "median_s": stats["median"],
                "min_s": stats["min"],
                "max_s": stats["max"],
                "relative_spread": stats["relative_spread"],
                "runs": stats["runs"],
            }
        )
    return {"rows": rows}


def _aggregate_comparison(pairs) -> Dict[str, List[Dict[str, object]]]:
    per_algo: Dict[tuple, Dict[str, object]] = {}
    order: List[tuple] = []
    for group, members in _grouped(pairs).items():
        row = _median_row(members)
        key = (group.workload, group.p, group.algorithm)
        if key not in per_algo:
            order.append(key)
            per_algo[key] = row
        elif row["time_median_s"] < per_algo[key]["time_median_s"]:
            per_algo[key] = row
    rows = []
    for workload, p, algorithm in order:
        row = per_algo[(workload, p, algorithm)]
        ams = per_algo.get((workload, p, "ams"))
        ams_time = float(ams["time_median_s"]) if ams else float("nan")
        rows.append(
            {
                "workload": workload,
                "p": p,
                "algorithm": algorithm,
                "levels": row["levels"],
                "time_s": row["time_median_s"],
                "slowdown_vs_ams": float(row["time_median_s"]) / ams_time,
                "max_startups": row["max_startups"],
            }
        )
    return {"rows": rows}


def _aggregate_level_table(pairs) -> Dict[str, List[Dict[str, object]]]:
    # The plan is workload-invariant, but one row set per workload is kept so
    # every experiment's rows share the campaign-wide workload column.
    rows = []
    for cell, summary in pairs:
        plans = {int(p): plan for p, plan in summary["plan_by_p"].items()}
        depth = cell.levels
        for level in range(depth):
            row: Dict[str, object] = {
                "workload": cell.workload,
                "k": depth,
                "level": level + 1,
            }
            for p in PAPER_P_VALUES:
                row[f"p={p}"] = plans[p][level] if level < len(plans[p]) else None
            rows.append(row)
    return {"rows": rows}


def _aggregate_faults(pairs) -> Dict[str, List[Dict[str, object]]]:
    groups = _grouped(pairs)
    clean: Dict[tuple, float] = {}
    for group, members in groups.items():
        if group.faults == "":
            times = [float(s["total_time_s"]) for _, s in members]
            clean[(group.workload, group.algorithm, group.p, group.n_per_pe)] = (
                float(summarize_runs(times)["median"])
            )
    rows = []
    for group, members in groups.items():
        times = [float(s["total_time_s"]) for _, s in members]
        stats = summarize_runs(times)
        fault_totals: Dict[str, float] = {}
        for _, summary in members:
            for key, value in (summary.get("faults") or {}).items():
                if isinstance(value, (int, float)):
                    fault_totals[key] = fault_totals.get(key, 0.0) + value
        base = clean.get((group.workload, group.algorithm, group.p, group.n_per_pe))
        # None (JSON null) when no healthy baseline exists — never NaN,
        # which would break golden-trace equality (NaN != NaN).
        slowdown = float(stats["median"]) / base if base else None
        rows.append(
            {
                "workload": group.workload,
                "algorithm": group.algorithm,
                "p": group.p,
                "n_per_pe": group.n_per_pe,
                "levels": group.levels,
                "faults": group.faults,
                "time_median_s": float(stats["median"]),
                "slowdown_vs_clean": slowdown,
                "imbalance": max(float(s["imbalance"]) for _, s in members),
                "dropped_rounds": int(fault_totals.get("dropped_rounds", 0)),
                "resent_words": int(fault_totals.get("resent_words", 0)),
                "degraded_rounds": int(fault_totals.get("degraded_rounds", 0)),
                "hiccup_events": int(fault_totals.get("hiccup_events", 0)),
                "timeout_wait_s": float(fault_totals.get("timeout_wait_s", 0.0)),
                "recovery_s": float(fault_totals.get("recovery_s", 0.0)),
                "straggle_s": float(fault_totals.get("straggle_s", 0.0)),
            }
        )
    return {"rows": rows}


_AGGREGATORS = {
    "weak_scaling": _aggregate_weak_scaling,
    "slowdown": _aggregate_slowdown,
    "overpartitioning": _aggregate_overpartitioning,
    "variance": _aggregate_variance,
    "comparison": _aggregate_comparison,
    "level_table": _aggregate_level_table,
    "faults": _aggregate_faults,
}


def aggregate_cells(
    cells: Sequence[CampaignCell], summaries: Mapping[str, Mapping[str, object]]
) -> Dict[str, Dict[str, List[Dict[str, object]]]]:
    """Reduce cell summaries to per-experiment row tables (paper order).

    Cells without a summary (quarantined after repeated execution-layer
    failures) are skipped: a broken host must cost rows, never the whole
    campaign.
    """
    out: Dict[str, Dict[str, List[Dict[str, object]]]] = {}
    for experiment in CAMPAIGN_EXPERIMENTS:
        pairs = []
        for cell in cells:
            if cell.experiment != experiment:
                continue
            summary = summaries.get(cell_key(cell))
            if summary is not None:
                pairs.append((cell, dict(summary)))
        if pairs:
            out[experiment] = _AGGREGATORS[experiment](pairs)
    return out


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
def _resolve_profile(
    profile: "str | Mapping[str, object] | None",
) -> Tuple[str, Dict[str, object]]:
    if profile is None or isinstance(profile, str):
        name = profile if profile is not None else os.environ.get("REPRO_SCALE", "quick")
        return name, scale_profile(name)
    return str(profile.get("name", "custom")), dict(profile)


def run_campaign(
    profile: "str | Mapping[str, object] | None" = None,
    experiments: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_dir: "Path | str | None" = None,
    resume: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    fault_specs: Optional[Sequence[str]] = None,
    retries: int = 2,
    strict: bool = False,
    cell_timeout_s: Optional[float] = None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Expand, execute (sharded if ``jobs > 1``) and aggregate a campaign.

    Returns ``(summary, stats)``.  The summary contains only deterministic
    content (cell specs in, rows out) — no wall-clock times, worker counts or
    cache statistics — so two runs of the same campaign serialize to
    byte-identical JSON regardless of ``jobs`` and of how much came from the
    cache.  The stats dict carries the run-dependent part: cells executed vs
    served from cache, plus the recovery accounting of
    :func:`execute_cells` (retries, quarantines, corrupt cache entries).
    ``fault_specs`` overrides the fault-spec ladder of the ``"faults"``
    experiment (the healthy ``""`` baseline is always included).
    ``cell_timeout_s`` defaults to the profile's ``cell_timeout_s`` entry
    (set for the beyond tier, whose single rows can run for minutes).
    """
    name, prof = _resolve_profile(profile)
    if fault_specs is not None:
        prof["fault_specs"] = tuple(fault_specs)
    if cell_timeout_s is None:
        raw_timeout = prof.get("cell_timeout_s")
        cell_timeout_s = float(raw_timeout) if raw_timeout else None
    cells = expand_campaign(prof, experiments=experiments, workloads=workloads)
    cache = CellCache(cache_dir) if cache_dir is not None else None
    summaries, stats = execute_cells(
        cells, jobs=jobs, cache=cache, resume=resume, progress=progress,
        retries=retries, strict=strict, cell_timeout_s=cell_timeout_s,
    )
    used_experiments = tuple(dict.fromkeys(c.experiment for c in cells))
    used_workloads = tuple(dict.fromkeys(c.workload for c in cells))
    summary = {
        "meta": {
            "campaign": "conf_spaa_AxtmannBS015",
            "profile": name,
            "rng_version": RNG_VERSION,
            "experiments": list(used_experiments),
            "workloads": list(used_workloads),
            "cells": len(cells),
        },
        "experiments": aggregate_cells(cells, summaries),
    }
    return summary, stats


def campaign_to_json(summary: Mapping[str, object]) -> str:
    """Canonical JSON serialization (sorted keys, trailing newline)."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


_SECTION_TITLES = {
    "weak_scaling": "Table 2 / Figure 8 — AMS-sort weak scaling",
    "slowdown": "Figure 7 — slowdown of RLM-sort vs AMS-sort",
    "overpartitioning": "Figures 10/11 — oversampling and overpartitioning",
    "variance": "Figure 12 — distribution of modelled wall-times",
    "comparison": "Section 7.3 — AMS-sort vs single-level baselines",
    "level_table": "Table 1 — group counts r per level",
    "faults": "Fault degradation — slowdown and recovery cost vs fault rate",
}


def format_campaign(summary: Mapping[str, object]) -> str:
    """Render the campaign summary as the familiar experiment text tables."""
    meta = summary["meta"]
    text = [
        f"Campaign: profile={meta['profile']}  cells={meta['cells']}  "
        f"workloads={','.join(meta['workloads'])}  rng={meta['rng_version']}"
    ]
    experiments = summary["experiments"]
    for experiment in CAMPAIGN_EXPERIMENTS:
        if experiment not in experiments:
            continue
        for section, rows in experiments[experiment].items():
            if not rows:
                continue
            title = _SECTION_TITLES[experiment]
            if section not in ("rows",):
                title += f" [{section}]"
            text.append(format_table(rows, title=title))
    return "\n\n".join(text)
