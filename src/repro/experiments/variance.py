"""Figure 12: distribution of wall-times over repeated runs.

The paper reports that the run-to-run fluctuation at large ``p`` is dominated
by the all-to-all exchange (network interference on the shared machine).
The simulator is deterministic for a fixed seed, so the reproduction varies
the input and the sampling seed across repetitions and reports the resulting
spread; the spread it observes comes from sampling noise (different splitter
quality per run), which is the algorithmic part of the fluctuation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import summarize_runs
from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner, RunConfig, scale_profile


def variance_rows(
    p_values: Sequence[int],
    n_per_pe_values: Sequence[int],
    level_counts: Sequence[int] = (1, 2, 3),
    repetitions: int = 5,
    node_size: int = 4,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (p, n/p, levels) with the distribution of modelled times."""
    runner = runner or ExperimentRunner()
    rows: List[Dict[str, object]] = []
    for n_per_pe in n_per_pe_values:
        for p in p_values:
            for levels in level_counts:
                if levels > 1 and p <= node_size:
                    continue
                cfg = RunConfig(
                    algorithm="ams",
                    p=p,
                    n_per_pe=n_per_pe,
                    levels=levels,
                    node_size=node_size,
                    repetitions=repetitions,
                    workload=workload,
                )
                times = [
                    runner.run_once(cfg, rep).total_time for rep in range(repetitions)
                ]
                stats = summarize_runs(times)
                rows.append(
                    {
                        "p": p,
                        "n_per_pe": n_per_pe,
                        "levels": levels,
                        "workload": workload,
                        "median_s": stats["median"],
                        "min_s": stats["min"],
                        "max_s": stats["max"],
                        "relative_spread": stats["relative_spread"],
                        "runs": stats["runs"],
                    }
                )
    return rows


def run(
    scale: Optional[str] = None, repetitions: int = 5, workload: str = "uniform"
) -> str:
    """Run the scaled Figure 12 experiment and return the formatted table."""
    profile = scale_profile(scale)
    rows = variance_rows(
        p_values=profile["p_values"][:2],
        n_per_pe_values=profile["n_per_pe_values"][:2],
        repetitions=repetitions,
        node_size=int(profile["node_size"]),
        workload=workload,
    )
    return format_table(
        rows,
        title="Figure 12 (scaled) — distribution of AMS-sort modelled wall-times over repetitions",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
