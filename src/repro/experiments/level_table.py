"""Table 1: selection of the group count ``r`` per level for weak scaling."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.config import level_plan


#: The r-values listed in Table 1 of the paper (levels are 1-indexed).
PAPER_TABLE1: Dict[int, Dict[int, List[int]]] = {
    1: {512: [16], 2048: [16], 8192: [16], 32768: [16]},
    2: {512: [32, 16], 2048: [128, 16], 8192: [512, 16], 32768: [2048, 16]},
    3: {512: [8, 4, 16], 2048: [16, 8, 16], 8192: [32, 16, 16], 32768: [64, 32, 16]},
}


def level_table_rows(
    p_values: Sequence[int] = (512, 2048, 8192, 32768),
    level_counts: Sequence[int] = (1, 2, 3),
    node_size: int = 16,
) -> List[Dict[str, object]]:
    """Rows comparing our :func:`level_plan` with the paper's Table 1."""
    rows: List[Dict[str, object]] = []
    for k in level_counts:
        for level in range(k):
            row: Dict[str, object] = {"k": k, "level": level + 1}
            for p in p_values:
                ours = level_plan(p, k, node_size=node_size)
                row[f"p={p}"] = ours[level]
                paper = PAPER_TABLE1.get(k, {}).get(p)
                if paper is not None and level < len(paper):
                    row[f"paper p={p}"] = paper[level]
            rows.append(row)
    return rows


def run(
    p_values: Optional[Sequence[int]] = None,
    node_size: int = 16,
    workload: Optional[str] = None,
) -> str:
    """Produce the Table 1 comparison as formatted text.

    ``workload`` is accepted for CLI uniformity with the other experiments
    but has no effect: the level plan depends only on the machine shape.
    """
    if p_values is None:
        p_values = (512, 2048, 8192, 32768)
    rows = level_table_rows(p_values=p_values, node_size=node_size)
    note = (
        "Table 1 — group counts r per level (ours vs. paper).\n"
        "Note: the paper's k=1 row lists the node size (16); a single-level\n"
        "algorithm must split into r=p groups to finish in one level, which\n"
        "is what level_plan() returns for k=1.\n"
    )
    return note + format_table(rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
