"""Figures 10 and 11 (Appendix E): the effect of oversampling and overpartitioning.

The paper fixes ``p = 512`` MPI processes with ``n/p = 1e5`` elements each and
sweeps the number of samples per process ``a * b``:

* Figure 10 plots the **maximum imbalance** among the groups of the sorted
  output for ``b`` in {1, 8, 16} — overpartitioning (``b > 1``) reduces the
  imbalance dramatically for a given sample size,
* Figure 11 plots the **wall-time** (total and the splitter-selection phase
  alone) for oversampling factors ``a`` in {1, 8, 16} — more samples first
  help (better balance) and eventually hurt (sample sorting dominates).

The scaled reproduction sweeps the same parameters on a smaller machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner, RunConfig, scale_profile
from repro.machine.counters import PHASE_SPLITTER_SELECTION


def imbalance_sweep_rows(
    p: int,
    n_per_pe: int,
    b_values: Sequence[int] = (1, 8, 16),
    samples_per_pe_values: Sequence[int] = (4, 16, 64, 256, 1024),
    levels: int = 1,
    node_size: int = 4,
    repetitions: int = 2,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Figure 10: maximum output imbalance vs samples per PE for several ``b``."""
    runner = runner or ExperimentRunner()
    rows: List[Dict[str, object]] = []
    for b in b_values:
        for ab in samples_per_pe_values:
            a = max(ab / b, 0.25)
            cfg = RunConfig(
                algorithm="ams",
                p=p,
                n_per_pe=n_per_pe,
                levels=levels,
                node_size=node_size,
                repetitions=repetitions,
                overpartitioning=int(b),
                oversampling=float(a),
                workload=workload,
            )
            row = runner.run(cfg)
            rows.append(
                {
                    "samples_per_pe": ab,
                    "b": b,
                    "a": a,
                    "workload": workload,
                    "imbalance": row["imbalance"],
                    "time_median_s": row["time_median_s"],
                }
            )
    return rows


def walltime_sweep_rows(
    p: int,
    n_per_pe: int,
    a_values: Sequence[float] = (1.0, 8.0, 16.0),
    samples_per_pe_values: Sequence[int] = (4, 16, 64, 256, 1024),
    levels: int = 1,
    node_size: int = 4,
    repetitions: int = 2,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Figure 11: total wall-time and splitter-selection time vs samples per PE."""
    runner = runner or ExperimentRunner()
    rows: List[Dict[str, object]] = []
    for a in a_values:
        for ab in samples_per_pe_values:
            b = max(1, int(round(ab / a)))
            cfg = RunConfig(
                algorithm="ams",
                p=p,
                n_per_pe=n_per_pe,
                levels=levels,
                node_size=node_size,
                repetitions=repetitions,
                overpartitioning=b,
                oversampling=float(a),
                workload=workload,
            )
            row = runner.run(cfg)
            rows.append(
                {
                    "samples_per_pe": ab,
                    "a": a,
                    "b": b,
                    "workload": workload,
                    "total_time_s": row["time_median_s"],
                    "sampling_time_s": row.get(f"phase_{PHASE_SPLITTER_SELECTION}", 0.0),
                    "imbalance": row["imbalance"],
                }
            )
    return rows


def run(scale: Optional[str] = None, workload: str = "uniform") -> str:
    """Run the scaled Figures 10/11 sweeps and return formatted tables."""
    profile = scale_profile(scale)
    p = int(profile["p_values"][0])
    n_per_pe = int(profile["n_per_pe_values"][min(1, len(profile["n_per_pe_values"]) - 1)])
    node_size = int(profile["node_size"])
    text = []
    text.append(format_table(
        imbalance_sweep_rows(p, n_per_pe, node_size=node_size, workload=workload),
        title=(
            f"Figure 10 (scaled, p={p}, n/p={n_per_pe}) — maximum imbalance vs "
            "samples per PE (overpartitioning b reduces imbalance)"
        ),
    ))
    text.append(format_table(
        walltime_sweep_rows(p, n_per_pe, node_size=node_size, workload=workload),
        title=(
            f"Figure 11 (scaled, p={p}, n/p={n_per_pe}) — wall-time and "
            "splitter-selection time vs samples per PE"
        ),
    ))
    return "\n".join(text)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
