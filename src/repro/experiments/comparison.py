"""Section 7.3: comparison with single-level codes (MP-sort and friends).

The paper compares AMS-sort against

* MP-sort [12], a single-level multiway mergesort that re-sorts received
  data from scratch — reported to be two to three orders of magnitude slower
  for small ``n/p`` at large ``p``,
* Solomonik & Kale's single-level hybrid, and
* Baidu-Sort / TritonSort (centralized splitter sample sort).

We reproduce the structural comparison: multi-level AMS-sort vs our
re-implemented single-level baselines (``mergesort`` = MP-sort style,
``samplesort`` = centralized sample sort, ``quicksort`` = log-p-passes
quicksort) on the same simulated machine.  The headline effect — the
single-level codes lose ground as ``p`` grows and ``n/p`` shrinks because
their startup count grows like ``p`` (or their volume like ``log p``) — is
what the benchmark checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner, RunConfig, scale_profile


BASELINES = ("mergesort", "samplesort", "quicksort")


def comparison_rows(
    p_values: Sequence[int],
    n_per_pe: int,
    ams_levels: Sequence[int] = (1, 2, 3),
    baselines: Sequence[str] = BASELINES,
    node_size: int = 4,
    repetitions: int = 2,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (p, algorithm) with time and the slowdown relative to AMS."""
    runner = runner or ExperimentRunner()
    rows: List[Dict[str, object]] = []
    for p in p_values:
        candidates = [k for k in ams_levels if k == 1 or p > node_size]
        ams_cfg = RunConfig(
            algorithm="ams", p=p, n_per_pe=n_per_pe, node_size=node_size,
            repetitions=repetitions, workload=workload,
        )
        best_ams = runner.best_level_time(ams_cfg, candidates)
        ams_time = float(best_ams["time_median_s"])
        rows.append(
            {
                "p": p,
                "algorithm": "ams",
                "workload": workload,
                "levels": best_ams["levels"],
                "time_s": ams_time,
                "slowdown_vs_ams": 1.0,
                "max_startups": best_ams["max_startups"],
            }
        )
        for baseline in baselines:
            cfg = RunConfig(
                algorithm=baseline, p=p, n_per_pe=n_per_pe, node_size=node_size,
                repetitions=repetitions, levels=1, workload=workload,
            )
            row = runner.run(cfg)
            rows.append(
                {
                    "p": p,
                    "algorithm": baseline,
                    "workload": workload,
                    "levels": 1,
                    "time_s": row["time_median_s"],
                    "slowdown_vs_ams": float(row["time_median_s"]) / ams_time,
                    "max_startups": row["max_startups"],
                }
            )
    return rows


def run(scale: Optional[str] = None, workload: str = "uniform") -> str:
    """Run the scaled Section 7.3 comparison and return the formatted table."""
    profile = scale_profile(scale)
    rows = comparison_rows(
        p_values=profile["p_values"],
        n_per_pe=int(profile["n_per_pe_values"][0]),
        node_size=int(profile["node_size"]),
        workload=workload,
    )
    return format_table(
        rows,
        title=(
            "Section 7.3 (scaled) — AMS-sort vs single-level baselines "
            "(MP-sort style mergesort, centralized sample sort, parallel quicksort) "
            "at small n/p; the single-level slowdown grows with p"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
