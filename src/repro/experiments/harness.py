"""Shared experiment infrastructure: configurations, repetitions, medians."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import summarize_runs
from repro.core.config import AMSConfig, RLMConfig
from repro.core.runner import SortResult, run_on_machine
from repro.machine.spec import MachineSpec, supermuc_like
from repro.sim.machine import SimulatedMachine
from repro.workloads.generators import per_pe_workload


#: Scaled-down stand-ins for the paper's configurations.  The paper runs
#: p in {512, 2048, 8192, 32768} with n/p in {1e5, 1e6, 1e7}; a pure-Python
#: simulation must shrink both, keeping the *ratios* (per-PE work vs startup
#: cost) in a regime where the paper's qualitative effects are visible.
SCALE_PROFILES: Dict[str, Dict[str, object]] = {
    "tiny": {
        # Golden-trace profile: small enough that a full campaign runs in
        # seconds inside the tier-1 test-suite, large enough that every
        # experiment produces non-degenerate rows (p > node_size so multi-level
        # plans exist).
        "p_values": (8, 16),
        "n_per_pe_values": (60, 240),
        "repetitions": 2,
        "node_size": 4,
    },
    "quick": {
        "p_values": (16, 64, 256),
        "n_per_pe_values": (200, 2000, 20000),
        "repetitions": 3,
        "node_size": 4,
    },
    "medium": {
        "p_values": (64, 256, 1024),
        "n_per_pe_values": (500, 5000, 50000),
        "repetitions": 3,
        "node_size": 8,
    },
    "large": {
        "p_values": (512, 2048, 8192),
        "n_per_pe_values": (1000, 10000, 100000),
        "repetitions": 3,
        "node_size": 16,
    },
    "paper": {
        # The paper's machine sizes (Table 2 / Figs. 7-12).  Only the flat
        # engine can simulate these; the per-PE reference is infeasible past
        # ~1024 PEs, so campaign cells above `reference_max_p` are pinned by a
        # seeded-determinism re-run (like bench_engine_scaling) instead of a
        # cross-engine comparison, and skip output validation above
        # `validate_max_p`.  n/p is scaled down (the paper's 1e5..1e7 does not
        # fit a pure-Python simulation); the level policy follows Table 1:
        # three levels at p = 2^15, two below.
        "p_values": (512, 2048, 8192, 32768),
        "n_per_pe_values": (1000,),
        "repetitions": 1,
        "node_size": 16,
        "engine": "flat",
        "level_counts": "paper",
        "experiments": ("weak_scaling",),
        "workloads": ("uniform",),
        "validate_max_p": 1024,
        "reference_max_p": 1024,
    },
    "beyond": {
        # Past the paper (its largest machine is p = 2^15): "million-PE"
        # extrapolation rows, flat engine only, three levels each (the
        # "paper" level policy).  n/p is shrunk further so the p = 2^20
        # row's element count (2.7e8) stays simulable; every cell is above
        # `reference_max_p`, so the campaign pins it with a seeded
        # determinism re-run instead of a cross-engine comparison.  The
        # workspace arena bounds the per-level temporaries — see the README
        # "Memory & the beyond-paper tier" section.
        "p_values": (131072, 1048576),
        "n_per_pe_values": (256,),
        "repetitions": 1,
        "node_size": 16,
        "engine": "flat",
        "level_counts": "paper",
        "experiments": ("weak_scaling",),
        "workloads": ("uniform",),
        "validate_max_p": 1024,
        "reference_max_p": 1024,
        # Beyond-tier rows are single multi-minute simulations; a wedged
        # one (host swap death spiral) must fail the cell, not the run.
        # Generous: the p = 2^20 row takes ~2-3 minutes on one core.
        "cell_timeout_s": 1800.0,
    },
}

#: The configurations of the paper, for side-by-side reporting.
PAPER_P_VALUES = (512, 2048, 8192, 32768)
PAPER_N_PER_PE = (10**5, 10**6, 10**7)

#: Table 2 of the paper: median wall-times (seconds) of AMS-sort.
PAPER_TABLE2_SECONDS: Dict[int, Dict[int, float]] = {
    10**5: {512: 0.0228, 2048: 0.0277, 8192: 0.0359, 32768: 0.0707},
    10**6: {512: 0.2212, 2048: 0.2589, 8192: 0.2687, 32768: 0.9171},
    10**7: {512: 2.6523, 2048: 2.9797, 8192: 4.0625, 32768: 6.0932},
}


def scale_profile(name: Optional[str] = None) -> Dict[str, object]:
    """Return the scale profile selected by ``name`` or ``$REPRO_SCALE``."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "quick")
    name = name.lower()
    if name not in SCALE_PROFILES:
        known = ", ".join(sorted(SCALE_PROFILES))
        raise KeyError(f"unknown scale profile {name!r}; known: {known}")
    return dict(SCALE_PROFILES[name])


@dataclass(frozen=True)
class RunConfig:
    """One experiment configuration (algorithm + machine + workload)."""

    algorithm: str = "ams"
    p: int = 64
    n_per_pe: int = 1000
    levels: int = 2
    workload: str = "uniform"
    node_size: int = 4
    delivery: str = "deterministic"
    repetitions: int = 3
    seed: int = 0
    spec: Optional[MachineSpec] = None
    overpartitioning: Optional[int] = None
    oversampling: Optional[float] = None
    validate: bool = True
    engine: str = "flat"
    #: Fault-injection spec string (see :mod:`repro.sim.faults`); empty = healthy.
    faults: str = ""

    def label(self) -> str:
        """Short human readable identifier."""
        base = (
            f"{self.algorithm}-k{self.levels}-p{self.p}-n{self.n_per_pe}"
            f"-{self.workload}"
        )
        return f"{base}-faults[{self.faults}]" if self.faults else base


def build_algo_config(
    algorithm: str,
    p: int,
    n_per_pe: int,
    levels: int,
    node_size: int,
    delivery: str = "deterministic",
    overpartitioning: Optional[int] = None,
    oversampling: Optional[float] = None,
):
    """Algorithm config for one run (shared by the harness and campaign cells).

    Baselines take no config (``None``); AMS-sort optionally gets explicit
    sampling parameters when the experiment sweeps them.
    """
    if algorithm == "ams":
        sampling = None
        if overpartitioning is not None or oversampling is not None:
            from repro.blocks.sampling import SamplingParams, default_oversampling

            sampling = SamplingParams(
                oversampling=(
                    oversampling
                    if oversampling is not None
                    else default_oversampling(p * n_per_pe)
                ),
                overpartitioning=(
                    overpartitioning if overpartitioning is not None else 16
                ),
                per_pe=True,
            )
        return AMSConfig(
            levels=levels, node_size=node_size, delivery=delivery, sampling=sampling
        )
    if algorithm == "rlm":
        return RLMConfig(levels=levels, node_size=node_size, delivery=delivery)
    return None


class ExperimentRunner:
    """Runs :class:`RunConfig` objects, repeating and aggregating results."""

    def __init__(self, spec: Optional[MachineSpec] = None, verbose: bool = False):
        self.spec = spec if spec is not None else supermuc_like()
        self.verbose = verbose

    # ------------------------------------------------------------------
    def _build_config(self, cfg: RunConfig):
        return build_algo_config(
            cfg.algorithm,
            p=cfg.p,
            n_per_pe=cfg.n_per_pe,
            levels=cfg.levels,
            node_size=cfg.node_size,
            delivery=cfg.delivery,
            overpartitioning=cfg.overpartitioning,
            oversampling=cfg.oversampling,
        )

    def run_once(self, cfg: RunConfig, repetition: int = 0) -> SortResult:
        """Run one repetition of a configuration and return its result."""
        spec = cfg.spec if cfg.spec is not None else self.spec
        machine = SimulatedMachine(
            cfg.p, spec=spec, seed=cfg.seed + repetition,
            faults=cfg.faults or None,
        )
        local_data = per_pe_workload(
            cfg.workload, cfg.p, cfg.n_per_pe, seed=cfg.seed + 1000 * repetition
        )
        algo_config = self._build_config(cfg)
        result = run_on_machine(
            machine,
            local_data,
            algorithm=cfg.algorithm,
            config=algo_config,
            validate=cfg.validate,
            engine=cfg.engine,
        )
        result.params.update(
            {
                "workload": cfg.workload,
                "repetition": repetition,
                "levels": cfg.levels,
            }
        )
        if self.verbose:  # pragma: no cover - logging only
            print(f"  {cfg.label()} rep {repetition}: {result.total_time:.6f} s")
        return result

    def run(self, cfg: RunConfig) -> Dict[str, object]:
        """Run all repetitions of a configuration and aggregate the outcome.

        Returns a flat result row: median/min/max modelled time, per-phase
        medians, output imbalance and traffic statistics.
        """
        results = [self.run_once(cfg, rep) for rep in range(max(1, cfg.repetitions))]
        times = [r.total_time for r in results]
        stats = summarize_runs(times)
        median_idx = int(np.argsort(times)[len(times) // 2])
        representative = results[median_idx]
        row: Dict[str, object] = {
            "algorithm": cfg.algorithm,
            "levels": cfg.levels,
            "p": cfg.p,
            "n_per_pe": cfg.n_per_pe,
            "workload": cfg.workload,
            "time_median_s": stats["median"],
            "time_min_s": stats["min"],
            "time_max_s": stats["max"],
            "imbalance": representative.imbalance,
            "max_startups": representative.traffic["max_startups_per_pe"],
            "max_words": representative.traffic["max_words_per_pe"],
        }
        for phase, value in representative.phase_times.items():
            row[f"phase_{phase}"] = value
        return row

    def run_grid(self, configs: Sequence[RunConfig]) -> List[Dict[str, object]]:
        """Run a list of configurations, returning one row per configuration."""
        return [self.run(cfg) for cfg in configs]

    # ------------------------------------------------------------------
    def best_level_time(
        self, cfg: RunConfig, level_candidates: Sequence[int]
    ) -> Dict[str, object]:
        """Run a configuration for several level counts and keep the fastest.

        The paper's Table 2 / Figure 7 report, for every ``(p, n/p)``, the
        best choice among 1-3 levels.
        """
        best_row: Optional[Dict[str, object]] = None
        for levels in level_candidates:
            if levels < 1:
                continue
            row = self.run(replace(cfg, levels=levels))
            if best_row is None or row["time_median_s"] < best_row["time_median_s"]:
                best_row = row
        assert best_row is not None
        return best_row
