"""Experiment harness reproducing the paper's evaluation (Section 7, Appendix E).

Every module corresponds to one table or figure:

* :mod:`repro.experiments.level_table` — Table 1 (group counts per level),
* :mod:`repro.experiments.weak_scaling` — Table 2 and Figure 8 (weak scaling
  wall-times and phase breakdown of AMS-sort with 1-3 levels),
* :mod:`repro.experiments.slowdown` — Figure 7 (RLM-sort vs AMS-sort),
* :mod:`repro.experiments.overpartitioning` — Figures 10 and 11 (effect of
  the oversampling / overpartitioning factors),
* :mod:`repro.experiments.variance` — Figure 12 (distribution of wall-times),
* :mod:`repro.experiments.comparison` — Section 7.3 (single-level baselines),
* :mod:`repro.experiments.faults` — degradation under injected faults
  (stragglers, dropped/degraded exchange rounds; extends the Figure 12
  robustness story beyond healthy machines).

The paper's machine (up to 32768 MPI ranks with up to ``10^7`` elements
each) does not fit into a pure-Python simulation, so every experiment runs a
*scaled* configuration by default and prints both the configuration it ran
and, where applicable, the paper's reference numbers next to the measured
ones.  The scale is controlled by the ``REPRO_SCALE`` environment variable
(``quick`` [default], ``medium``, ``large``) or by passing explicit
parameters to the experiment functions.
"""

from repro.experiments.harness import (
    ExperimentRunner,
    RunConfig,
    scale_profile,
    SCALE_PROFILES,
)
from repro.experiments import (
    campaign,
    faults,
    level_table,
    weak_scaling,
    slowdown,
    overpartitioning,
    variance,
    comparison,
)

__all__ = [
    "ExperimentRunner",
    "RunConfig",
    "scale_profile",
    "SCALE_PROFILES",
    "campaign",
    "faults",
    "level_table",
    "weak_scaling",
    "slowdown",
    "overpartitioning",
    "variance",
    "comparison",
]
