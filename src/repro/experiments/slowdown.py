"""Figure 7: slowdown of RLM-sort compared to AMS-sort.

For every ``(p, n/p)`` the paper picks, for each algorithm, the level count
with the best wall-time and plots ``T_RLM / T_AMS``.  The slowdown is larger
than one almost everywhere and grows for small ``n/p`` and large ``p``,
matching the ``log^2 p`` gap between the isoefficiency functions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import slowdown as slowdown_metric
from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner, RunConfig, scale_profile


def slowdown_rows(
    p_values: Sequence[int],
    n_per_pe_values: Sequence[int],
    level_counts: Sequence[int] = (1, 2, 3),
    repetitions: int = 3,
    node_size: int = 4,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (p, n/p): best AMS time, best RLM time and the slowdown."""
    runner = runner or ExperimentRunner()
    rows: List[Dict[str, object]] = []
    for n_per_pe in n_per_pe_values:
        for p in p_values:
            candidates = [k for k in level_counts if k == 1 or p > node_size]
            ams_cfg = RunConfig(
                algorithm="ams", p=p, n_per_pe=n_per_pe, node_size=node_size,
                repetitions=repetitions, workload=workload,
            )
            rlm_cfg = RunConfig(
                algorithm="rlm", p=p, n_per_pe=n_per_pe, node_size=node_size,
                repetitions=repetitions, workload=workload,
            )
            best_ams = runner.best_level_time(ams_cfg, candidates)
            best_rlm = runner.best_level_time(rlm_cfg, candidates)
            rows.append(
                {
                    "p": p,
                    "n_per_pe": n_per_pe,
                    "workload": workload,
                    "ams_levels": best_ams["levels"],
                    "ams_time_s": best_ams["time_median_s"],
                    "rlm_levels": best_rlm["levels"],
                    "rlm_time_s": best_rlm["time_median_s"],
                    "slowdown": slowdown_metric(
                        float(best_rlm["time_median_s"]), float(best_ams["time_median_s"])
                    ),
                }
            )
    return rows


def run(
    scale: Optional[str] = None,
    repetitions: Optional[int] = None,
    workload: str = "uniform",
) -> str:
    """Run the scaled Figure 7 experiment and return the formatted series."""
    profile = scale_profile(scale)
    reps = repetitions if repetitions is not None else int(profile["repetitions"])
    rows = slowdown_rows(
        p_values=profile["p_values"],
        n_per_pe_values=profile["n_per_pe_values"],
        repetitions=reps,
        node_size=int(profile["node_size"]),
        workload=workload,
    )
    return format_table(
        rows,
        title=(
            "Figure 7 (scaled) — slowdown of RLM-sort vs AMS-sort "
            "(best level choice for each; paper observes slowdowns of ~1-4, "
            "growing for small n/p and large p)"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
