"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.cli table1
    python -m repro.experiments.cli table2 --scale quick
    python -m repro.experiments.cli fig7 fig8 fig10 fig11 fig12 sec73
    python -m repro.experiments.cli all --scale medium
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    comparison,
    level_table,
    overpartitioning,
    slowdown,
    variance,
    weak_scaling,
)


EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "table1": lambda scale=None: level_table.run(),
    "table2": lambda scale=None: weak_scaling.run(scale=scale),
    "fig7": lambda scale=None: slowdown.run(scale=scale),
    "fig8": lambda scale=None: weak_scaling.run(scale=scale),
    "fig10": lambda scale=None: overpartitioning.run(scale=scale),
    "fig11": lambda scale=None: overpartitioning.run(scale=scale),
    "fig12": lambda scale=None: variance.run(scale=scale),
    "sec73": lambda scale=None: comparison.run(scale=scale),
}


def main(argv: List[str] | None = None) -> int:
    """Run the named experiments and print their formatted output."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the evaluation of 'Practical Massively Parallel Sorting'.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["quick", "medium", "large"],
        help="scale profile (default: $REPRO_SCALE or 'quick')",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if "all" in names:
        names = sorted(EXPERIMENTS)
    seen = set()
    ordered = [n for n in names if not (n in seen or seen.add(n))]

    for name in ordered:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; known: {', '.join(sorted(EXPERIMENTS))}")
        print(f"=== {name} ===")
        print(EXPERIMENTS[name](scale=args.scale))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
