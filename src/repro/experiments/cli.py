"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.cli table1
    python -m repro.experiments.cli table2 --scale quick --workload zipf
    python -m repro.experiments.cli fig7 fig8 fig10 fig11 fig12 sec73
    python -m repro.experiments.cli all --scale medium

    # Sharded campaign: expand every experiment into cells, fan them over
    # worker processes, cache cell summaries on disk, aggregate the rows.
    python -m repro.experiments.cli campaign --profile quick --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List

from repro.experiments import (
    campaign as campaign_mod,
    comparison,
    faults as faults_mod,
    level_table,
    overpartitioning,
    slowdown,
    variance,
    weak_scaling,
)
from repro.experiments.harness import SCALE_PROFILES
from repro.workloads.generators import WORKLOADS


EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "table1": lambda scale=None, workload="uniform": level_table.run(workload=workload),
    "table2": lambda scale=None, workload="uniform": weak_scaling.run(scale=scale, workload=workload),
    "fig7": lambda scale=None, workload="uniform": slowdown.run(scale=scale, workload=workload),
    "fig8": lambda scale=None, workload="uniform": weak_scaling.run(scale=scale, workload=workload),
    "fig10": lambda scale=None, workload="uniform": overpartitioning.run(scale=scale, workload=workload),
    "fig11": lambda scale=None, workload="uniform": overpartitioning.run(scale=scale, workload=workload),
    "fig12": lambda scale=None, workload="uniform": variance.run(scale=scale, workload=workload),
    "sec73": lambda scale=None, workload="uniform": comparison.run(scale=scale, workload=workload),
    "faults": lambda scale=None, workload="uniform", **kw: faults_mod.run(
        scale=scale, workload=workload, **kw
    ),
}


def campaign_main(argv: List[str] | None = None) -> int:
    """Run a sharded experiment campaign (``cli campaign ...``)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments campaign",
        description=(
            "Expand the experiments into (machine, algorithm, config, workload, "
            "repetition) cells, execute them sharded over worker processes with "
            "an on-disk resume cache, and aggregate the paper's tables/figures."
        ),
    )
    parser.add_argument(
        "--profile", default=None, choices=sorted(SCALE_PROFILES),
        help="scale profile (default: $REPRO_SCALE or 'quick'); "
             "'paper' reaches p=32768 on the flat engine",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial; sharded output is byte-identical)",
    )
    parser.add_argument(
        "--experiments", nargs="+", default=None,
        choices=sorted(campaign_mod.CAMPAIGN_EXPERIMENTS),
        help="subset of experiments (default: all, or the profile's own list)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None, choices=sorted(WORKLOADS),
        help="workload axis; the first named workload gets the full grid "
             "(default: uniform zipf nearly_sorted duplicates staggered)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend for every cell ('numpy', 'sharedmem', "
             "'sharedmem:N'); exported as REPRO_BACKEND so worker processes "
             "inherit it.  Backends are byte-identical, so cached cell "
             "summaries stay valid across backends",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cell summary cache directory (default: .campaign-cache/<profile>)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="run without any on-disk cache (no resume, nothing written)",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="ignore existing cached cells (they are overwritten as cells finish)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the aggregated campaign summary as canonical JSON",
    )
    parser.add_argument(
        "--require-cached", action="store_true",
        help="fail if any cell had to execute (CI re-run assertion)",
    )
    parser.add_argument(
        "--faults", nargs="+", default=None, metavar="SPEC",
        help="fault-spec ladder for the 'faults' experiment, e.g. "
             "'stragglers:0.1' 'droprate:0.01' (the healthy '' baseline is "
             "always included; see repro.sim.faults for the grammar)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="per-cell retry budget before quarantine (default: 2)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on the first cell error instead of retry/quarantine",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell (default: the profile's "
             "cell_timeout_s, set for the 'beyond' tier)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic chaos injection for the execution layer, e.g. "
             "'seed:7,kill:0.3,corrupt:0.2' (exported as REPRO_CHAOS; see "
             "repro.chaos for the grammar — results stay byte-identical)",
    )
    parser.add_argument(
        "--stats-output", type=Path, default=None,
        help="write the run stats (cache hits, retries, quarantines, "
             "recovery counters) as JSON — the non-deterministic sibling "
             "of --output",
    )
    parser.add_argument("--quiet", action="store_true", help="no per-cell progress")
    args = parser.parse_args(argv)

    if args.faults is not None:
        from repro.sim.faults import parse_fault_spec

        for spec in args.faults:
            parse_fault_spec(spec)  # fail fast on bad grammar

    if args.chaos is not None:
        import os

        from repro.chaos import parse_chaos_spec

        parse_chaos_spec(args.chaos)  # fail fast on bad grammar
        os.environ["REPRO_CHAOS"] = args.chaos  # workers + backend inherit

    if args.require_cached and (args.no_cache or args.no_resume):
        parser.error(
            "--require-cached cannot succeed with --no-cache/--no-resume: "
            "every cell would execute"
        )

    if args.backend is not None:
        import os

        from repro.dist.backend import install

        install(args.backend)  # validates the spec and switches this process
        os.environ["REPRO_BACKEND"] = args.backend  # worker processes inherit

    cache_dir = args.cache_dir
    if cache_dir is None and not args.no_cache:
        from repro.experiments.harness import scale_profile  # resolve default name
        import os

        name = args.profile or os.environ.get("REPRO_SCALE", "quick")
        scale_profile(name)  # validate early
        cache_dir = Path(".campaign-cache") / name

    progress = None if args.quiet else lambda msg: print(msg, file=sys.stderr, flush=True)
    summary, stats = campaign_mod.run_campaign(
        profile=args.profile,
        experiments=args.experiments,
        workloads=args.workloads,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir,
        resume=not args.no_resume,
        progress=progress,
        fault_specs=args.faults,
        retries=args.retries,
        strict=args.strict,
        cell_timeout_s=args.cell_timeout,
    )

    # Fold in the execution-infrastructure recovery counters so a chaos or
    # degraded run is visible in the stats artifact: chaos injections from
    # this process, and — for serial runs — the active backend's supervisor
    # counters (sharded campaigns execute cells in worker processes whose
    # backends die with them).
    from repro.chaos import get_chaos
    from repro.dist.backend import current_backend

    chaos = get_chaos()
    if chaos is not None:
        stats["chaos"] = dict(chaos.counters)
    backend_obj = current_backend()
    if hasattr(backend_obj, "supervisor_stats"):
        stats["backend_supervisor"] = backend_obj.supervisor_stats()
        stats["backend_effective"] = backend_obj.effective_name()

    print(campaign_mod.format_campaign(summary))
    print(
        f"\ncampaign stats: cells={stats['cells']} executed={stats['executed']} "
        f"cache_hits={stats['cache_hits']} "
        f"cache_corrupt={stats['cache_corrupt']} "
        f"retries={stats['cell_retries']} quarantined={stats['quarantined']}"
    )
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(campaign_mod.campaign_to_json(summary))
        print(f"wrote {args.output}")
    if args.stats_output is not None:
        import json

        args.stats_output.parent.mkdir(parents=True, exist_ok=True)
        args.stats_output.write_text(
            json.dumps(stats, indent=2, sort_keys=True, default=str) + "\n"
        )
        print(f"wrote {args.stats_output}")
    if stats["quarantined"]:
        print(
            f"warning: {stats['quarantined']} cells quarantined after "
            "repeated failures — their rows are missing from the summary",
            file=sys.stderr,
        )
    if args.require_cached and stats["executed"] > 0:
        print(
            f"FAIL: --require-cached but {stats['executed']} cells executed "
            "(cache miss)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: List[str] | None = None) -> int:
    """Run the named experiments (or a campaign) and print formatted output."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the evaluation of 'Practical Massively Parallel Sorting'.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(sorted(EXPERIMENTS))}), 'all', "
             "or 'campaign' (see 'campaign --help')",
    )
    parser.add_argument(
        "--scale",
        default=None,
        # The serial figure mode ignores the campaign-only profile keys
        # (flat-only engine, level policy, validation caps) that make the
        # 'paper' scale feasible — reaching p=32768 requires the campaign
        # subcommand.
        choices=sorted(n for n in SCALE_PROFILES if n != "paper"),
        help="scale profile (default: $REPRO_SCALE or 'quick'); "
             "the 'paper' scale is campaign-only",
    )
    parser.add_argument(
        "--workload",
        default="uniform",
        choices=sorted(WORKLOADS),
        help="input distribution fed to every experiment (default: uniform)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend ('numpy', 'sharedmem', 'sharedmem:N'); "
             "byte-identical, affects wall-clock only",
    )
    parser.add_argument(
        "--faults", nargs="+", default=None, metavar="SPEC",
        help="fault-spec ladder for the 'faults' experiment, e.g. "
             "'stragglers:0.1' 'droprate:0.01' (only valid when 'faults' is "
             "the sole selected experiment)",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.dist.backend import install

        install(args.backend)

    names = list(args.experiments)
    if "all" in names:
        names = sorted(EXPERIMENTS)
    seen = set()
    ordered = [n for n in names if not (n in seen or seen.add(n))]

    extra_kwargs: Dict[str, Dict[str, object]] = {}
    if args.faults is not None:
        if ordered != ["faults"]:
            parser.error("--faults is only valid with the 'faults' experiment alone")
        from repro.sim.faults import parse_fault_spec

        for spec in args.faults:
            parse_fault_spec(spec)  # fail fast on bad grammar
        specs = tuple(args.faults)
        if "" not in specs:
            specs = ("",) + specs  # the healthy slowdown baseline
        extra_kwargs["faults"] = {"fault_specs": specs}

    for name in ordered:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; known: {', '.join(sorted(EXPERIMENTS))}")
        print(f"=== {name} ===")
        print(EXPERIMENTS[name](
            scale=args.scale, workload=args.workload, **extra_kwargs.get(name, {})
        ))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
