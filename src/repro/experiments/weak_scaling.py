"""Table 2 and Figure 8: weak scaling of AMS-sort with 1-3 levels.

The paper's experiment: for every ``p`` in {512, 2048, 8192, 32768} and
``n/p`` in {1e5, 1e6, 1e7}, run AMS-sort with 1, 2 and 3 levels and report

* Table 2 — the median wall-time of the best level choice,
* Figure 8 — the per-phase breakdown (splitter selection, bucket processing,
  data delivery, local sort) of every level count.

The scaled reproduction runs the same sweep on smaller ``p`` and ``n/p``
(profile-controlled) on the simulated SuperMUC-like machine and prints the
paper's reference numbers next to the measured ones where they exist.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments.harness import (
    PAPER_TABLE2_SECONDS,
    ExperimentRunner,
    RunConfig,
    scale_profile,
)
from repro.machine.counters import PAPER_PHASES


def weak_scaling_rows(
    p_values: Sequence[int],
    n_per_pe_values: Sequence[int],
    level_counts: Sequence[int] = (1, 2, 3),
    repetitions: int = 3,
    node_size: int = 4,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Run the full weak-scaling sweep; one row per (p, n/p, levels)."""
    runner = runner or ExperimentRunner()
    rows: List[Dict[str, object]] = []
    for n_per_pe in n_per_pe_values:
        for p in p_values:
            for levels in level_counts:
                if levels > 1 and p <= node_size:
                    continue
                cfg = RunConfig(
                    algorithm="ams",
                    p=p,
                    n_per_pe=n_per_pe,
                    levels=levels,
                    node_size=node_size,
                    repetitions=repetitions,
                    workload=workload,
                )
                rows.append(runner.run(cfg))
    return rows


def table2_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Reduce the sweep to Table 2: best level choice per (p, n/p)."""
    best: Dict[tuple, Dict[str, object]] = {}
    for row in rows:
        key = (row["n_per_pe"], row["p"])
        if key not in best or row["time_median_s"] < best[key]["time_median_s"]:
            best[key] = row
    out: List[Dict[str, object]] = []
    for (n_per_pe, p), row in sorted(best.items()):
        out.append(
            {
                "n_per_pe": n_per_pe,
                "p": p,
                "best_levels": row["levels"],
                "time_median_s": row["time_median_s"],
                "imbalance": row["imbalance"],
                "max_startups": row["max_startups"],
            }
        )
    return out


def figure8_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Reduce the sweep to Figure 8: phase breakdown per (p, n/p, levels)."""
    out: List[Dict[str, object]] = []
    for row in sorted(rows, key=lambda r: (r["n_per_pe"], r["p"], r["levels"])):
        entry: Dict[str, object] = {
            "n_per_pe": row["n_per_pe"],
            "p": row["p"],
            "levels": row["levels"],
            "time_median_s": row["time_median_s"],
        }
        for phase in PAPER_PHASES:
            entry[phase] = row.get(f"phase_{phase}", 0.0)
        out.append(entry)
    return out


def paper_reference_rows() -> List[Dict[str, object]]:
    """The paper's Table 2 (median wall-times on SuperMUC) for side-by-side output."""
    out: List[Dict[str, object]] = []
    for n_per_pe, by_p in sorted(PAPER_TABLE2_SECONDS.items()):
        for p, seconds in sorted(by_p.items()):
            out.append({"n_per_pe": n_per_pe, "p": p, "paper_time_s": seconds})
    return out


def run(
    scale: Optional[str] = None,
    repetitions: Optional[int] = None,
    workload: str = "uniform",
) -> str:
    """Run the scaled weak-scaling experiment and format Table 2 + Figure 8."""
    profile = scale_profile(scale)
    reps = repetitions if repetitions is not None else int(profile["repetitions"])
    rows = weak_scaling_rows(
        p_values=profile["p_values"],
        n_per_pe_values=profile["n_per_pe_values"],
        repetitions=reps,
        node_size=int(profile["node_size"]),
        workload=workload,
    )
    text = []
    text.append(format_table(
        table2_rows(rows),
        title="Table 2 (scaled) — AMS-sort median modelled wall-times, best level choice",
    ))
    text.append(format_table(
        figure8_rows(rows),
        title="Figure 8 (scaled) — AMS-sort phase breakdown per level count",
    ))
    text.append(format_table(
        paper_reference_rows(),
        title="Paper reference (Table 2, SuperMUC, for comparison of shape only)",
    ))
    return "\n".join(text)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
