"""Degradation under injected faults: slowdown vs fault rate per algorithm.

Extends the Figure 12 variance machinery from *healthy-machine* spread to
*faulty-machine* degradation: for a ladder of fault specs (increasing drop
rates, straggler mixes — see :mod:`repro.sim.faults`) each algorithm runs
the same workload on the same machine seed, and the table reports the
modelled slowdown relative to the fault-free baseline next to the recovery
cost tallies (dropped rounds, re-sent words, timeout idle time, straggle
time).  Because the retry draw is a truncated geometric in the drop rate
with a shared uniform, recovery cost is *exactly* monotone in the drop rate
for a fixed seed — which the golden trace pins and CI asserts.

The multi-level algorithms pay for faults differently: AMS-sort's few large
exchange rounds lose little to per-round timeouts but re-send big volumes,
while RLM-sort's regular grid rounds hit more (cheaper) retries — the same
startup-vs-volume trade-off the healthy-machine experiments measure,
exposed by failure recovery instead of message startups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import summarize_runs
from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner, RunConfig, scale_profile


#: Default fault-spec ladder of the degradation experiment.  The empty spec
#: is the healthy baseline every slowdown is computed against; the drop-rate
#: rungs are spaced widely enough that recovery cost strictly increases even
#: at tiny scale (few exchanges → few geometric draws).
DEFAULT_FAULT_SPECS: Sequence[str] = (
    "",
    "droprate:0.05",
    "droprate:0.2",
    "droprate:0.4",
    "stragglers:0.25",
    "stragglers:0.25,droprate:0.2",
)

#: Trimmed ladder for secondary workloads in the campaign grid.  The bottom
#: rung starts higher than the primary ladder's: the trimmed grid runs the
#: smallest machine, whose few exchange rounds draw too few uniforms for a
#: 5% drop rate to fire at all.
TRIMMED_FAULT_SPECS: Sequence[str] = (
    "",
    "droprate:0.15",
    "droprate:0.25",
    "droprate:0.4",
)


def degradation_rows(
    p: int,
    n_per_pe: int,
    algorithms: Sequence[str] = ("ams", "rlm", "samplesort"),
    fault_specs: Sequence[str] = DEFAULT_FAULT_SPECS,
    levels: int = 2,
    node_size: int = 4,
    repetitions: int = 2,
    workload: str = "uniform",
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (algorithm, fault spec) with slowdown and recovery tallies.

    The fault-free spec (``""``) should come first in ``fault_specs``; its
    median time is the baseline of each algorithm's ``slowdown_vs_clean``
    column (``None`` when an algorithm has no clean baseline in the ladder).
    """
    runner = runner or ExperimentRunner()
    specs = list(fault_specs)
    rows: List[Dict[str, object]] = []
    for algorithm in algorithms:
        algo_levels = levels if algorithm in ("ams", "rlm") else 1
        clean_median: Optional[float] = None
        for spec in specs:
            cfg = RunConfig(
                algorithm=algorithm,
                p=p,
                n_per_pe=n_per_pe,
                levels=algo_levels,
                node_size=node_size,
                repetitions=repetitions,
                workload=workload,
                faults=spec,
            )
            results = [
                runner.run_once(cfg, rep) for rep in range(max(1, repetitions))
            ]
            stats = summarize_runs([r.total_time for r in results])
            fault_totals: Dict[str, float] = {}
            for r in results:
                for key, value in r.faults.items():
                    if isinstance(value, (int, float)):
                        fault_totals[key] = fault_totals.get(key, 0.0) + value
            median = float(stats["median"])
            if spec == "":
                clean_median = median
            slowdown = (
                median / clean_median
                if clean_median is not None and clean_median > 0
                else None
            )
            rows.append(
                {
                    "algorithm": algorithm,
                    "levels": algo_levels,
                    "p": p,
                    "n_per_pe": n_per_pe,
                    "workload": workload,
                    "faults": spec,
                    "time_median_s": median,
                    "slowdown_vs_clean": slowdown,
                    "imbalance": float(
                        max(r.imbalance for r in results)
                    ),
                    "dropped_rounds": int(fault_totals.get("dropped_rounds", 0)),
                    "resent_words": int(fault_totals.get("resent_words", 0)),
                    "degraded_rounds": int(fault_totals.get("degraded_rounds", 0)),
                    "hiccup_events": int(fault_totals.get("hiccup_events", 0)),
                    "timeout_wait_s": float(fault_totals.get("timeout_wait_s", 0.0)),
                    "recovery_s": float(fault_totals.get("recovery_s", 0.0)),
                    "straggle_s": float(fault_totals.get("straggle_s", 0.0)),
                }
            )
    return rows


def run(
    scale: Optional[str] = None,
    workload: str = "uniform",
    fault_specs: Sequence[str] = DEFAULT_FAULT_SPECS,
) -> str:
    """Run the scaled degradation experiment and return the formatted table."""
    profile = scale_profile(scale)
    p_values = profile["p_values"]
    rows = degradation_rows(
        p=int(p_values[min(1, len(p_values) - 1)]),
        n_per_pe=int(profile["n_per_pe_values"][0]),
        node_size=int(profile["node_size"]),
        repetitions=min(2, int(profile["repetitions"])),
        workload=workload,
        fault_specs=fault_specs,
    )
    return format_table(
        rows,
        title=(
            "Fault degradation — modelled slowdown and recovery cost vs "
            "injected fault rate"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run())
