"""repro — a reproduction of "Practical Massively Parallel Sorting" (SPAA 2015).

The package implements AMS-sort and RLM-sort (Axtmann, Bingmann, Sanders,
Schulz), all of their building blocks, and the single-level baselines they
are compared against, on top of a deterministic simulator of a
distributed-memory message-passing machine.

Quickstart::

    import numpy as np
    from repro import sort_array, AMSConfig

    rng = np.random.default_rng(0)
    data = rng.integers(0, 10**9, size=200_000)
    result = sort_array(data, p=64, algorithm="ams", config=AMSConfig(levels=2))
    assert np.array_equal(np.concatenate(result.output), np.sort(data))
    print(result.total_time, result.phase_times)

Subpackages
-----------
``repro.machine``   hardware model (spec, topology, cost, counters)
``repro.dist``      flat DistArray execution engine (CSR layout + kernels)
``repro.sim``       bulk-synchronous simulator (machine, communicators, exchange)
``repro.seq``       sequential toolbox (merging, partitioning, selection)
``repro.blocks``    distributed building blocks (multiselect, fast sort,
                    data delivery, bucket grouping, Feistel permutations)
``repro.core``      AMS-sort, RLM-sort, baselines, configuration, runner
``repro.workloads`` input generators, sort-benchmark records, Morton codes
``repro.analysis``  theoretical cost model, metrics, table formatting
``repro.experiments`` harness reproducing the paper's tables and figures
"""

from repro.core.config import AMSConfig, RLMConfig, level_plan
from repro.core.ams_sort import ams_sort
from repro.core.rlm_sort import rlm_sort
from repro.core.baselines import (
    single_level_sample_sort,
    single_level_mergesort,
    parallel_quicksort,
)
from repro.core.runner import SortResult, run_on_machine, sort_array, distribute_array
from repro.machine.spec import (
    MachineSpec,
    supermuc_like,
    cray_xt4_like,
    cray_xe6_like,
    generic_cluster,
    laptop_like,
)
from repro.sim.machine import SimulatedMachine
from repro.sim.comm import Comm
from repro.dist.array import DistArray

__version__ = "1.0.0"

__all__ = [
    "AMSConfig",
    "RLMConfig",
    "level_plan",
    "ams_sort",
    "rlm_sort",
    "single_level_sample_sort",
    "single_level_mergesort",
    "parallel_quicksort",
    "SortResult",
    "run_on_machine",
    "sort_array",
    "distribute_array",
    "MachineSpec",
    "supermuc_like",
    "cray_xt4_like",
    "cray_xe6_like",
    "generic_cluster",
    "laptop_like",
    "SimulatedMachine",
    "Comm",
    "DistArray",
    "__version__",
]
