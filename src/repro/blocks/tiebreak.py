"""Implicit tie breaking via composite ``(key, PE, position)`` keys (Appendix D).

The paper assumes unique keys w.l.o.g. by conceptually replacing a key ``x``
with the triple ``(x, i, j)`` where ``i`` is the PE the element was input on
and ``j`` its position in the input array.  Appendix D explains how AMS-sort
avoids materialising the triple for most elements (only elements equal to a
splitter ever need the full comparison).

Our distributed algorithms handle duplicates natively (the multiselect and
partition primitives distribute equal elements deterministically by PE
index), so tie breaking is not required for correctness.  This module still
provides the explicit encoding because

* it reproduces Appendix D,
* examples that must produce a *stable* global sort (e.g. sorting records by
  a possibly-duplicated key while preserving input order) use it, and
* property-based tests use it to compare against a plain stable sort oracle.

For integer keys with enough headroom the composite key is packed into a
single ``int64`` (``key * 2^bits + global_index``), which keeps the element a
single machine word as the paper requires.  Otherwise a structured array with
``key`` and ``tag`` fields is returned.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


#: dtype of the structured fallback representation.
STRUCTURED_DTYPE = np.dtype([("key", np.float64), ("tag", np.int64)])


def _global_offsets(local_sizes: Sequence[int]) -> np.ndarray:
    sizes = np.asarray(list(local_sizes), dtype=np.int64)
    offsets = np.zeros(sizes.size, dtype=np.int64)
    if sizes.size > 1:
        offsets[1:] = np.cumsum(sizes)[:-1]
    return offsets


def can_encode_inline(local_data: Sequence[np.ndarray]) -> bool:
    """True when the composite keys fit into a single signed 64-bit integer."""
    total = int(sum(np.asarray(d).size for d in local_data))
    if total == 0:
        return True
    bits_needed = int(np.ceil(np.log2(max(total, 2))))
    for d in local_data:
        d = np.asarray(d)
        if d.size == 0:
            continue
        if not np.issubdtype(d.dtype, np.integer):
            return False
        lo, hi = int(d.min()), int(d.max())
        span_bits = 63 - bits_needed
        if hi >= (1 << (span_bits - 1)) or lo < -(1 << (span_bits - 1)):
            return False
    return True


def make_unique_keys(
    local_data: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], dict]:
    """Replace per-PE keys with unique composite keys.

    Returns ``(unique_data, info)`` where ``info`` holds what is needed to
    undo the transformation with :func:`strip_tiebreak`.  Ordering of the
    composite keys is the lexicographic ordering of ``(key, PE, position)``.
    """
    arrays = [np.asarray(d) for d in local_data]
    sizes = [int(a.size) for a in arrays]
    offsets = _global_offsets(sizes)
    total = int(sum(sizes))
    if can_encode_inline(arrays):
        bits = int(np.ceil(np.log2(max(total, 2))))
        factor = np.int64(1) << np.int64(bits)
        out: List[np.ndarray] = []
        for a, off in zip(arrays, offsets):
            idx = np.arange(a.size, dtype=np.int64) + off
            out.append(a.astype(np.int64) * factor + idx)
        info = {"mode": "inline", "bits": bits, "sizes": sizes}
        return out, info
    out = []
    for a, off in zip(arrays, offsets):
        rec = np.empty(a.size, dtype=STRUCTURED_DTYPE)
        rec["key"] = a.astype(np.float64)
        rec["tag"] = np.arange(a.size, dtype=np.int64) + off
        out.append(rec)
    info = {"mode": "structured", "bits": 0, "sizes": sizes}
    return out, info


def strip_tiebreak(data: Sequence[np.ndarray], info: dict) -> List[np.ndarray]:
    """Recover the original keys from composite keys produced by :func:`make_unique_keys`."""
    mode = info.get("mode")
    out: List[np.ndarray] = []
    if mode == "inline":
        factor = np.int64(1) << np.int64(info["bits"])
        for a in data:
            a = np.asarray(a, dtype=np.int64)
            out.append(np.floor_divide(a, factor))
        return out
    if mode == "structured":
        for a in data:
            out.append(np.asarray(a)["key"].copy())
        return out
    raise ValueError(f"unknown tie-break mode {mode!r}")


def original_positions(data: Sequence[np.ndarray], info: dict) -> List[np.ndarray]:
    """Global input positions encoded in composite keys (for stability checks)."""
    mode = info.get("mode")
    out: List[np.ndarray] = []
    if mode == "inline":
        factor = np.int64(1) << np.int64(info["bits"])
        for a in data:
            a = np.asarray(a, dtype=np.int64)
            out.append(np.mod(a, factor))
        return out
    if mode == "structured":
        for a in data:
            out.append(np.asarray(a)["tag"].copy())
        return out
    raise ValueError(f"unknown tie-break mode {mode!r}")
