"""Pseudorandom permutations from Feistel networks (Appendix B).

The randomized data-delivery algorithms permute PE numbers and piece indices
pseudorandomly.  Appendix B of the paper constructs such permutations by
chaining Feistel rounds: represent ``i`` as a pair ``(a, b)`` with
``i = a + b * s`` (``s = ceil(sqrt(n))``) and apply

    pi_f((a, b)) = (b, (a + f(b)) mod s)

for a pseudorandom function ``f``.  Chaining three to four Feistel rounds
yields a permutation of ``0 .. s^2 - 1`` that behaves pseudorandomly; a
permutation of ``0 .. n - 1`` is obtained by *cycle walking* (iterating until
the image falls below ``n``).  The description requires only the round keys,
so it can be replicated on every PE without communication — exactly why the
paper uses this construction instead of exchanging an explicit permutation.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _mix(x: np.ndarray, key: int) -> np.ndarray:
    """A cheap integer hash used as the Feistel round function ``f``.

    The constants are the 64-bit SplitMix64 finalizer; quality far exceeds
    what the delivery algorithms need (they only require that the permutation
    does not correlate with the input ordering).
    """
    x = (x.astype(np.uint64) + np.uint64(key)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(30)
    x = (x * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(27)
    x = (x * np.uint64(0x94D049BB133111EB)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(31)
    return x


class FeistelPermutation:
    """A pseudorandom permutation of ``0 .. n - 1``.

    Parameters
    ----------
    n:
        Size of the domain.
    seed:
        Seed for the round keys (replicated state — two PEs constructing the
        permutation with the same ``n`` and ``seed`` obtain the same mapping).
    rounds:
        Number of Feistel rounds; the paper chains three to four rounds
        [23, 25], four is the default.
    """

    def __init__(self, n: int, seed: int = 0, rounds: int = 4):
        if n <= 0:
            raise ValueError("permutation domain must be non-empty")
        if rounds < 1:
            raise ValueError("need at least one Feistel round")
        self.n = int(n)
        self.rounds = int(rounds)
        self.side = int(np.ceil(np.sqrt(self.n)))
        self.square = self.side * self.side
        rng = np.random.default_rng(seed)
        self.keys: List[int] = [int(k) for k in rng.integers(0, 2 ** 63 - 1, size=rounds)]

    # ------------------------------------------------------------------
    def _feistel_square(self, x: np.ndarray) -> np.ndarray:
        """Apply the chained Feistel rounds on the domain ``0 .. side^2 - 1``."""
        side = np.uint64(self.side)
        x = np.asarray(x).astype(np.uint64)
        a = (x % side).astype(np.uint64)
        b = (x // side).astype(np.uint64)
        for key in self.keys:
            a, b = b, (a + _mix(b, key) % side) % side
        return (a + b * side).astype(np.int64)

    def apply(self, values: np.ndarray | int) -> np.ndarray | int:
        """Map ``values`` (scalars or arrays in ``0..n-1``) through the permutation."""
        scalar = np.isscalar(values)
        x = np.atleast_1d(np.asarray(values, dtype=np.int64))
        if np.any(x < 0) or np.any(x >= self.n):
            raise ValueError("value outside the permutation domain")
        out = x.astype(np.uint64)
        # Cycle walking: re-apply the square permutation until the image is
        # inside 0..n-1.  Expected number of iterations is below 2 because
        # side^2 < 4 n.
        pending = np.ones(out.shape, dtype=bool)
        result = np.empty_like(out, dtype=np.int64)
        current = out.astype(np.int64)
        guard = 0
        while pending.any():
            mapped = self._feistel_square(current[pending])
            inside = mapped < self.n
            idx = np.flatnonzero(pending)
            done_idx = idx[inside]
            result[done_idx] = mapped[inside]
            still = idx[~inside]
            current[still] = mapped[~inside]
            pending[:] = False
            pending[still] = True
            guard += 1
            if guard > 4 * self.square + 10:  # pragma: no cover - safety net
                raise RuntimeError("cycle walking failed to terminate")
        return int(result[0]) if scalar else result

    def permutation_array(self) -> np.ndarray:
        """The full permutation as an array ``perm[i] = pi(i)`` (for tests / small n)."""
        return np.asarray(self.apply(np.arange(self.n, dtype=np.int64)))

    def __call__(self, values):
        return self.apply(values)


def pseudorandom_permutation(n: int, seed: int = 0) -> np.ndarray:
    """Convenience helper returning the image array of a Feistel permutation."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return FeistelPermutation(n, seed=seed).permutation_array()
