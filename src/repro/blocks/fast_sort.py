"""Fast work-inefficient sorting on an ``a x b`` PE grid (Section 4.2).

This algorithm sorts a *small* input (in our use: the splitter sample of
AMS-sort) in logarithmic time at the price of work inefficiency:

1. the PEs are arranged as an ``a x b`` grid with ``a, b = O(sqrt(p))``,
2. every PE sorts its local elements,
3. the locally sorted runs are gossiped (all-gathered with merging) along
   both the rows and the columns of the grid (Figure 1),
4. PE ``(i, j)`` ranks the elements received from column ``j`` with respect
   to the elements received from row ``i`` (a merge of two sorted
   sequences),
5. summing these partial ranks over the rows of a column yields the global
   rank of every element, from which elements of prescribed ranks (the
   splitters) can be extracted.

Total time ``O(alpha log p + beta n / sqrt(p) + n/p log(n/p))``
(Equation (2)).

Duplicate keys are handled by carrying a unique element id alongside every
value and ranking by the composite ``(value, id)`` key, so the computed
global ranks are always a permutation of ``0 .. n - 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dist.array import DistArray
from repro.machine.counters import PHASE_SPLITTER_SELECTION
from repro.sim.exchange import FlatMessages


@dataclass
class GridShape:
    """Shape of the PE grid used by the fast work-inefficient sort."""

    rows: int
    cols: int

    @property
    def size(self) -> int:
        return self.rows * self.cols


def grid_shape(p: int) -> GridShape:
    """Choose an ``a x b`` grid with ``a * b <= p`` and ``a, b = O(sqrt(p))``.

    For ``p`` a power of two this returns ``2^ceil(log2(p)/2) x 2^floor(...)``
    exactly as in the paper; otherwise the largest near-square grid that fits
    into ``p`` PEs is used and the remaining PEs only contribute their data.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p & (p - 1) == 0:  # power of two
        logp = int(math.log2(p))
        rows = 1 << ((logp + 1) // 2)
        cols = 1 << (logp // 2)
        return GridShape(rows=rows, cols=cols)
    rows = int(math.floor(math.sqrt(p)))
    rows = max(1, rows)
    cols = max(1, p // rows)
    while rows * cols > p:
        cols -= 1
    return GridShape(rows=rows, cols=cols)


def _rank_against(row_vals: np.ndarray, row_ids: np.ndarray,
                  col_vals: np.ndarray, col_ids: np.ndarray) -> np.ndarray:
    """Rank every (col value, id) pair with respect to the row pairs.

    Composite ordering ``(value, id)``; returns, for every column element,
    the number of row elements strictly smaller under that ordering.
    """
    if col_vals.size == 0:
        return np.zeros(0, dtype=np.int64)
    if row_vals.size == 0:
        return np.zeros(col_vals.size, dtype=np.int64)
    below = np.searchsorted(row_vals, col_vals, side="left")
    upto = np.searchsorted(row_vals, col_vals, side="right")
    ranks = below.astype(np.int64)
    # Among equal values, count row elements with a smaller id.
    ties = np.flatnonzero(upto > below)
    for t in ties:
        lo, hi = int(below[t]), int(upto[t])
        ranks[t] += int(np.count_nonzero(row_ids[lo:hi] < col_ids[t]))
    return ranks


def fast_work_inefficient_sort(
    comm,
    local_values: Sequence[np.ndarray],
    phase: str = PHASE_SPLITTER_SELECTION,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """Compute global ranks of a small distributed input on a PE grid.

    Parameters
    ----------
    comm:
        Communicator of ``p`` PEs.
    local_values:
        One array per member PE (the sample contributed by that PE).
    phase:
        Phase name the modelled time is attributed to.

    Returns
    -------
    (sorted_values, sorted_ids, per_pe_values, per_pe_ranks)
        ``sorted_values`` is the globally sorted sample (replicated view),
        ``sorted_ids`` the corresponding unique element ids,
        ``per_pe_values``/``per_pe_ranks`` give, for every contributing PE,
        its own elements and their global ranks.
    """
    p = comm.size
    if len(local_values) != p:
        raise ValueError("need one sample array per member PE")
    arrays = [np.asarray(a) for a in local_values]
    sizes = np.array([a.size for a in arrays], dtype=np.int64)
    total = int(sizes.sum())
    offsets = np.zeros(p, dtype=np.int64)
    if p > 1:
        offsets[1:] = np.cumsum(sizes)[:-1]

    with comm.phase(phase):
        # Local sort of the sample; carry unique ids so ranks are exact.
        ids = [offsets[i] + np.arange(sizes[i], dtype=np.int64) for i in range(p)]
        values_sorted: List[np.ndarray] = []
        ids_sorted: List[np.ndarray] = []
        for i in range(p):
            order = np.lexsort((ids[i], arrays[i]))
            values_sorted.append(arrays[i][order])
            ids_sorted.append(ids[i][order])
        comm.charge_sort(sizes)

        shape = grid_shape(p)
        rows, cols = shape.rows, shape.cols

        if total == 0:
            empty_v = np.empty(0, dtype=arrays[0].dtype if arrays else np.float64)
            empty_i = np.empty(0, dtype=np.int64)
            return empty_v, empty_i, [a.copy() for a in arrays], [np.empty(0, np.int64) for _ in range(p)]

        if p == 1:
            return (
                values_sorted[0].copy(),
                ids_sorted[0].copy(),
                [values_sorted[0].copy()],
                [np.arange(total, dtype=np.int64)],
            )

        # PEs outside the grid hand their sample to a grid PE first
        # (their rank modulo the grid size); this is a tiny exchange.
        grid_p = shape.size
        if grid_p < p:
            outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
            id_outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
            for i in range(grid_p, p):
                dest = i % grid_p
                outboxes[i].append((dest, values_sorted[i]))
                id_outboxes[i].append((dest, ids_sorted[i]))
            res_v = comm.exchange(outboxes, charge_copy=False)
            res_i = comm.exchange(id_outboxes, charge_copy=False)
            merged_vals: List[np.ndarray] = []
            merged_ids: List[np.ndarray] = []
            for i in range(grid_p):
                extra_v = [payload for _, payload in res_v.inboxes[i]]
                extra_i = [payload for _, payload in res_i.inboxes[i]]
                vv = np.concatenate([values_sorted[i]] + extra_v) if extra_v else values_sorted[i]
                ii = np.concatenate([ids_sorted[i]] + extra_i) if extra_i else ids_sorted[i]
                order = np.lexsort((ii, vv))
                merged_vals.append(vv[order])
                merged_ids.append(ii[order])
            grid_vals = merged_vals
            grid_ids = merged_ids
        else:
            grid_vals = values_sorted[:grid_p]
            grid_ids = ids_sorted[:grid_p]

        # Gossip along rows and columns (allgather with merging).
        row_vals: List[np.ndarray] = [None] * grid_p  # type: ignore[list-item]
        row_ids: List[np.ndarray] = [None] * grid_p  # type: ignore[list-item]
        col_vals: List[np.ndarray] = [None] * grid_p  # type: ignore[list-item]
        col_ids: List[np.ndarray] = [None] * grid_p  # type: ignore[list-item]

        def gather_group(member_ranks: List[int]) -> Tuple[np.ndarray, np.ndarray]:
            vals = np.concatenate([grid_vals[m] for m in member_ranks])
            idv = np.concatenate([grid_ids[m] for m in member_ranks])
            order = np.lexsort((idv, vals))
            return vals[order], idv[order]

        # Row gossip: PEs i*cols .. i*cols + cols - 1.
        for ri in range(rows):
            member_ranks = [ri * cols + c for c in range(cols)]
            sub = comm.machine.comm([comm.global_pe(m) for m in member_ranks])
            vals, idv = gather_group(member_ranks)
            sub.allgather_arrays([grid_vals[m] for m in member_ranks], merge_sorted=False)
            for m in member_ranks:
                row_vals[m], row_ids[m] = vals, idv
        # Column gossip: PEs c, c + cols, c + 2*cols, ...
        for cj in range(cols):
            member_ranks = [r * cols + cj for r in range(rows)]
            sub = comm.machine.comm([comm.global_pe(m) for m in member_ranks])
            vals, idv = gather_group(member_ranks)
            sub.allgather_arrays([grid_vals[m] for m in member_ranks], merge_sorted=False)
            for m in member_ranks:
                col_vals[m], col_ids[m] = vals, idv

        # Local ranking of the column elements against the row elements.
        partial_ranks: List[np.ndarray] = []
        merge_sizes = []
        for m in range(grid_p):
            pr = _rank_against(row_vals[m], row_ids[m], col_vals[m], col_ids[m])
            partial_ranks.append(pr)
            merge_sizes.append(row_vals[m].size + col_vals[m].size)
        comm.charge_merge(
            merge_sizes + [0] * (p - grid_p), 2
        )

        # Sum the partial ranks along every column to obtain global ranks.
        col_global_ranks: dict[int, np.ndarray] = {}
        for cj in range(cols):
            member_ranks = [r * cols + cj for r in range(rows)]
            sub = comm.machine.comm([comm.global_pe(m) for m in member_ranks])
            summed = sub.allreduce_vec([partial_ranks[m] for m in member_ranks])
            col_global_ranks[cj] = summed

        # Assemble the globally sorted sample (replicated result).
        all_vals = np.concatenate([col_vals[cj] for cj in range(cols)])
        all_ids = np.concatenate([col_ids[cj] for cj in range(cols)])
        all_ranks = np.concatenate([col_global_ranks[cj] for cj in range(cols)])
        order = np.argsort(all_ranks, kind="stable")
        sorted_values = all_vals[order]
        sorted_ids = all_ids[order]

        # Per-PE view: global ranks of the elements each PE contributed.
        rank_by_id = np.empty(total, dtype=np.int64)
        rank_by_id[all_ids] = all_ranks
        per_pe_values = [arrays[i].copy() for i in range(p)]
        per_pe_ranks = [rank_by_id[ids[i]] for i in range(p)]

    return sorted_values, sorted_ids, per_pe_values, per_pe_ranks


def fast_work_inefficient_sort_flat(
    comm,
    samples: DistArray,
    phase: str = PHASE_SPLITTER_SELECTION,
) -> Tuple[np.ndarray, np.ndarray, DistArray]:
    """Flat-engine port of :func:`fast_work_inefficient_sort`.

    The *data* result of the grid sort is simply the global stable order of
    the sample (the per-element ids are the global positions, so ranking by
    the composite ``(value, id)`` key equals one stable argsort).  The grid
    structure only matters for the modelled cost, which this port charges
    step for step exactly like the per-PE reference: local sample sort, the
    hand-off exchanges of the PEs outside the grid, the row/column gossip
    all-gathers, the ranking merges, and the column-wise rank reductions.

    Returns ``(sorted_values, sorted_ids, per_pe_ranks)`` where
    ``per_pe_ranks`` is a :class:`DistArray` giving every contributed
    element's global rank.
    """
    p = comm.size
    sizes = samples.sizes()
    total = samples.total

    with comm.phase(phase):
        comm.charge_sort(sizes)
        shape = grid_shape(p)
        rows, cols = shape.rows, shape.cols

        order = np.argsort(samples.values, kind="stable")
        sorted_values = samples.values[order]
        sorted_ids = order.astype(np.int64)
        ranks = np.empty(total, dtype=np.int64)
        ranks[order] = np.arange(total, dtype=np.int64)
        per_pe_ranks = DistArray(ranks, samples.offsets)

        if total == 0 or p == 1:
            return sorted_values, sorted_ids, per_pe_ranks

        # PEs outside the grid hand their sample to a grid PE first; the
        # reference ships values and ids in two separate cost-only exchanges.
        grid_p = shape.size
        grid_sizes = sizes[:grid_p].copy()
        if grid_p < p:
            outside = np.arange(grid_p, p, dtype=np.int64)
            dests = outside % grid_p
            handoff = FlatMessages(
                outside, dests, samples.offsets[outside], sizes[outside],
                samples.values,
            )
            comm.exchange_flat(handoff, charge_copy=False, build_inbox=False)
            comm.exchange_flat(handoff, charge_copy=False, build_inbox=False)
            np.add.at(grid_sizes, dests, sizes[outside])

        # Row/column gossip (all-gather): cost by per-group totals.
        row_of = np.arange(grid_p, dtype=np.int64) // cols
        col_of = np.arange(grid_p, dtype=np.int64) % cols
        row_totals = np.bincount(row_of, weights=grid_sizes, minlength=rows).astype(np.int64)
        col_totals = np.bincount(col_of, weights=grid_sizes, minlength=cols).astype(np.int64)
        for ri in range(rows):
            member_ranks = [ri * cols + c for c in range(cols)]
            sub = comm.machine.comm([comm.global_pe(m) for m in member_ranks])
            sub.charge_allgather_arrays(int(row_totals[ri]))
        for cj in range(cols):
            member_ranks = [r_ * cols + cj for r_ in range(rows)]
            sub = comm.machine.comm([comm.global_pe(m) for m in member_ranks])
            sub.charge_allgather_arrays(int(col_totals[cj]))

        # Local ranking of column against row elements (a two-way merge).
        merge_sizes = (row_totals[row_of] + col_totals[col_of]).tolist()
        comm.charge_merge(merge_sizes + [0] * (p - grid_p), 2)

        # Column-wise summation of the partial ranks (vector all-reduce of
        # length |column data| per grid column).
        for cj in range(cols):
            member_ranks = [r_ * cols + cj for r_ in range(rows)]
            sub = comm.machine.comm([comm.global_pe(m) for m in member_ranks])
            sub.charge_allreduce_vec(int(col_totals[cj]))

    return sorted_values, sorted_ids, per_pe_ranks


def select_splitters_by_rank_flat(
    comm,
    samples: DistArray,
    num_splitters: int,
    phase: str = PHASE_SPLITTER_SELECTION,
) -> np.ndarray:
    """Flat-engine port of :func:`select_splitters_by_rank`."""
    sorted_values, _, _ = fast_work_inefficient_sort_flat(comm, samples, phase=phase)
    total = int(sorted_values.size)
    if num_splitters <= 0 or total == 0:
        return sorted_values[:0].copy()
    ranks = ((np.arange(1, num_splitters + 1) * total) // (num_splitters + 1))
    ranks = np.clip(ranks, 0, total - 1)
    splitters = sorted_values[ranks]
    with comm.phase(phase):
        comm.bcast(splitters, root=0, words=int(splitters.size))
    return splitters


def select_splitters_by_rank(
    comm,
    local_values: Sequence[np.ndarray],
    num_splitters: int,
    phase: str = PHASE_SPLITTER_SELECTION,
) -> np.ndarray:
    """Sort a distributed sample and return ``num_splitters`` equidistant splitters.

    The splitters are broadcast to (i.e. returned for) every PE; the modelled
    cost of the broadcast is charged to ``phase``.
    """
    sorted_values, _, _, _ = fast_work_inefficient_sort(comm, local_values, phase=phase)
    total = int(sorted_values.size)
    if num_splitters <= 0 or total == 0:
        return sorted_values[:0].copy()
    ranks = ((np.arange(1, num_splitters + 1) * total) // (num_splitters + 1))
    ranks = np.clip(ranks, 0, total - 1)
    splitters = sorted_values[ranks]
    with comm.phase(phase):
        comm.bcast(splitters, root=0, words=int(splitters.size))
    return splitters
