"""Distributed building blocks of the paper (Section 4 and appendices).

* :mod:`repro.blocks.multiselect` — distributed multisequence selection
  (Section 4.1, Figure 2) for one or many simultaneous ranks,
* :mod:`repro.blocks.fast_sort` — fast work-inefficient sorting on an
  ``a x b`` PE grid (Section 4.2, Figure 1), used to sort samples,
* :mod:`repro.blocks.delivery` — data delivery to ``r`` PE groups
  (Section 4.3): naive prefix-sum delivery, the randomized PE-permutation
  variant, the deterministic two-phase algorithm (4.3.1) and the advanced
  randomized algorithm (Appendix A),
* :mod:`repro.blocks.grouping` — optimal assignment of consecutive buckets
  to PE groups (the constrained bin-packing scan of Section 6 / Lemma 1,
  accelerated per Appendix C),
* :mod:`repro.blocks.feistel` — pseudorandom permutations from Feistel
  networks (Appendix B),
* :mod:`repro.blocks.sampling` — sample-size logic (oversampling ``a``,
  overpartitioning ``b``) and distributed sample drawing,
* :mod:`repro.blocks.tiebreak` — implicit tie breaking via
  ``(key, PE, position)`` composite keys (Appendix D).
"""

from repro.blocks.feistel import FeistelPermutation, pseudorandom_permutation
from repro.blocks.sampling import (
    SamplingParams,
    draw_local_sample,
    draw_samples,
    draw_samples_flat,
    default_oversampling,
)
from repro.blocks.multiselect import (
    multisequence_select,
    multisequence_select_flat,
    MultiselectResult,
)
from repro.blocks.fast_sort import (
    fast_work_inefficient_sort,
    fast_work_inefficient_sort_flat,
    select_splitters_by_rank,
    select_splitters_by_rank_flat,
)
from repro.blocks.grouping import (
    scan_buckets_with_bound,
    optimal_bucket_grouping,
    group_sizes_from_boundaries,
    bucket_to_group,
)
from repro.blocks.delivery import (
    deliver_to_groups,
    deliver_to_groups_flat,
    DeliveryResult,
    FlatDeliveryResult,
)
from repro.blocks.tiebreak import (
    make_unique_keys,
    strip_tiebreak,
    can_encode_inline,
)

__all__ = [
    "FeistelPermutation",
    "pseudorandom_permutation",
    "SamplingParams",
    "draw_local_sample",
    "draw_samples",
    "draw_samples_flat",
    "default_oversampling",
    "multisequence_select",
    "multisequence_select_flat",
    "MultiselectResult",
    "fast_work_inefficient_sort",
    "fast_work_inefficient_sort_flat",
    "select_splitters_by_rank",
    "select_splitters_by_rank_flat",
    "scan_buckets_with_bound",
    "optimal_bucket_grouping",
    "group_sizes_from_boundaries",
    "bucket_to_group",
    "deliver_to_groups",
    "deliver_to_groups_flat",
    "DeliveryResult",
    "FlatDeliveryResult",
    "make_unique_keys",
    "strip_tiebreak",
    "can_encode_inline",
]
