"""Distributed multisequence selection (Section 4.1, Figure 2).

Given one locally *sorted* array per PE and a set of ``r`` target global
ranks, find for every PE and every rank a split position such that exactly
the requested number of elements lies to the left of the splits, and the
split is order-consistent (no element left of a split is larger than an
element right of it).

The algorithm is the distributed adaptation of quickselect described in the
paper:

1. pick a pivot uniformly at random among the remaining candidate elements —
   the same random number is used on all PEs (replicated randomness), and a
   prefix sum over the candidate counts locates the owning PE,
2. every PE performs a binary search for the pivot in its candidate range
   (``O(log(n/p))`` local work),
3. a global reduction compares the number of elements ``<=`` pivot with the
   requested rank and the search continues in the left or right part.

Duplicate keys are handled exactly, without materialising tie-break keys, by
using the implicit composite key ``(value, PE, position)``: the count of
elements "``<=`` pivot" on PE ``i`` includes equal elements only when
``i < q`` (pivot owner) or when ``i == q`` and the position does not exceed
the pivot's position.  This is precisely the scheme of Appendix D.

All ``r`` selections run simultaneously; every iteration uses a single
vector-valued reduction of length ``r`` (running time contribution
``O(r beta + alpha log p)`` per iteration, Equation (1) of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dist.array import DistArray


@dataclass
class MultiselectResult:
    """Result of a distributed multisequence selection.

    Attributes
    ----------
    splits:
        Integer matrix of shape ``(num_ranks, p)``; ``splits[t, i]`` is the
        number of elements of PE ``i``'s local array that belong to the left
        part for target rank ``t``.  Row sums equal the requested ranks.
    iterations:
        Number of pivot iterations executed (all ranks combined, i.e. the
        number of collective rounds).
    """

    splits: np.ndarray
    iterations: int

    def pieces_for_pe(self, pe: int, local_size: int) -> List[slice]:
        """Slices of PE ``pe``'s local array delimited by consecutive splits.

        For ``r - 1`` splitting ranks this returns ``r`` slices covering the
        whole local array.
        """
        bounds = [0] + [int(x) for x in self.splits[:, pe]] + [int(local_size)]
        for a, b in zip(bounds, bounds[1:]):
            if b < a:
                raise ValueError("split positions are not monotone")
        return [slice(a, b) for a, b in zip(bounds, bounds[1:])]


def multisequence_select(
    comm,
    local_sorted: Sequence[np.ndarray],
    ranks: Sequence[int],
    charge_local: bool = True,
) -> MultiselectResult:
    """Run the distributed multisequence selection on communicator ``comm``.

    Parameters
    ----------
    comm:
        :class:`repro.sim.comm.Comm` of ``p`` PEs.
    local_sorted:
        One individually sorted array per member PE.
    ranks:
        Target global ranks, non-decreasing, each in ``0 .. n`` where ``n``
        is the total number of elements.
    charge_local:
        Charge the modelled local binary-search cost (disable for tests that
        only care about the data result).
    """
    p = comm.size
    if len(local_sorted) != p:
        raise ValueError("need one sorted array per member PE")
    runs = [np.asarray(a) for a in local_sorted]
    for i, a in enumerate(runs):
        if a.ndim != 1:
            raise ValueError(f"local array of rank {i} is not one-dimensional")
        if a.size > 1 and np.any(a[1:] < a[:-1]):
            raise ValueError(f"local array of rank {i} is not sorted")
    sizes = np.array([a.size for a in runs], dtype=np.int64)
    total = int(sizes.sum())
    ranks_arr = np.asarray(ranks, dtype=np.int64)
    num_ranks = int(ranks_arr.size)
    if np.any(ranks_arr < 0) or np.any(ranks_arr > total):
        raise ValueError(f"ranks must lie in 0..{total}")
    if num_ranks > 1 and np.any(np.diff(ranks_arr) < 0):
        raise ValueError("ranks must be non-decreasing")

    # Per-rank candidate windows [lo, hi) on every PE.
    lo = np.zeros((num_ranks, p), dtype=np.int64)
    hi = np.tile(sizes, (num_ranks, 1))
    # Ranks 0 and n are trivially done (empty / full left part).
    done = np.zeros(num_ranks, dtype=bool)
    for t, k in enumerate(ranks_arr):
        if k == 0:
            hi[t] = 0
            done[t] = True
        elif k == total:
            lo[t] = sizes
            hi[t] = sizes
            done[t] = True

    iterations = 0
    max_iterations = 64 + 4 * int(np.ceil(np.log2(max(total, 2)))) * max(1, num_ranks)

    while not done.all():
        iterations += 1
        if iterations > max_iterations + total:
            raise RuntimeError("multisequence selection failed to converge")

        # --- choose pivots (replicated random choice per active rank) -----
        pivots = {}
        for t in range(num_ranks):
            if done[t]:
                continue
            widths = hi[t] - lo[t]
            remaining = int(widths.sum())
            if remaining == 0:
                # Window collapsed; the committed left part must match the rank.
                if int(lo[t].sum()) != int(ranks_arr[t]):
                    raise RuntimeError("multiselect window collapsed at wrong rank")
                done[t] = True
                continue
            u = int(comm.rng.integers(0, remaining))
            csum = np.cumsum(widths)
            q = int(np.searchsorted(csum, u, side="right"))
            offset = u - (int(csum[q - 1]) if q > 0 else 0)
            pos = int(lo[t, q] + offset)
            pivots[t] = (runs[q][pos], q, pos)
        if not pivots:
            continue

        # --- local counting: elements <= pivot inside the candidate window --
        counts = np.zeros((num_ranks, p), dtype=np.int64)
        search_ops = np.zeros(p, dtype=np.int64)
        for t, (pv, q, pos) in a_items(pivots):
            for i in range(p):
                lo_i, hi_i = int(lo[t, i]), int(hi[t, i])
                if hi_i <= lo_i:
                    continue
                window = runs[i][lo_i:hi_i]
                if i < q:
                    cnt = int(np.searchsorted(window, pv, side="right"))
                elif i > q:
                    cnt = int(np.searchsorted(window, pv, side="left"))
                else:
                    cnt = pos - lo_i + 1
                counts[t, i] = cnt
                search_ops[i] += 1
        if charge_local:
            comm.charge_local_many(
                [
                    comm.spec.comparison_ns
                    * 1e-9
                    * float(ops)
                    * max(1.0, np.log2(max(int(s), 2)))
                    for ops, s in zip(search_ops, sizes)
                ]
            )

        # --- one vector-valued all-reduce over all active ranks -----------
        totals = comm.allreduce_vec([counts[:, i] for i in range(p)])

        # --- narrow the candidate windows ---------------------------------
        for t, (pv, q, pos) in a_items(pivots):
            target = int(ranks_arr[t] - lo[t].sum())
            got = int(totals[t])
            if got <= target:
                # Everything <= pivot belongs to the left part.
                lo[t] += counts[t]
                if got == target:
                    hi[t] = lo[t]
                    done[t] = True
            else:
                # The left part is strictly inside the counted region; the
                # pivot itself (the largest counted element) is excluded.
                hi[t] = lo[t] + counts[t]
                hi[t, q] -= 1

    splits = lo
    # Sanity: row sums equal requested ranks.
    sums = splits.sum(axis=1)
    if not np.array_equal(sums, ranks_arr):
        raise RuntimeError("multisequence selection produced wrong rank sums")
    return MultiselectResult(splits=splits, iterations=iterations)


def a_items(d):
    """Deterministically ordered ``dict.items()`` (by key)."""
    return sorted(d.items())


def multisequence_select_flat(
    comm,
    local_sorted: DistArray,
    ranks: Sequence[int],
    charge_local: bool = True,
) -> MultiselectResult:
    """Flat-engine port of :func:`multisequence_select`.

    Operates on a :class:`DistArray` whose segments are individually sorted.
    The iteration structure (pivot choices from the replicated RNG, window
    narrowing, one vector all-reduce per round) is identical to the per-PE
    reference, so the charged costs and the resulting split matrix match it
    bit for bit.  The per-``(rank, PE)`` window counting is vectorised: for
    every PE, one pair of ``searchsorted`` calls over all active pivots
    replaces the per-rank binary-search loop — counting elements ``<=``
    pivot inside a window ``[lo, hi)`` of a sorted segment is
    ``clip(full-segment position, lo, hi) - lo``.
    """
    p = comm.size
    if local_sorted.p != p:
        raise ValueError("need one sorted segment per member PE")
    values = local_sorted.values
    offsets = local_sorted.offsets
    sizes = local_sorted.sizes()
    if values.size > 1:
        same_seg = local_sorted.segment_ids()
        interior = same_seg[1:] == same_seg[:-1]
        if np.any(values[1:][interior] < values[:-1][interior]):
            raise ValueError("local segments must be individually sorted")
    total = int(sizes.sum())
    ranks_arr = np.asarray(ranks, dtype=np.int64)
    num_ranks = int(ranks_arr.size)
    if np.any(ranks_arr < 0) or np.any(ranks_arr > total):
        raise ValueError(f"ranks must lie in 0..{total}")
    if num_ranks > 1 and np.any(np.diff(ranks_arr) < 0):
        raise ValueError("ranks must be non-decreasing")

    lo = np.zeros((num_ranks, p), dtype=np.int64)
    hi = np.tile(sizes, (num_ranks, 1))
    done = np.zeros(num_ranks, dtype=bool)
    for t, k in enumerate(ranks_arr):
        if k == 0:
            hi[t] = 0
            done[t] = True
        elif k == total:
            lo[t] = sizes
            hi[t] = sizes
            done[t] = True

    iterations = 0
    max_iterations = 64 + 4 * int(np.ceil(np.log2(max(total, 2)))) * max(1, num_ranks)
    nonempty_pes = np.flatnonzero(sizes > 0)

    while not done.all():
        iterations += 1
        if iterations > max_iterations + total:
            raise RuntimeError("multisequence selection failed to converge")

        # --- choose pivots: identical replicated-RNG consumption ----------
        pivots = {}
        for t in range(num_ranks):
            if done[t]:
                continue
            widths = hi[t] - lo[t]
            remaining = int(widths.sum())
            if remaining == 0:
                if int(lo[t].sum()) != int(ranks_arr[t]):
                    raise RuntimeError("multiselect window collapsed at wrong rank")
                done[t] = True
                continue
            u = int(comm.rng.integers(0, remaining))
            csum = np.cumsum(widths)
            q = int(np.searchsorted(csum, u, side="right"))
            offset = u - (int(csum[q - 1]) if q > 0 else 0)
            pos = int(lo[t, q] + offset)
            pivots[t] = (values[offsets[q] + pos], q, pos)
        if not pivots:
            continue

        active = np.asarray(sorted(pivots), dtype=np.int64)
        pvs = np.asarray([pivots[int(t)][0] for t in active])
        qs = np.asarray([pivots[int(t)][1] for t in active], dtype=np.int64)
        poss = np.asarray([pivots[int(t)][2] for t in active], dtype=np.int64)

        # --- vectorised window counting -----------------------------------
        counts = np.zeros((num_ranks, p), dtype=np.int64)
        search_ops = np.zeros(p, dtype=np.int64)
        for i in nonempty_pes:
            i = int(i)
            lo_i = lo[active, i]
            hi_i = hi[active, i]
            open_windows = hi_i > lo_i
            if not open_windows.any():
                continue
            seg = values[offsets[i]:offsets[i + 1]]
            pos_right = np.searchsorted(seg, pvs, side="right")
            pos_left = np.searchsorted(seg, pvs, side="left")
            full_pos = np.where(i < qs, pos_right, pos_left)
            cnt = np.clip(full_pos, lo_i, hi_i) - lo_i
            own = qs == i
            if own.any():
                cnt = np.where(own, poss - lo_i + 1, cnt)
            cnt = np.where(open_windows, cnt, 0)
            counts[active, i] = cnt
            search_ops[i] = int(np.count_nonzero(open_windows))
        if charge_local:
            comm.charge_local_many(
                [
                    comm.spec.comparison_ns
                    * 1e-9
                    * float(ops)
                    * max(1.0, np.log2(max(int(s), 2)))
                    for ops, s in zip(search_ops, sizes)
                ]
            )

        # --- one vector-valued all-reduce over all active ranks -----------
        totals = comm.allreduce_rows(counts.T)

        # --- narrow the candidate windows ---------------------------------
        for t, (pv, q, pos) in a_items(pivots):
            target = int(ranks_arr[t] - lo[t].sum())
            got = int(totals[t])
            if got <= target:
                lo[t] += counts[t]
                if got == target:
                    hi[t] = lo[t]
                    done[t] = True
            else:
                hi[t] = lo[t] + counts[t]
                hi[t, q] -= 1

    splits = lo
    sums = splits.sum(axis=1)
    if not np.array_equal(sums, ranks_arr):
        raise RuntimeError("multisequence selection produced wrong rank sums")
    return MultiselectResult(splits=splits, iterations=iterations)
