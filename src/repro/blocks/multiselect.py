"""Distributed multisequence selection (Section 4.1, Figure 2).

Given one locally *sorted* array per PE and a set of ``r`` target global
ranks, find for every PE and every rank a split position such that exactly
the requested number of elements lies to the left of the splits, and the
split is order-consistent (no element left of a split is larger than an
element right of it).

The algorithm is the distributed adaptation of quickselect described in the
paper:

1. pick a pivot uniformly at random among the remaining candidate elements —
   the same random number is used on all PEs (replicated randomness), and a
   prefix sum over the candidate counts locates the owning PE,
2. every PE performs a binary search for the pivot in its candidate range
   (``O(log(n/p))`` local work),
3. a global reduction compares the number of elements ``<=`` pivot with the
   requested rank and the search continues in the left or right part.

Duplicate keys are handled exactly, without materialising tie-break keys, by
using the implicit composite key ``(value, PE, position)``: the count of
elements "``<=`` pivot" on PE ``i`` includes equal elements only when
``i < q`` (pivot owner) or when ``i == q`` and the position does not exceed
the pivot's position.  This is precisely the scheme of Appendix D.

All ``r`` selections run simultaneously; every iteration uses a single
vector-valued reduction of length ``r`` (running time contribution
``O(r beta + alpha log p)`` per iteration, Equation (1) of the paper).

Pivot randomness: all active ranks of one iteration draw their pivot
positions with a *single* vectorised ``Generator.integers`` call on the
shared generator.  The generator defaults to the communicator's replicated
stream; the multi-level sorting algorithms pass a per-group stream
(:meth:`repro.sim.machine.SimulatedMachine.group_rng`) instead so that
sibling groups of one recursion level draw independently of each other —
the precondition for executing them in lockstep
(:func:`multisequence_select_batched`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.dist.array import DistArray
from repro.dist.flatops import concat_ranges, segmented_searchsorted


@dataclass
class MultiselectResult:
    """Result of a distributed multisequence selection.

    Attributes
    ----------
    splits:
        Integer matrix of shape ``(num_ranks, p)``; ``splits[t, i]`` is the
        number of elements of PE ``i``'s local array that belong to the left
        part for target rank ``t``.  Row sums equal the requested ranks.
    iterations:
        Number of pivot iterations executed (all ranks combined, i.e. the
        number of collective rounds).
    """

    splits: np.ndarray
    iterations: int

    def pieces_for_pe(self, pe: int, local_size: int) -> List[slice]:
        """Slices of PE ``pe``'s local array delimited by consecutive splits.

        For ``r - 1`` splitting ranks this returns ``r`` slices covering the
        whole local array.
        """
        bounds = [0] + [int(x) for x in self.splits[:, pe]] + [int(local_size)]
        for a, b in zip(bounds, bounds[1:]):
            if b < a:
                raise ValueError("split positions are not monotone")
        return [slice(a, b) for a, b in zip(bounds, bounds[1:])]


def multisequence_select(
    comm,
    local_sorted: Sequence[np.ndarray],
    ranks: Sequence[int],
    charge_local: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> MultiselectResult:
    """Run the distributed multisequence selection on communicator ``comm``.

    Parameters
    ----------
    comm:
        :class:`repro.sim.comm.Comm` of ``p`` PEs.
    local_sorted:
        One individually sorted array per member PE.
    ranks:
        Target global ranks, non-decreasing, each in ``0 .. n`` where ``n``
        is the total number of elements.
    charge_local:
        Charge the modelled local binary-search cost (disable for tests that
        only care about the data result).
    rng:
        Replicated random stream for the pivot draws; defaults to the
        communicator's shared generator.  The multi-level algorithms pass a
        per-group stream so sibling groups can run in lockstep.
    """
    p = comm.size
    if rng is None:
        rng = comm.rng
    if len(local_sorted) != p:
        raise ValueError("need one sorted array per member PE")
    runs = [np.asarray(a) for a in local_sorted]
    for i, a in enumerate(runs):
        if a.ndim != 1:
            raise ValueError(f"local array of rank {i} is not one-dimensional")
        if a.size > 1 and np.any(a[1:] < a[:-1]):
            raise ValueError(f"local array of rank {i} is not sorted")
    sizes = np.array([a.size for a in runs], dtype=np.int64)
    total = int(sizes.sum())
    ranks_arr = np.asarray(ranks, dtype=np.int64)
    num_ranks = int(ranks_arr.size)
    if np.any(ranks_arr < 0) or np.any(ranks_arr > total):
        raise ValueError(f"ranks must lie in 0..{total}")
    if num_ranks > 1 and np.any(np.diff(ranks_arr) < 0):
        raise ValueError("ranks must be non-decreasing")

    # Per-rank candidate windows [lo, hi) on every PE.
    lo = np.zeros((num_ranks, p), dtype=np.int64)
    hi = np.tile(sizes, (num_ranks, 1))
    # Ranks 0 and n are trivially done (empty / full left part).
    done = np.zeros(num_ranks, dtype=bool)
    for t, k in enumerate(ranks_arr):
        if k == 0:
            hi[t] = 0
            done[t] = True
        elif k == total:
            lo[t] = sizes
            hi[t] = sizes
            done[t] = True

    iterations = 0
    max_iterations = 64 + 4 * int(np.ceil(np.log2(max(total, 2)))) * max(1, num_ranks)

    while not done.all():
        iterations += 1
        if iterations > max_iterations + total:
            raise RuntimeError("multisequence selection failed to converge")

        # --- choose pivots (replicated random choice per active rank) -----
        draw_ts: List[int] = []
        bounds: List[int] = []
        for t in range(num_ranks):
            if done[t]:
                continue
            remaining = int((hi[t] - lo[t]).sum())
            if remaining == 0:
                # Window collapsed; the committed left part must match the rank.
                if int(lo[t].sum()) != int(ranks_arr[t]):
                    raise RuntimeError("multiselect window collapsed at wrong rank")
                done[t] = True
                continue
            draw_ts.append(t)
            bounds.append(remaining)
        if not draw_ts:
            continue
        # One vectorised draw for all active ranks of this iteration.
        us = rng.integers(0, np.asarray(bounds, dtype=np.int64))
        pivots = {}
        for t, u in zip(draw_ts, us):
            widths = hi[t] - lo[t]
            u = int(u)
            csum = np.cumsum(widths)
            q = int(np.searchsorted(csum, u, side="right"))
            offset = u - (int(csum[q - 1]) if q > 0 else 0)
            pos = int(lo[t, q] + offset)
            pivots[t] = (runs[q][pos], q, pos)

        # --- local counting: elements <= pivot inside the candidate window --
        counts = np.zeros((num_ranks, p), dtype=np.int64)
        search_ops = np.zeros(p, dtype=np.int64)
        for t, (pv, q, pos) in a_items(pivots):
            for i in range(p):
                lo_i, hi_i = int(lo[t, i]), int(hi[t, i])
                if hi_i <= lo_i:
                    continue
                window = runs[i][lo_i:hi_i]
                if i < q:
                    cnt = int(np.searchsorted(window, pv, side="right"))
                elif i > q:
                    cnt = int(np.searchsorted(window, pv, side="left"))
                else:
                    cnt = pos - lo_i + 1
                counts[t, i] = cnt
                search_ops[i] += 1
        if charge_local:
            comm.charge_local_many(
                [
                    comm.spec.comparison_ns
                    * 1e-9
                    * float(ops)
                    * max(1.0, np.log2(max(int(s), 2)))
                    for ops, s in zip(search_ops, sizes)
                ]
            )

        # --- one vector-valued all-reduce over all active ranks -----------
        totals = comm.allreduce_vec([counts[:, i] for i in range(p)])

        # --- narrow the candidate windows ---------------------------------
        for t, (pv, q, pos) in a_items(pivots):
            target = int(ranks_arr[t] - lo[t].sum())
            got = int(totals[t])
            if got <= target:
                # Everything <= pivot belongs to the left part.
                lo[t] += counts[t]
                if got == target:
                    hi[t] = lo[t]
                    done[t] = True
            else:
                # The left part is strictly inside the counted region; the
                # pivot itself (the largest counted element) is excluded.
                hi[t] = lo[t] + counts[t]
                hi[t, q] -= 1

    splits = lo
    # Sanity: row sums equal requested ranks.
    sums = splits.sum(axis=1)
    if not np.array_equal(sums, ranks_arr):
        raise RuntimeError("multisequence selection produced wrong rank sums")
    return MultiselectResult(splits=splits, iterations=iterations)


def a_items(d):
    """Deterministically ordered ``dict.items()`` (by key)."""
    return sorted(d.items())


def multisequence_select_flat(
    comm,
    local_sorted: DistArray,
    ranks: Sequence[int],
    charge_local: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> MultiselectResult:
    """Flat-engine port of :func:`multisequence_select`.

    Operates on a :class:`DistArray` whose segments are individually sorted.
    The iteration structure (pivot choices from the replicated RNG, window
    narrowing, one vector all-reduce per round) is identical to the per-PE
    reference, so the charged costs and the resulting split matrix match it
    bit for bit.  The per-``(rank, PE)`` window counting has no Python loop
    at all: one :func:`~repro.dist.flatops.segmented_searchsorted` call —
    the *two-sided* segmented binary search, side ``right`` for PEs before
    the pivot owner and ``left`` after it (Appendix D tie-breaking) — runs
    every open ``(rank, PE)`` window of the iteration in lockstep, restricted
    to the candidate windows.  On the pivot-owning PE the count comes from
    the pivot *position*, never from its value: with duplicate keys spanning
    PE boundaries a value-based count would include equal elements right of
    the pivot and overshoot the requested rank.
    """
    p = comm.size
    if rng is None:
        rng = comm.rng
    if local_sorted.p != p:
        raise ValueError("need one sorted segment per member PE")
    values = local_sorted.values
    offsets = local_sorted.offsets
    sizes = local_sorted.sizes()
    if values.size > 1:
        same_seg = local_sorted.segment_ids()
        interior = same_seg[1:] == same_seg[:-1]
        if np.any(values[1:][interior] < values[:-1][interior]):
            raise ValueError("local segments must be individually sorted")
    total = int(sizes.sum())
    ranks_arr = np.asarray(ranks, dtype=np.int64)
    num_ranks = int(ranks_arr.size)
    if np.any(ranks_arr < 0) or np.any(ranks_arr > total):
        raise ValueError(f"ranks must lie in 0..{total}")
    if num_ranks > 1 and np.any(np.diff(ranks_arr) < 0):
        raise ValueError("ranks must be non-decreasing")

    lo = np.zeros((num_ranks, p), dtype=np.int64)
    hi = np.tile(sizes, (num_ranks, 1))
    done = np.zeros(num_ranks, dtype=bool)
    for t, k in enumerate(ranks_arr):
        if k == 0:
            hi[t] = 0
            done[t] = True
        elif k == total:
            lo[t] = sizes
            hi[t] = sizes
            done[t] = True

    iterations = 0
    max_iterations = 64 + 4 * int(np.ceil(np.log2(max(total, 2)))) * max(1, num_ranks)
    pe_range = np.arange(p, dtype=np.int64)

    while not done.all():
        iterations += 1
        if iterations > max_iterations + total:
            raise RuntimeError("multisequence selection failed to converge")

        # --- choose pivots: identical replicated-RNG consumption ----------
        draw_ts: List[int] = []
        bounds: List[int] = []
        for t in range(num_ranks):
            if done[t]:
                continue
            remaining = int((hi[t] - lo[t]).sum())
            if remaining == 0:
                if int(lo[t].sum()) != int(ranks_arr[t]):
                    raise RuntimeError("multiselect window collapsed at wrong rank")
                done[t] = True
                continue
            draw_ts.append(t)
            bounds.append(remaining)
        if not draw_ts:
            continue
        us = rng.integers(0, np.asarray(bounds, dtype=np.int64))
        pivots = {}
        for t, u in zip(draw_ts, us):
            widths = hi[t] - lo[t]
            u = int(u)
            csum = np.cumsum(widths)
            q = int(np.searchsorted(csum, u, side="right"))
            offset = u - (int(csum[q - 1]) if q > 0 else 0)
            pos = int(lo[t, q] + offset)
            pivots[t] = (values[offsets[q] + pos], q, pos)

        active = np.asarray(sorted(pivots), dtype=np.int64)
        pvs = np.asarray([pivots[int(t)][0] for t in active])
        qs = np.asarray([pivots[int(t)][1] for t in active], dtype=np.int64)
        poss = np.asarray([pivots[int(t)][2] for t in active], dtype=np.int64)
        n_act = int(active.size)

        # --- segmented two-sided window counting (no per-PE loop) ---------
        lo_a = lo[active]
        hi_a = hi[active]
        open_w = hi_a > lo_a
        cnt = np.zeros((n_act, p), dtype=np.int64)
        flat_open = np.flatnonzero(open_w.ravel())
        if flat_open.size:
            pair_t = flat_open // p
            pair_pe = flat_open % p
            pos_in_seg = segmented_searchsorted(
                values,
                offsets,
                pvs[pair_t],
                pair_pe,
                side=pair_pe < qs[pair_t],
                lo=lo_a.ravel()[flat_open],
                hi=hi_a.ravel()[flat_open],
            )
            cnt.ravel()[flat_open] = pos_in_seg - lo_a.ravel()[flat_open]
        # The pivot owner counts by *position* (implicit (value, PE, pos)
        # key), which keeps duplicate runs spanning PE boundaries exact.
        own = pe_range[None, :] == qs[:, None]
        cnt = np.where(own, poss[:, None] - lo_a + 1, cnt)
        cnt = np.where(open_w, cnt, 0)
        counts = np.zeros((num_ranks, p), dtype=np.int64)
        counts[active] = cnt
        search_ops = open_w.sum(axis=0)
        if charge_local:
            comm.charge_local_many(
                [
                    comm.spec.comparison_ns
                    * 1e-9
                    * float(ops)
                    * max(1.0, np.log2(max(int(s), 2)))
                    for ops, s in zip(search_ops, sizes)
                ]
            )

        # --- one vector-valued all-reduce over all active ranks -----------
        totals = comm.allreduce_rows(counts.T)

        # --- narrow the candidate windows ---------------------------------
        for t, (pv, q, pos) in a_items(pivots):
            target = int(ranks_arr[t] - lo[t].sum())
            got = int(totals[t])
            if got <= target:
                lo[t] += counts[t]
                if got == target:
                    hi[t] = lo[t]
                    done[t] = True
            else:
                hi[t] = lo[t] + counts[t]
                hi[t, q] -= 1

    splits = lo
    sums = splits.sum(axis=1)
    if not np.array_equal(sums, ranks_arr):
        raise RuntimeError("multisequence selection produced wrong rank sums")
    return MultiselectResult(splits=splits, iterations=iterations)


def multisequence_select_batched(
    islands,
    local_sorted: DistArray,
    ranks_per_island: Sequence[Sequence[int]],
    rngs: Sequence[np.random.Generator],
    charge_local: bool = True,
) -> List[MultiselectResult]:
    """Run the multisequence selections of many disjoint PE groups in lockstep.

    ``islands`` is a :class:`~repro.sim.groups.GroupBatch`; segment ``i`` of
    ``local_sorted`` belongs to batch PE ``i`` (``islands.members[i]``) and
    is individually sorted.  Island ``k`` selects the target ranks
    ``ranks_per_island[k]`` within its own data using its own replicated
    pivot stream ``rngs[k]`` (one vectorised draw per iteration, exactly as
    :func:`multisequence_select_flat` does on a single communicator).

    Every pivot round advances *all* still-active islands at once: the
    window counting is one segmented two-sided binary search over every open
    ``(island, rank, PE)`` window in the batch, the local search cost is one
    whole-batch charge, and the per-island all-reduce becomes one
    :meth:`~repro.sim.groups.GroupBatch.charge_collective`.  Because the
    islands are disjoint and each consumes only its own RNG stream, every PE
    receives exactly the charge sequence of the island-by-island execution,
    so clocks, breakdowns and split matrices are byte-identical to running
    :func:`multisequence_select_flat` per island.
    """
    machine = islands.machine
    spec = machine.spec
    q_pes = int(islands.members.size)
    n_isl = islands.num_groups
    if local_sorted.p != q_pes:
        raise ValueError("need one sorted segment per batch PE")
    if len(ranks_per_island) != n_isl or len(rngs) != n_isl:
        raise ValueError("need one rank list and one RNG per island")
    values = local_sorted.values
    offsets = local_sorted.offsets
    sizes = local_sorted.sizes()
    if values.size > 1:
        seg = local_sorted.segment_ids()
        interior = seg[1:] == seg[:-1]
        if np.any(values[1:][interior] < values[:-1][interior]):
            raise ValueError("local segments must be individually sorted")

    isl_off = islands.offsets
    p_k = islands.sizes
    isl_total = np.add.reduceat(sizes, isl_off[:-1])

    nr_k = np.array([len(r) for r in ranks_per_island], dtype=np.int64)
    n_rows = int(nr_k.sum())
    row_off = np.zeros(n_isl + 1, dtype=np.int64)
    np.cumsum(nr_k, out=row_off[1:])
    if n_rows:
        ranks_flat = np.concatenate(
            [np.asarray(r, dtype=np.int64).reshape(-1) for r in ranks_per_island]
        )
    else:
        ranks_flat = np.empty(0, dtype=np.int64)
    row_isl = np.repeat(np.arange(n_isl, dtype=np.int64), nr_k)
    if np.any(ranks_flat < 0) or np.any(ranks_flat > isl_total[row_isl]):
        raise ValueError("ranks must lie within each island's element count")
    if n_rows > 1:
        same_isl = row_isl[1:] == row_isl[:-1]
        if np.any((ranks_flat[1:] - ranks_flat[:-1])[same_isl] < 0):
            raise ValueError("ranks must be non-decreasing within each island")

    # Flattened (rank row, PE) candidate windows: row r of island k spans
    # that island's batch PEs; all state lives in flat pair arrays.
    pair_cnt = p_k[row_isl]
    n_pairs = int(pair_cnt.sum())
    pair_off = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(pair_cnt, out=pair_off[1:])
    pair_pe = (
        concat_ranges(isl_off[row_isl], pair_cnt) if n_rows
        else np.empty(0, dtype=np.int64)
    )
    pair_row = np.repeat(np.arange(n_rows, dtype=np.int64), pair_cnt)
    pair_local = np.arange(n_pairs, dtype=np.int64) - pair_off[pair_row]
    pair_size = sizes[pair_pe]
    lo = np.zeros(n_pairs, dtype=np.int64)
    hi = pair_size.copy()
    row_done = np.zeros(n_rows, dtype=bool)

    # Trivial ranks (0 / island total) terminate immediately.
    triv0 = ranks_flat == 0
    trivN = ranks_flat == isl_total[row_isl]
    hi[np.repeat(triv0, pair_cnt)] = 0
    mN = np.repeat(trivN & ~triv0, pair_cnt)
    lo[mN] = pair_size[mN]
    hi[mN] = pair_size[mN]
    row_done |= triv0 | trivN

    iterations = np.zeros(n_isl, dtype=np.int64)
    max_iter = 64 + 4 * np.ceil(
        np.log2(np.maximum(isl_total, 2))
    ).astype(np.int64) * np.maximum(1, nr_k)
    # Round-invariant lookups, hoisted out of the pivot loop.
    pe_isl_map = np.repeat(np.arange(n_isl, dtype=np.int64), p_k)
    log_sizes = np.maximum(1.0, np.log2(np.maximum(sizes, 2)))

    while True:
        live_per_isl = np.bincount(row_isl[~row_done], minlength=n_isl)
        active_isl = np.flatnonzero(live_per_isl > 0)
        if active_isl.size == 0:
            break
        iterations[active_isl] += 1
        if np.any(iterations[active_isl] > (max_iter + isl_total)[active_isl]):
            raise RuntimeError("multisequence selection failed to converge")

        widths = hi - lo
        row_rem = np.add.reduceat(widths, pair_off[:-1])
        live = ~row_done
        collapsed = live & (row_rem == 0)
        if collapsed.any():
            lo_sum = np.add.reduceat(lo, pair_off[:-1])
            if np.any(lo_sum[collapsed] != ranks_flat[collapsed]):
                raise RuntimeError("multiselect window collapsed at wrong rank")
            row_done[collapsed] = True
        drawing = live & (row_rem > 0)
        draw_rows = np.flatnonzero(drawing)
        if draw_rows.size == 0:
            continue

        # --- pivot draws: one vectorised call per island, islands in order
        # (rows are laid out island-major, so each drawing island is one
        # contiguous slice — no per-island masks).
        us = np.empty(draw_rows.size, dtype=np.int64)
        d_isl = row_isl[draw_rows]
        d_vals = row_rem[draw_rows]
        d_bnd = np.flatnonzero(d_isl[1:] != d_isl[:-1]) + 1
        d_starts = np.concatenate([[0], d_bnd])
        d_ends = np.concatenate([d_bnd, [d_isl.size]])
        for a, b in zip(d_starts.tolist(), d_ends.tolist()):
            us[a:b] = rngs[int(d_isl[a])].integers(0, d_vals[a:b])

        # --- locate the pivots: segmented cumsum + segmented search -------
        csum = np.cumsum(widths)
        row_base = csum[pair_off[:-1]] - widths[pair_off[:-1]]
        seg_csum = csum - np.repeat(row_base, pair_cnt)
        q_local = segmented_searchsorted(seg_csum, pair_off, us, draw_rows, side="right")
        q_pair = pair_off[draw_rows] + q_local
        prev = np.where(q_local > 0, seg_csum[q_pair - 1], 0)
        pos_row = lo[q_pair] + (us - prev)
        owner_pe = pair_pe[q_pair]
        pv_row = values[offsets[owner_pe] + pos_row]

        # --- segmented two-sided window counting --------------------------
        cnt = np.zeros(n_pairs, dtype=np.int64)
        draw_idx_of_row = np.full(n_rows, -1, dtype=np.int64)
        draw_idx_of_row[draw_rows] = np.arange(draw_rows.size, dtype=np.int64)
        open_mask = np.repeat(drawing, pair_cnt) & (hi > lo)
        op = np.flatnonzero(open_mask)
        if op.size:
            di = draw_idx_of_row[pair_row[op]]
            pos_in_seg = segmented_searchsorted(
                values,
                offsets,
                pv_row[di],
                pair_pe[op],
                side=pair_local[op] < q_local[di],
                lo=lo[op],
                hi=hi[op],
            )
            cnt[op] = pos_in_seg - lo[op]
        # The owner counts by pivot *position* (implicit (value, PE, pos)
        # key) — exact with duplicate runs spanning PE boundaries.
        cnt[q_pair] = pos_row - lo[q_pair] + 1

        # --- local binary-search charge for every island that drew --------
        charged_isl = d_isl[d_starts]  # sorted unique (rows island-major)
        if charge_local:
            ops = np.bincount(pair_pe[op], minlength=q_pes) if op.size else \
                np.zeros(q_pes, dtype=np.int64)
            drawn = np.zeros(n_isl, dtype=bool)
            drawn[charged_isl] = True
            charged = drawn[pe_isl_map]
            times = spec.comparison_ns * 1e-9 * ops * log_sizes
            machine.advance_many(islands.members[charged], times[charged])

        # --- one vector all-reduce per drawing island ---------------------
        islands.select(charged_isl).charge_collective(nr_k[charged_isl])

        # --- narrow the candidate windows ---------------------------------
        row_cnt = np.add.reduceat(cnt, pair_off[:-1])
        lo_sum = np.add.reduceat(lo, pair_off[:-1])
        got = row_cnt[draw_rows]
        target = ranks_flat[draw_rows] - lo_sum[draw_rows]
        le = got <= target
        row_le = np.zeros(n_rows, dtype=bool)
        row_le[draw_rows] = le
        row_eq = np.zeros(n_rows, dtype=bool)
        row_eq[draw_rows] = got == target
        row_gt = np.zeros(n_rows, dtype=bool)
        row_gt[draw_rows] = ~le
        le_pairs = np.repeat(row_le, pair_cnt)
        lo = np.where(le_pairs, lo + cnt, lo)
        hi = np.where(np.repeat(row_eq, pair_cnt), lo, hi)
        row_done |= row_eq
        gt_pairs = np.repeat(row_gt, pair_cnt)
        hi = np.where(gt_pairs, lo + cnt, hi)
        hi[q_pair[~le]] -= 1

    if n_rows:
        row_sum = np.add.reduceat(lo, pair_off[:-1])
        if not np.array_equal(row_sum, ranks_flat):
            raise RuntimeError("multisequence selection produced wrong rank sums")
    results: List[MultiselectResult] = []
    for k in range(n_isl):
        pairs_lo = int(pair_off[row_off[k]])
        pairs_hi = int(pair_off[row_off[k + 1]])
        spl = lo[pairs_lo:pairs_hi].reshape(int(nr_k[k]), int(p_k[k]))
        results.append(
            MultiselectResult(splits=spl.copy(), iterations=int(iterations[k]))
        )
    return results
