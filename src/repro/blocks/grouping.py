"""Assigning consecutive buckets to PE groups (Section 6, Lemma 1, Appendix C).

After partitioning with ``b*r - 1`` splitters, AMS-sort knows the global size
of each of the ``b*r`` buckets.  It must assign *consecutive ranges* of
buckets to the ``r`` PE groups such that the maximum group load ``L`` is
minimised — a constrained bin-packing problem.  The paper solves it with

* a greedy **scanning algorithm** that, for a given bound ``L``, walks the
  bucket-size array and opens a new group whenever adding the next bucket
  would exceed ``L`` (it succeeds iff at most ``r`` groups are needed), and
* a search for the optimal ``L``:

  - plain binary search over the value range (``O(b r log n)``),
  - the accelerated search of Appendix C that tightens the bounds using the
    group sizes actually observed during scans and only considers the
    ``O(b r)`` candidate values that are sums of consecutive buckets.

Lemma 1 proves the scanning algorithm finds the optimal ``L``; the
test-suite verifies this against a brute-force dynamic program.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dist.flatops import _windowed_bisect, concat_ranges


@dataclass
class GroupingResult:
    """Result of a bucket-grouping computation.

    Attributes
    ----------
    boundaries:
        Bucket index boundaries: group ``g`` receives buckets
        ``boundaries[g] .. boundaries[g+1] - 1``.  ``len(boundaries) ==
        num_groups + 1``; trailing groups may be empty.
    bound:
        The load bound ``L`` for which the scan succeeded (maximum group
        load is ``<= bound``).
    group_loads:
        Total number of elements assigned to each group.
    scan_calls:
        Number of scanning passes performed while searching for the optimal
        ``L`` (reported so the Appendix C accelerations are observable).
    """

    boundaries: np.ndarray
    bound: int
    group_loads: np.ndarray
    scan_calls: int

    @property
    def max_load(self) -> int:
        """The realised maximum group load."""
        return int(self.group_loads.max(initial=0))


def scan_buckets_with_bound(
    bucket_sizes: Sequence[int], num_groups: int, bound: int
) -> Optional[np.ndarray]:
    """Greedy scan: pack buckets into at most ``num_groups`` groups of load ``<= bound``.

    Returns the boundaries array on success and ``None`` when the bound is
    infeasible.  A single bucket larger than ``bound`` always fails.

    Each group is found with one binary search over the prefix sums (the
    group ends before the first bucket that would push it past ``bound``),
    so a scan costs ``O(r log(br))`` instead of ``O(br)`` bucket steps.
    """
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    if num_groups <= 0:
        raise ValueError("need at least one group")
    if bound < 0:
        return None
    m = int(sizes.size)
    csum = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sizes, out=csum[1:])
    # The prefix sums are probed one point at a time; bisect on a plain
    # list is identical to ``np.searchsorted(..., side="right")`` and much
    # faster at these sizes (this is uncharged simulator bookkeeping).
    clist = csum.tolist()
    boundaries = [0]
    start = 0
    while start < m:
        end = bisect_right(clist, clist[start] + bound) - 1
        if end <= start:
            return None  # bucket `start` alone exceeds the bound
        if end >= m:
            break
        boundaries.append(end)
        if len(boundaries) - 1 >= num_groups:
            return None
        start = end
    while len(boundaries) < num_groups + 1:
        boundaries.append(m)
    return np.asarray(boundaries, dtype=np.int64)


def group_sizes_from_boundaries(
    bucket_sizes: Sequence[int], boundaries: Sequence[int]
) -> np.ndarray:
    """Total load of every group for given bucket boundaries."""
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    bnd = np.asarray(boundaries, dtype=np.int64)
    csum = np.concatenate([[0], np.cumsum(sizes)])
    return (csum[bnd[1:]] - csum[bnd[:-1]]).astype(np.int64)


def _scan_observing(
    sizes: np.ndarray, num_groups: int, bound: int,
    clist: Optional[List[int]] = None,
) -> Tuple[Optional[np.ndarray], int, int]:
    """Scan that also reports the Appendix C bound-update values.

    Returns ``(boundaries or None, largest_group, min_overflow)`` where
    ``largest_group`` is the largest group actually built (valid on success;
    it allows lowering the upper bound of the search) and ``min_overflow`` is
    the smallest value ``x + y`` observed when a bucket of size ``y`` did not
    fit on top of a group of size ``x`` (valid on failure; any bound below it
    reproduces the same failed partition, so it becomes the new lower bound).

    ``clist`` optionally supplies the bucket-size prefix sums (as a plain
    list), so the bound search does not recompute them on every probe.
    """
    m = int(sizes.size)
    if clist is None:
        csum = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(sizes, out=csum[1:])
        clist = csum.tolist()
    boundaries = [0]
    largest = 0
    min_overflow = np.iinfo(np.int64).max
    feasible = True
    start = 0
    # Jump scan: each group ends right before the first bucket that would
    # push it past the bound (one binary search over the prefix sums).  The
    # observed values match the sequential bucket-by-bucket walk: group
    # loads are the same, and the overflow recorded when a bucket does not
    # fit (`load + s`) or is too big by itself (`s`) yields the same
    # minimum because `s <= load + s`.
    while start < m:
        end = bisect_right(clist, clist[start] + bound) - 1
        load = clist[end] - clist[start]
        if end >= m:
            largest = max(largest, load)
            break
        overflow = clist[end + 1] - clist[start]
        if int(sizes[end]) > bound:
            # The non-fitting bucket is too big for any group: the
            # sequential scan stops here without closing the current group.
            feasible = False
            largest = max(largest, load)
            min_overflow = min(min_overflow, int(sizes[end]))
            break
        min_overflow = min(min_overflow, overflow)
        boundaries.append(end)
        largest = max(largest, load)
        if len(boundaries) - 1 >= num_groups:
            feasible = False
            break
        start = end
    if not feasible:
        return None, largest, int(min_overflow)
    while len(boundaries) < num_groups + 1:
        boundaries.append(m)
    return np.asarray(boundaries, dtype=np.int64), largest, int(min_overflow)


def optimal_bucket_grouping(
    bucket_sizes: Sequence[int],
    num_groups: int,
    method: str = "accelerated",
) -> GroupingResult:
    """Find the minimal load bound ``L`` and the corresponding grouping.

    Parameters
    ----------
    bucket_sizes:
        Global sizes of the ``b*r`` buckets.
    num_groups:
        Number of PE groups ``r``.
    method:
        ``'binary'`` — plain binary search over the numeric range
        (the simple sequential algorithm of Section 6);
        ``'accelerated'`` — binary search with the Appendix C bound updates
        (lower bound from failed scans, upper bound from successful scans),
        which converges in far fewer scans;
        ``'candidates'`` — search restricted to the values that are sums of
        consecutive buckets (the second Appendix C observation); exact but
        ``O((b r)^2)`` candidate generation, useful for testing.
    """
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    if np.any(sizes < 0):
        raise ValueError("bucket sizes must be non-negative")
    if num_groups <= 0:
        raise ValueError("need at least one group")
    total = int(sizes.sum())
    if sizes.size == 0 or total == 0:
        boundaries = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.full(num_groups, sizes.size, dtype=np.int64)]
        )
        return GroupingResult(
            boundaries=boundaries,
            bound=0,
            group_loads=np.zeros(num_groups, dtype=np.int64),
            scan_calls=0,
        )

    lower = max(int(sizes.max()), int(np.ceil(total / num_groups)))
    upper = total
    scan_calls = 0
    best: Optional[np.ndarray] = None
    best_bound = upper

    if method == "binary":
        lo, hi = lower, upper
        while lo <= hi:
            mid = (lo + hi) // 2
            scan_calls += 1
            boundaries = scan_buckets_with_bound(sizes, num_groups, mid)
            if boundaries is not None:
                best, best_bound = boundaries, mid
                hi = mid - 1
            else:
                lo = mid + 1
    elif method == "accelerated":
        csum = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=csum[1:])
        clist = csum.tolist()
        lo, hi = lower, upper
        while lo <= hi:
            mid = (lo + hi) // 2
            scan_calls += 1
            boundaries, largest, min_overflow = _scan_observing(
                sizes, num_groups, mid, clist
            )
            if boundaries is not None:
                best = boundaries
                best_bound = largest  # tighten to the largest group actually used
                hi = min(mid, largest) - 1
            else:
                lo = max(mid + 1, min_overflow)
    elif method == "candidates":
        csum = np.concatenate([[0], np.cumsum(sizes)])
        candidates = set()
        for i in range(sizes.size):
            for j in range(i + 1, sizes.size + 1):
                value = int(csum[j] - csum[i])
                if value >= lower:
                    candidates.add(value)
        for value in sorted(candidates):
            scan_calls += 1
            boundaries = scan_buckets_with_bound(sizes, num_groups, value)
            if boundaries is not None:
                best, best_bound = boundaries, value
                break
    else:
        raise ValueError(f"unknown grouping method {method!r}")

    if best is None:
        # A bound of `total` always succeeds with a single group.
        scan_calls += 1
        best = scan_buckets_with_bound(sizes, num_groups, total)
        best_bound = total
        assert best is not None

    loads = group_sizes_from_boundaries(sizes, best)
    return GroupingResult(
        boundaries=best,
        bound=int(max(best_bound, loads.max(initial=0))),
        group_loads=loads,
        scan_calls=scan_calls,
    )


@dataclass
class BatchedGroupingResult:
    """Result of :func:`optimal_bucket_grouping_batched` for a batch of islands.

    All per-island vectors are concatenated back to back; island ``k`` owns
    ``boundaries[bnd_offsets[k]:bnd_offsets[k+1]]`` (``num_groups[k] + 1``
    entries) and ``group_loads[load_offsets[k]:load_offsets[k+1]]``
    (``num_groups[k]`` entries).  Every field is byte-identical to running
    :func:`optimal_bucket_grouping` with ``method='accelerated'`` island by
    island.
    """

    boundaries: np.ndarray
    bnd_offsets: np.ndarray
    bounds: np.ndarray
    group_loads: np.ndarray
    load_offsets: np.ndarray
    scan_calls: np.ndarray

    @property
    def num_islands(self) -> int:
        return int(self.bnd_offsets.size) - 1

    def result_for(self, k: int) -> GroupingResult:
        """Island ``k``'s grouping as a plain :class:`GroupingResult`."""
        return GroupingResult(
            boundaries=self.boundaries[self.bnd_offsets[k]:self.bnd_offsets[k + 1]],
            bound=int(self.bounds[k]),
            group_loads=self.group_loads[self.load_offsets[k]:self.load_offsets[k + 1]],
            scan_calls=int(self.scan_calls[k]),
        )

    def bucket_group_lut(self) -> np.ndarray:
        """Concatenated bucket → group lookup tables of all islands.

        Island ``k``'s slice has one entry per bucket mapping its bucket
        index to its destination group — identical to
        ``np.repeat(np.arange(r_k), np.diff(boundaries_k))`` island by
        island, built in one shot for the whole batch.
        """
        r = np.diff(self.load_offsets)
        lo = concat_ranges(self.bnd_offsets[:-1], r)
        widths = self.boundaries[lo + 1] - self.boundaries[lo]
        group_ids = np.arange(int(r.sum()), dtype=np.int64) - np.repeat(
            self.load_offsets[:-1], r
        )
        return np.repeat(group_ids, widths)


_INT64_MAX = np.iinfo(np.int64).max


def optimal_bucket_grouping_batched(
    bucket_sizes: np.ndarray,
    offsets: np.ndarray,
    num_groups: np.ndarray,
) -> BatchedGroupingResult:
    """Appendix C bound searches for many islands in lockstep.

    Island ``k`` owns the bucket sizes
    ``bucket_sizes[offsets[k]:offsets[k+1]]`` and packs them into
    ``num_groups[k]`` groups.  Every island runs the exact probe sequence of
    ``optimal_bucket_grouping(..., method='accelerated')`` — same binary
    search midpoints, same Appendix C bound updates from the observed
    ``largest_group`` / ``min_overflow`` values — but all islands advance as
    vectors: one outer iteration probes every still-searching island's
    midpoint, and the greedy scans run as a lockstep jump scan whose
    prefix-sum probes are one whole-batch bisection over the concatenated
    per-island prefix sums.  Boundaries, bounds, group loads and scan counts
    are byte-identical to the per-island search.
    """
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    num_groups = np.asarray(num_groups, dtype=np.int64)
    n = int(offsets.size) - 1
    if num_groups.shape != (n,):
        raise ValueError("need one group count per island")
    if np.any(num_groups <= 0):
        raise ValueError("need at least one group")
    if sizes.size and int(sizes.min()) < 0:
        raise ValueError("bucket sizes must be non-negative")

    m = np.diff(offsets)
    b_cnt = num_groups + 1
    b_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(b_cnt, out=b_off[1:])
    l_off = b_off - np.arange(n + 1, dtype=np.int64)
    bounds_out = np.zeros(n, dtype=np.int64)
    scan_calls = np.zeros(n, dtype=np.int64)
    # Default boundaries [0, m, m, ..., m]: the trivial (empty/zero-total)
    # result, and the padding successful scans fill up to.
    bnd = np.repeat(m, b_cnt)
    bnd[b_off[:-1]] = 0
    if n == 0:
        e = np.empty(0, dtype=np.int64)
        return BatchedGroupingResult(bnd, b_off, e, e.copy(), l_off, scan_calls)

    # Per-island prefix sums with a leading zero, all islands back to back.
    cs_off = offsets + np.arange(n + 1, dtype=np.int64)
    gcs = np.zeros(int(cs_off[-1]), dtype=np.int64)
    if sizes.size:
        c = np.cumsum(sizes)
        ctot = np.zeros(sizes.size + 1, dtype=np.int64)
        ctot[1:] = c
        tot = ctot[offsets[1:]] - ctot[offsets[:-1]]
        gcs[concat_ranges(cs_off[:-1] + 1, m)] = c - np.repeat(ctot[offsets[:-1]], m)
    else:
        tot = np.zeros(n, dtype=np.int64)

    done = (m == 0) | (tot == 0)
    has_best = done.copy()
    nontrivial = np.flatnonzero(~done)
    lo = np.ones(n, dtype=np.int64)
    hi = tot.copy()
    if nontrivial.size:
        # max.reduceat segments span from each nontrivial island's first
        # bucket to the next one's; the islands skipped in between are
        # trivial (no buckets, or all-zero buckets), so the spans only add
        # zeros and the per-island maxima are unaffected.
        max_bucket = np.maximum.reduceat(sizes, offsets[:-1][nontrivial])
        lo[nontrivial] = np.maximum(max_bucket, -(-tot[nontrivial] // num_groups[nontrivial]))

    # Full-width search state (one slot per island; inactive islands are
    # masked out of every update).
    cand = bnd.copy()
    mid = np.zeros(n, dtype=np.int64)
    n_bnd = np.ones(n, dtype=np.int64)
    isl_of_slot = np.repeat(np.arange(n, dtype=np.int64), b_cnt)
    slot_j = np.arange(int(b_off[-1]), dtype=np.int64) - np.repeat(b_off[:-1], b_cnt)
    base = cs_off[:-1]

    while True:
        act = ~done & (lo <= hi)
        if not act.any():
            break
        mid = np.where(act, (lo + hi) >> 1, mid)
        scan_calls[act] += 1

        # --- lockstep jump scan of all probing islands -----------------
        start = np.zeros(n, dtype=np.int64)
        n_bnd[:] = 1
        largest = np.zeros(n, dtype=np.int64)
        min_ovf = np.full(n, _INT64_MAX, dtype=np.int64)
        feasible = act.copy()
        running = act.copy()
        while running.any():
            wlo = np.where(running, base + start + 1, 0)
            whi = np.where(running, base + m + 1, 0)
            q = gcs[np.where(running, base + start, 0)] + mid
            pos = _windowed_bisect(gcs, q, wlo, whi, right=True)
            end = np.where(running, pos - 1 - base, 0)
            load = gcs[np.where(running, base + end, 0)] - gcs[np.where(running, base + start, 0)]
            at_end = running & (end == m)
            cont = running & ~at_end
            ovf = gcs[np.where(cont, base + end + 1, 0)] - gcs[np.where(cont, base + start, 0)]
            size_end = sizes[np.where(cont, offsets[:-1] + end, 0)] if sizes.size else ovf
            too_big = cont & (size_end > mid)
            fits = cont & ~too_big
            largest = np.where(running, np.maximum(largest, load), largest)
            min_ovf = np.where(too_big, np.minimum(min_ovf, size_end), min_ovf)
            min_ovf = np.where(fits, np.minimum(min_ovf, ovf), min_ovf)
            fidx = np.flatnonzero(fits)
            if fidx.size:
                cand[b_off[fidx] + n_bnd[fidx]] = end[fidx]
                n_bnd[fits] += 1
            exceeded = fits & (n_bnd - 1 >= num_groups)
            feasible &= ~(too_big | exceeded)
            start = np.where(fits & ~exceeded, end, start)
            running = fits & ~exceeded

        # --- Appendix C bound updates ----------------------------------
        succ = act & feasible
        fail = act & ~feasible
        if succ.any():
            smask = succ[isl_of_slot]
            keep = slot_j < n_bnd[isl_of_slot]
            bnd[smask] = np.where(keep[smask], cand[smask], m[isl_of_slot][smask])
            bounds_out = np.where(succ, largest, bounds_out)
            has_best |= succ
            hi = np.where(succ, np.minimum(mid, largest) - 1, hi)
        if fail.any():
            lo = np.where(fail, np.maximum(mid + 1, min_ovf), lo)

    # Defensive fallback, mirroring the per-island search: a bound of the
    # island total always succeeds with a single group.  Unreachable for the
    # accelerated probe sequence (the search cannot exhaust its window
    # without probing a feasible bound), but kept for exact parity.
    for k in np.flatnonzero(~has_best):  # pragma: no cover
        scan_calls[k] += 1
        bk = scan_buckets_with_bound(
            sizes[offsets[k]:offsets[k + 1]], int(num_groups[k]), int(tot[k])
        )
        assert bk is not None
        bnd[b_off[k]:b_off[k + 1]] = bk
        bounds_out[k] = tot[k]

    # Group loads from the boundary prefix sums, all islands at once.
    load_lo = concat_ranges(b_off[:-1], num_groups)
    cs_base = np.repeat(base, num_groups)
    loads = gcs[cs_base + bnd[load_lo + 1]] - gcs[cs_base + bnd[load_lo]]
    max_load = np.maximum.reduceat(loads, l_off[:-1]) if loads.size else \
        np.zeros(n, dtype=np.int64)
    bounds_out = np.maximum(bounds_out, max_load)
    return BatchedGroupingResult(
        boundaries=bnd,
        bnd_offsets=b_off,
        bounds=bounds_out,
        group_loads=loads,
        load_offsets=l_off,
        scan_calls=scan_calls,
    )


def bucket_to_group(boundaries: np.ndarray, bucket_idx: np.ndarray) -> np.ndarray:
    """Vectorised bucket-index → group-index mapping for a grouping result.

    ``boundaries`` is the :class:`GroupingResult` boundary vector
    (``num_groups + 1`` entries); ``bucket_idx`` may be any shape.  Used by
    the flat engine to route all elements of the machine in one call.
    """
    boundaries = np.asarray(boundaries, dtype=np.int64)
    bucket_idx = np.asarray(bucket_idx, dtype=np.int64)
    if boundaries.size <= 2:
        return np.zeros(bucket_idx.shape, dtype=np.int64)
    # A direct bucket -> group lookup table beats a binary search per
    # element (the number of buckets is small, the element count is not).
    # The table covers buckets 0 .. boundaries[-1] - 1 because boundaries
    # are non-decreasing and start at 0 (GroupingResult invariant).
    num_groups = int(boundaries.size) - 1
    lut = np.repeat(
        np.arange(num_groups, dtype=np.int64), np.diff(boundaries)
    )
    return lut[bucket_idx]


def optimal_max_load_dp(bucket_sizes: Sequence[int], num_groups: int) -> int:
    """Exact optimal maximum group load via dynamic programming.

    ``O(r * (br)^2)`` reference used by the test-suite to validate Lemma 1
    (that the scanning/binary-search approach is optimal).
    """
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    m = sizes.size
    if m == 0:
        return 0
    csum = np.concatenate([[0], np.cumsum(sizes)])
    inf = np.iinfo(np.int64).max
    # dp[g][i]: minimal possible maximum load when the first i buckets are
    # split into at most g groups.
    prev = np.where(np.arange(m + 1) == 0, 0, inf).astype(np.int64)
    prev = np.empty(m + 1, dtype=np.int64)
    for i in range(m + 1):
        prev[i] = int(csum[i])  # one group takes everything
    for g in range(2, num_groups + 1):
        cur = np.empty(m + 1, dtype=np.int64)
        cur[0] = 0
        for i in range(1, m + 1):
            best = prev[i]
            for j in range(i):
                candidate = max(int(prev[j]), int(csum[i] - csum[j]))
                if candidate < best:
                    best = candidate
            cur[i] = best
        prev = cur
    return int(prev[m])
