"""Data delivery to PE groups (Section 4.3, Section 4.3.1, Appendix A).

Both multi-level algorithms face the same redistribution problem: every PE
has partitioned its local data into ``r`` pieces and piece ``j`` must be
moved to PE *group* ``j`` such that all PEs of a group receive (almost) the
same amount of data, every piece is sent to only one or two consecutive
target PEs, and — crucially for scalability — no PE receives too many tiny
messages.

Four strategies are implemented, mirroring the paper:

``naive``
    The plain prefix-sum enumeration (beginning of Section 4.3): correct and
    perfectly balanced, but adversarial inputs can force ``Omega(p)`` tiny
    messages onto a single receiver (Figure 3, top).

``randomized``
    The first-stage fix: the PE numbering used for the prefix sum is a
    pseudorandom permutation per group (Figure 3, bottom), which spreads the
    tiny pieces over all receivers with high probability.

``deterministic``
    The two-phase deterministic algorithm of Section 4.3.1 (Figure 4): small
    pieces (size at most ``n / (2 p r)``) are assigned whole via a prefix
    sum, then large pieces fill the residual capacities.  Guarantees
    ``O(r)`` messages per PE.

``advanced``
    The advanced randomized algorithm of Appendix A: pieces larger than
    ``s = a*n/(r*p)`` are broken into chunks of size ``s``, chunk descriptors
    are delegated to pseudorandom PEs, and the per-group enumeration order is
    randomized, giving ``<= 1 + 2r(1 + 1/a)`` received messages w.h.p.
    (Lemma 6, Theorem 4).

All strategies deliver exactly the same multiset of elements to each group
and differ only in how the elements of a group are laid out across its PEs
and in the number of messages used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks.feistel import FeistelPermutation
from repro.machine.counters import PHASE_DATA_DELIVERY
from repro.sim.exchange import ExchangeResult


DELIVERY_METHODS = ("naive", "randomized", "deterministic", "advanced")


@dataclass
class DeliveryResult:
    """Outcome of a data delivery step.

    Attributes
    ----------
    received:
        ``received[i]`` is the list of arrays PE ``i`` (local rank within the
        delivering communicator) holds after the delivery — network messages
        and locally retained pieces, ordered by sending PE.
    received_sizes:
        Total number of elements each PE holds after the delivery.
    group_of_rank:
        Group index of every local rank.
    group_loads:
        Total number of elements delivered to each group.
    group_capacity:
        The per-PE capacity bound used for each group (elements).
    exchange:
        The underlying :class:`ExchangeResult` (message statistics).
    method:
        Strategy that produced this result.
    """

    received: List[List[np.ndarray]]
    received_sizes: np.ndarray
    group_of_rank: np.ndarray
    group_loads: np.ndarray
    group_capacity: np.ndarray
    exchange: ExchangeResult
    method: str

    def received_concat(self, local_rank: int) -> np.ndarray:
        """All data held by ``local_rank`` after delivery, concatenated."""
        pieces = [p for p in self.received[local_rank] if p.size > 0]
        if not pieces:
            for p in self.received[local_rank]:
                return p[:0].copy()
            return np.empty(0, dtype=np.float64)
        return np.concatenate(pieces)

    def max_received_messages(self) -> int:
        """Maximum number of network messages received by any PE."""
        return int(self.exchange.messages_received.max(initial=0))

    def max_sent_messages(self) -> int:
        """Maximum number of network messages sent by any PE."""
        return int(self.exchange.messages_sent.max(initial=0))


def _piece_sizes(pieces: Sequence[Sequence[np.ndarray]], p: int, r: int) -> np.ndarray:
    sizes = np.zeros((p, r), dtype=np.int64)
    for i in range(p):
        if len(pieces[i]) != r:
            raise ValueError(
                f"PE {i} provided {len(pieces[i])} pieces, expected one per group ({r})"
            )
        for j in range(r):
            sizes[i, j] = int(np.asarray(pieces[i][j]).size)
    return sizes


def _group_layout(groups) -> Tuple[np.ndarray, np.ndarray]:
    """Start rank (within the parent communicator) and size of every group."""
    starts = []
    sizes = []
    offset = 0
    for g in groups:
        starts.append(offset)
        sizes.append(g.size)
        offset += g.size
    return np.asarray(starts, dtype=np.int64), np.asarray(sizes, dtype=np.int64)


def _positions_to_destinations(
    start: int, count: int, block: int, group_start: int, group_size: int
) -> List[Tuple[int, int, int]]:
    """Map the position range ``[start, start+count)`` to destination PEs.

    Returns ``(dest_rank, offset_in_piece, length)`` triples where
    ``dest_rank`` is a local rank of the parent communicator.  Positions are
    laid out in blocks of ``block`` consecutive positions per PE.
    """
    out: List[Tuple[int, int, int]] = []
    if count <= 0:
        return out
    block = max(1, int(block))
    pos = start
    consumed = 0
    while consumed < count:
        pe_in_group = min(group_size - 1, pos // block)
        pe_end = (pe_in_group + 1) * block if pe_in_group < group_size - 1 else start + count
        take = min(count - consumed, max(1, pe_end - pos))
        out.append((int(group_start + pe_in_group), consumed, int(take)))
        pos += take
        consumed += take
    return out


def _assign_by_prefix(
    sizes: np.ndarray,
    pieces: Sequence[Sequence[np.ndarray]],
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
    order_per_group: Optional[List[np.ndarray]] = None,
) -> Tuple[List[List[Tuple[int, np.ndarray]]], np.ndarray, np.ndarray]:
    """Prefix-sum position assignment shared by the naive/randomized/advanced paths.

    ``order_per_group[j]`` gives the order in which the pieces of group ``j``
    are enumerated (indices into the sending PEs); ``None`` means natural
    order (the naive algorithm).
    """
    p, r = sizes.shape
    outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    for j in range(r):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        block = int(math.ceil(m_j / p_g)) if m_j > 0 else 1
        capacities[j] = block
        order = order_per_group[j] if order_per_group is not None else np.arange(p)
        offset = 0
        for i in order:
            i = int(i)
            size = int(sizes[i, j])
            if size == 0:
                continue
            targets = _positions_to_destinations(
                offset, size, block, int(group_starts[j]), p_g
            )
            piece = np.asarray(pieces[i][j])
            for dest, piece_off, length in targets:
                outboxes[i].append((dest, piece[piece_off:piece_off + length]))
            offset += size
    return outboxes, group_loads, capacities


def _assign_deterministic(
    sizes: np.ndarray,
    pieces: Sequence[Sequence[np.ndarray]],
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
) -> Tuple[List[List[Tuple[int, np.ndarray]]], np.ndarray, np.ndarray]:
    """The two-phase deterministic assignment of Section 4.3.1."""
    p, r = sizes.shape
    total = int(sizes.sum())
    outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    threshold = max(1, total // (2 * p * r)) if total > 0 else 1

    for j in range(r):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        group_start = int(group_starts[j])
        if m_j == 0:
            capacities[j] = 0
            continue
        cap = int(math.ceil(m_j / p_g))
        piece_sizes_j = sizes[:, j]
        small_senders = np.flatnonzero((piece_sizes_j > 0) & (piece_sizes_j <= threshold))
        large_senders = np.flatnonzero(piece_sizes_j > threshold)

        # Phase 1: small pieces are assigned whole, round-robin by their
        # enumeration index (piece s goes to group PE floor(s / r)).
        load = np.zeros(p_g, dtype=np.int64)
        for s_idx, i in enumerate(small_senders):
            pe_in_group = min(p_g - 1, s_idx // max(1, r))
            dest = group_start + pe_in_group
            outboxes[int(i)].append((dest, np.asarray(pieces[int(i)][j])))
            load[pe_in_group] += int(piece_sizes_j[i])

        # Phase 2: large pieces fill the residual capacities.
        large_total = int(piece_sizes_j[large_senders].sum())
        residual = np.maximum(0, cap - load)
        if residual.sum() < large_total:
            bump = int(math.ceil((large_total - int(residual.sum())) / p_g))
            cap += bump
            residual = np.maximum(0, cap - load)
        capacities[j] = int(cap)
        if large_total > 0:
            res_prefix = np.concatenate([[0], np.cumsum(residual)])
            offset = 0
            for i in large_senders:
                i = int(i)
                size = int(piece_sizes_j[i])
                piece = np.asarray(pieces[i][j])
                consumed = 0
                pos = offset
                while consumed < size:
                    # slot `pos` belongs to the PE whose residual range contains it
                    pe_in_group = int(np.searchsorted(res_prefix, pos, side="right")) - 1
                    pe_in_group = min(pe_in_group, p_g - 1)
                    pe_room_end = int(res_prefix[pe_in_group + 1]) if pe_in_group + 1 < res_prefix.size else pos + (size - consumed)
                    take = min(size - consumed, max(1, pe_room_end - pos))
                    dest = group_start + pe_in_group
                    outboxes[i].append((dest, piece[consumed:consumed + take]))
                    pos += take
                    consumed += take
                offset += size
        else:
            capacities[j] = int(cap)
    return outboxes, group_loads, capacities


def _advanced_orders(
    sizes: np.ndarray,
    group_sizes: np.ndarray,
    seed: int,
    oversplit: float,
) -> Tuple[List[List[Tuple[int, int, int]]], int]:
    """Chunk lists for the advanced randomized algorithm.

    Returns, per group, a pseudorandomly ordered list of chunks
    ``(sender, offset, length)`` plus the number of delegated (large) chunks
    over all groups (used to charge the descriptor exchange).
    """
    p, r = sizes.shape
    total = int(sizes.sum())
    limit = max(1, int(math.ceil(oversplit * total / max(1, r * p)))) if total > 0 else 1
    per_group: List[List[Tuple[int, int, int]]] = []
    delegated = 0
    for j in range(r):
        chunks: List[Tuple[int, int, int]] = []
        for i in range(p):
            size = int(sizes[i, j])
            if size == 0:
                continue
            if size <= limit:
                chunks.append((i, 0, size))
            else:
                off = 0
                while off < size:
                    length = min(limit, size - off)
                    chunks.append((i, off, length))
                    off += length
                    delegated += 1
        if len(chunks) > 1:
            perm = FeistelPermutation(len(chunks), seed=seed * 7919 + j)
            order = np.argsort(perm.permutation_array(), kind="stable")
            chunks = [chunks[int(t)] for t in order]
        per_group.append(chunks)
    return per_group, delegated


def deliver_to_groups(
    comm,
    groups,
    pieces: Sequence[Sequence[np.ndarray]],
    method: str = "deterministic",
    seed: int = 0,
    oversplit: Optional[float] = None,
    phase: str = PHASE_DATA_DELIVERY,
    schedule: str = "sparse",
) -> DeliveryResult:
    """Deliver per-PE pieces to PE groups and return the received data.

    Parameters
    ----------
    comm:
        Parent communicator whose PEs hold the pieces.
    groups:
        Sub-communicators from ``comm.split(r)``; group ``j`` receives the
        ``j``-th piece of every PE.
    pieces:
        ``pieces[i][j]`` is the piece of local rank ``i`` destined for group
        ``j``.  Pieces may be empty.
    method:
        One of :data:`DELIVERY_METHODS`.
    seed:
        Seed for the pseudorandom permutations of the randomized methods.
    oversplit:
        The tuning parameter ``a`` of the advanced algorithm (chunk size
        ``a * n / (r p)``); defaults to ``max(1, sqrt(r / ln(max(r*p, 2))))``
        following Lemma 6.
    phase:
        Phase name to attribute the modelled time to.
    schedule:
        Exchange schedule (``'sparse'`` or ``'dense'``).
    """
    if method not in DELIVERY_METHODS:
        raise ValueError(f"unknown delivery method {method!r}; choose from {DELIVERY_METHODS}")
    p = comm.size
    r = len(groups)
    if r == 0:
        raise ValueError("need at least one target group")
    sizes = _piece_sizes(pieces, p, r)
    group_starts, group_sizes = _group_layout(groups)
    if int(group_sizes.sum()) != p:
        raise ValueError("groups must partition the parent communicator")

    with comm.phase(phase):
        # The vector-valued prefix sum over piece sizes (cost accounting for
        # the enumeration step; the actual positions are computed below).
        comm.exscan_vec([sizes[i] for i in range(p)])

        if method == "naive":
            outboxes, group_loads, capacities = _assign_by_prefix(
                sizes, pieces, group_starts, group_sizes, order_per_group=None
            )
        elif method == "randomized":
            orders = []
            for j in range(r):
                perm = FeistelPermutation(p, seed=seed * 104729 + j)
                orders.append(np.argsort(perm.permutation_array(), kind="stable"))
            outboxes, group_loads, capacities = _assign_by_prefix(
                sizes, pieces, group_starts, group_sizes, order_per_group=orders
            )
        elif method == "deterministic":
            outboxes, group_loads, capacities = _assign_deterministic(
                sizes, pieces, group_starts, group_sizes
            )
        else:  # advanced
            a_param = oversplit
            if a_param is None:
                a_param = max(1.0, math.sqrt(r / math.log(max(r * p, 2))))
            chunk_lists, delegated = _advanced_orders(sizes, group_sizes, seed, a_param)
            # Descriptor delegation: every delegated chunk sends a constant
            # size descriptor to a pseudorandom PE (Appendix A); modelled as
            # a small exchange.
            if delegated > 0:
                desc_out: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
                perm = FeistelPermutation(max(delegated, 1), seed=seed * 15485863 + 1)
                t = 0
                for j, chunks in enumerate(chunk_lists):
                    for (i, off, length) in chunks:
                        if length < 1:
                            continue
                        # only chunks from broken-up pieces are delegated
                        if sizes[i, j] > length or off > 0:
                            dest = int(perm.apply(t % max(delegated, 1))) % p
                            desc_out[i].append((dest, np.zeros(3, dtype=np.int64)))
                            t += 1
                comm.exchange(desc_out, schedule=schedule, charge_copy=False)
            # Build outboxes from the chunk enumeration order.
            outboxes = [[] for _ in range(p)]
            group_loads = sizes.sum(axis=0)
            capacities = np.zeros(r, dtype=np.int64)
            for j, chunks in enumerate(chunk_lists):
                m_j = int(group_loads[j])
                p_g = int(group_sizes[j])
                block = int(math.ceil(m_j / p_g)) if m_j > 0 else 1
                capacities[j] = block
                offset = 0
                for (i, off, length) in chunks:
                    piece = np.asarray(pieces[i][j])
                    targets = _positions_to_destinations(
                        offset, length, block, int(group_starts[j]), p_g
                    )
                    for dest, t_off, t_len in targets:
                        outboxes[i].append((dest, piece[off + t_off: off + t_off + t_len]))
                    offset += length

        # Keep local (self-addressed) pieces out of the network.
        net_out: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
        kept: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
        for i in range(p):
            for dest, payload in outboxes[i]:
                if dest == i:
                    kept[i].append((i, payload))
                    comm.charge_local(i, comm.spec.local_move_time(int(payload.size)))
                else:
                    net_out[i].append((dest, payload))

        exchange = comm.exchange(net_out, schedule=schedule)

        received: List[List[np.ndarray]] = []
        received_sizes = np.zeros(p, dtype=np.int64)
        for i in range(p):
            entries = list(exchange.inboxes[i]) + kept[i]
            entries.sort(key=lambda e: e[0])
            arrays = [np.asarray(payload) for _, payload in entries]
            received.append(arrays)
            received_sizes[i] = int(sum(a.size for a in arrays))

        group_of_rank = np.zeros(p, dtype=np.int64)
        for j in range(r):
            start = int(group_starts[j])
            group_of_rank[start:start + int(group_sizes[j])] = j

    return DeliveryResult(
        received=received,
        received_sizes=received_sizes,
        group_of_rank=group_of_rank,
        group_loads=group_loads.astype(np.int64),
        group_capacity=capacities,
        exchange=exchange,
        method=method,
    )
