"""Data delivery to PE groups (Section 4.3, Section 4.3.1, Appendix A).

Both multi-level algorithms face the same redistribution problem: every PE
has partitioned its local data into ``r`` pieces and piece ``j`` must be
moved to PE *group* ``j`` such that all PEs of a group receive (almost) the
same amount of data, every piece is sent to only one or two consecutive
target PEs, and — crucially for scalability — no PE receives too many tiny
messages.

Four strategies are implemented, mirroring the paper:

``naive``
    The plain prefix-sum enumeration (beginning of Section 4.3): correct and
    perfectly balanced, but adversarial inputs can force ``Omega(p)`` tiny
    messages onto a single receiver (Figure 3, top).

``randomized``
    The first-stage fix: the PE numbering used for the prefix sum is a
    pseudorandom permutation per group (Figure 3, bottom), which spreads the
    tiny pieces over all receivers with high probability.

``deterministic``
    The two-phase deterministic algorithm of Section 4.3.1 (Figure 4): small
    pieces (size at most ``n / (2 p r)``) are assigned whole via a prefix
    sum, then large pieces fill the residual capacities.  Guarantees
    ``O(r)`` messages per PE.

``advanced``
    The advanced randomized algorithm of Appendix A: pieces larger than
    ``s = a*n/(r*p)`` are broken into chunks of size ``s``, chunk descriptors
    are delegated to pseudorandom PEs, and the per-group enumeration order is
    randomized, giving ``<= 1 + 2r(1 + 1/a)`` received messages w.h.p.
    (Lemma 6, Theorem 4).

All strategies deliver exactly the same multiset of elements to each group
and differ only in how the elements of a group are laid out across its PEs
and in the number of messages used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks.feistel import FeistelPermutation
from repro.dist.array import DistArray
from repro.dist.flatops import (
    concat_ranges,
    gather,
    split_intervals,
    stable_key_argsort,
    stable_two_key_argsort,
    take_ranges,
)
from repro.dist.workspace import get_arena
from repro.machine.counters import PHASE_DATA_DELIVERY
from repro.sim.exchange import ExchangeResult, FlatExchangeResult, FlatMessages


DELIVERY_METHODS = ("naive", "randomized", "deterministic", "advanced")


@dataclass
class DeliveryResult:
    """Outcome of a data delivery step.

    Attributes
    ----------
    received:
        ``received[i]`` is the list of arrays PE ``i`` (local rank within the
        delivering communicator) holds after the delivery — network messages
        and locally retained pieces, ordered by sending PE.
    received_sizes:
        Total number of elements each PE holds after the delivery.
    group_of_rank:
        Group index of every local rank.
    group_loads:
        Total number of elements delivered to each group.
    group_capacity:
        The per-PE capacity bound used for each group (elements).
    exchange:
        The underlying :class:`ExchangeResult` (message statistics).
    method:
        Strategy that produced this result.
    """

    received: List[List[np.ndarray]]
    received_sizes: np.ndarray
    group_of_rank: np.ndarray
    group_loads: np.ndarray
    group_capacity: np.ndarray
    exchange: ExchangeResult
    method: str

    def received_concat(self, local_rank: int) -> np.ndarray:
        """All data held by ``local_rank`` after delivery, concatenated."""
        pieces = [p for p in self.received[local_rank] if p.size > 0]
        if not pieces:
            for p in self.received[local_rank]:
                return p[:0].copy()
            return np.empty(0, dtype=np.float64)
        return np.concatenate(pieces)

    def max_received_messages(self) -> int:
        """Maximum number of network messages received by any PE."""
        return int(self.exchange.messages_received.max(initial=0))

    def max_sent_messages(self) -> int:
        """Maximum number of network messages sent by any PE."""
        return int(self.exchange.messages_sent.max(initial=0))


def _piece_sizes(pieces: Sequence[Sequence[np.ndarray]], p: int, r: int) -> np.ndarray:
    sizes = np.zeros((p, r), dtype=np.int64)
    for i in range(p):
        if len(pieces[i]) != r:
            raise ValueError(
                f"PE {i} provided {len(pieces[i])} pieces, expected one per group ({r})"
            )
        for j in range(r):
            sizes[i, j] = int(np.asarray(pieces[i][j]).size)
    return sizes


def _group_layout(groups) -> Tuple[np.ndarray, np.ndarray]:
    """Start rank (within the parent communicator) and size of every group."""
    starts = []
    sizes = []
    offset = 0
    for g in groups:
        starts.append(offset)
        sizes.append(g.size)
        offset += g.size
    return np.asarray(starts, dtype=np.int64), np.asarray(sizes, dtype=np.int64)


def _positions_to_destinations(
    start: int, count: int, block: int, group_start: int, group_size: int
) -> List[Tuple[int, int, int]]:
    """Map the position range ``[start, start+count)`` to destination PEs.

    Returns ``(dest_rank, offset_in_piece, length)`` triples where
    ``dest_rank`` is a local rank of the parent communicator.  Positions are
    laid out in blocks of ``block`` consecutive positions per PE.
    """
    out: List[Tuple[int, int, int]] = []
    if count <= 0:
        return out
    block = max(1, int(block))
    pos = start
    consumed = 0
    while consumed < count:
        pe_in_group = min(group_size - 1, pos // block)
        pe_end = (pe_in_group + 1) * block if pe_in_group < group_size - 1 else start + count
        take = min(count - consumed, max(1, pe_end - pos))
        out.append((int(group_start + pe_in_group), consumed, int(take)))
        pos += take
        consumed += take
    return out


def _assign_by_prefix(
    sizes: np.ndarray,
    pieces: Sequence[Sequence[np.ndarray]],
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
    order_per_group: Optional[List[np.ndarray]] = None,
) -> Tuple[List[List[Tuple[int, np.ndarray]]], np.ndarray, np.ndarray]:
    """Prefix-sum position assignment shared by the naive/randomized/advanced paths.

    ``order_per_group[j]`` gives the order in which the pieces of group ``j``
    are enumerated (indices into the sending PEs); ``None`` means natural
    order (the naive algorithm).
    """
    p, r = sizes.shape
    outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    for j in range(r):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        block = int(math.ceil(m_j / p_g)) if m_j > 0 else 1
        capacities[j] = block
        order = order_per_group[j] if order_per_group is not None else np.arange(p)
        offset = 0
        for i in order:
            i = int(i)
            size = int(sizes[i, j])
            if size == 0:
                continue
            targets = _positions_to_destinations(
                offset, size, block, int(group_starts[j]), p_g
            )
            piece = np.asarray(pieces[i][j])
            for dest, piece_off, length in targets:
                outboxes[i].append((dest, piece[piece_off:piece_off + length]))
            offset += size
    return outboxes, group_loads, capacities


def _assign_deterministic(
    sizes: np.ndarray,
    pieces: Sequence[Sequence[np.ndarray]],
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
) -> Tuple[List[List[Tuple[int, np.ndarray]]], np.ndarray, np.ndarray]:
    """The two-phase deterministic assignment of Section 4.3.1."""
    p, r = sizes.shape
    total = int(sizes.sum())
    outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    threshold = max(1, total // (2 * p * r)) if total > 0 else 1

    for j in range(r):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        group_start = int(group_starts[j])
        if m_j == 0:
            capacities[j] = 0
            continue
        cap = int(math.ceil(m_j / p_g))
        piece_sizes_j = sizes[:, j]
        small_senders = np.flatnonzero((piece_sizes_j > 0) & (piece_sizes_j <= threshold))
        large_senders = np.flatnonzero(piece_sizes_j > threshold)

        # Phase 1: small pieces are assigned whole, round-robin by their
        # enumeration index (piece s goes to group PE floor(s / r)).
        load = np.zeros(p_g, dtype=np.int64)
        for s_idx, i in enumerate(small_senders):
            pe_in_group = min(p_g - 1, s_idx // max(1, r))
            dest = group_start + pe_in_group
            outboxes[int(i)].append((dest, np.asarray(pieces[int(i)][j])))
            load[pe_in_group] += int(piece_sizes_j[i])

        # Phase 2: large pieces fill the residual capacities.
        large_total = int(piece_sizes_j[large_senders].sum())
        residual = np.maximum(0, cap - load)
        if residual.sum() < large_total:
            bump = int(math.ceil((large_total - int(residual.sum())) / p_g))
            cap += bump
            residual = np.maximum(0, cap - load)
        capacities[j] = int(cap)
        if large_total > 0:
            res_prefix = np.concatenate([[0], np.cumsum(residual)])
            offset = 0
            for i in large_senders:
                i = int(i)
                size = int(piece_sizes_j[i])
                piece = np.asarray(pieces[i][j])
                consumed = 0
                pos = offset
                while consumed < size:
                    # slot `pos` belongs to the PE whose residual range contains it
                    pe_in_group = int(np.searchsorted(res_prefix, pos, side="right")) - 1
                    pe_in_group = min(pe_in_group, p_g - 1)
                    pe_room_end = int(res_prefix[pe_in_group + 1]) if pe_in_group + 1 < res_prefix.size else pos + (size - consumed)
                    take = min(size - consumed, max(1, pe_room_end - pos))
                    dest = group_start + pe_in_group
                    outboxes[i].append((dest, piece[consumed:consumed + take]))
                    pos += take
                    consumed += take
                offset += size
        else:
            capacities[j] = int(cap)
    return outboxes, group_loads, capacities


def _advanced_orders(
    sizes: np.ndarray,
    group_sizes: np.ndarray,
    seed: int,
    oversplit: float,
) -> Tuple[List[List[Tuple[int, int, int]]], int]:
    """Chunk lists for the advanced randomized algorithm.

    Returns, per group, a pseudorandomly ordered list of chunks
    ``(sender, offset, length)`` plus the number of delegated (large) chunks
    over all groups (used to charge the descriptor exchange).
    """
    p, r = sizes.shape
    total = int(sizes.sum())
    limit = max(1, int(math.ceil(oversplit * total / max(1, r * p)))) if total > 0 else 1
    per_group: List[List[Tuple[int, int, int]]] = []
    delegated = 0
    for j in range(r):
        chunks: List[Tuple[int, int, int]] = []
        for i in range(p):
            size = int(sizes[i, j])
            if size == 0:
                continue
            if size <= limit:
                chunks.append((i, 0, size))
            else:
                off = 0
                while off < size:
                    length = min(limit, size - off)
                    chunks.append((i, off, length))
                    off += length
                    delegated += 1
        if len(chunks) > 1:
            perm = FeistelPermutation(len(chunks), seed=seed * 7919 + j)
            order = np.argsort(perm.permutation_array(), kind="stable")
            chunks = [chunks[int(t)] for t in order]
        per_group.append(chunks)
    return per_group, delegated


def deliver_to_groups(
    comm,
    groups,
    pieces: Sequence[Sequence[np.ndarray]],
    method: str = "deterministic",
    seed: int = 0,
    oversplit: Optional[float] = None,
    phase: str = PHASE_DATA_DELIVERY,
    schedule: str = "sparse",
) -> DeliveryResult:
    """Deliver per-PE pieces to PE groups and return the received data.

    Parameters
    ----------
    comm:
        Parent communicator whose PEs hold the pieces.
    groups:
        Sub-communicators from ``comm.split(r)``; group ``j`` receives the
        ``j``-th piece of every PE.
    pieces:
        ``pieces[i][j]`` is the piece of local rank ``i`` destined for group
        ``j``.  Pieces may be empty.
    method:
        One of :data:`DELIVERY_METHODS`.
    seed:
        Seed for the pseudorandom permutations of the randomized methods.
    oversplit:
        The tuning parameter ``a`` of the advanced algorithm (chunk size
        ``a * n / (r p)``); defaults to ``max(1, sqrt(r / ln(max(r*p, 2))))``
        following Lemma 6.
    phase:
        Phase name to attribute the modelled time to.
    schedule:
        Exchange schedule (``'sparse'`` or ``'dense'``).
    """
    if method not in DELIVERY_METHODS:
        raise ValueError(f"unknown delivery method {method!r}; choose from {DELIVERY_METHODS}")
    p = comm.size
    r = len(groups)
    if r == 0:
        raise ValueError("need at least one target group")
    sizes = _piece_sizes(pieces, p, r)
    group_starts, group_sizes = _group_layout(groups)
    if int(group_sizes.sum()) != p:
        raise ValueError("groups must partition the parent communicator")

    with comm.phase(phase):
        # The vector-valued prefix sum over piece sizes (cost accounting for
        # the enumeration step; the actual positions are computed below).
        comm.exscan_vec([sizes[i] for i in range(p)])

        if method == "naive":
            outboxes, group_loads, capacities = _assign_by_prefix(
                sizes, pieces, group_starts, group_sizes, order_per_group=None
            )
        elif method == "randomized":
            orders = []
            for j in range(r):
                perm = FeistelPermutation(p, seed=seed * 104729 + j)
                orders.append(np.argsort(perm.permutation_array(), kind="stable"))
            outboxes, group_loads, capacities = _assign_by_prefix(
                sizes, pieces, group_starts, group_sizes, order_per_group=orders
            )
        elif method == "deterministic":
            outboxes, group_loads, capacities = _assign_deterministic(
                sizes, pieces, group_starts, group_sizes
            )
        else:  # advanced
            a_param = oversplit
            if a_param is None:
                a_param = max(1.0, math.sqrt(r / math.log(max(r * p, 2))))
            chunk_lists, delegated = _advanced_orders(sizes, group_sizes, seed, a_param)
            # Descriptor delegation: every delegated chunk sends a constant
            # size descriptor to a pseudorandom PE (Appendix A); modelled as
            # a small exchange.
            if delegated > 0:
                desc_out: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
                perm = FeistelPermutation(max(delegated, 1), seed=seed * 15485863 + 1)
                t = 0
                for j, chunks in enumerate(chunk_lists):
                    for (i, off, length) in chunks:
                        if length < 1:
                            continue
                        # only chunks from broken-up pieces are delegated
                        if sizes[i, j] > length or off > 0:
                            dest = int(perm.apply(t % max(delegated, 1))) % p
                            desc_out[i].append((dest, np.zeros(3, dtype=np.int64)))
                            t += 1
                comm.exchange(desc_out, schedule=schedule, charge_copy=False)
            # Build outboxes from the chunk enumeration order.
            outboxes = [[] for _ in range(p)]
            group_loads = sizes.sum(axis=0)
            capacities = np.zeros(r, dtype=np.int64)
            for j, chunks in enumerate(chunk_lists):
                m_j = int(group_loads[j])
                p_g = int(group_sizes[j])
                block = int(math.ceil(m_j / p_g)) if m_j > 0 else 1
                capacities[j] = block
                offset = 0
                for (i, off, length) in chunks:
                    piece = np.asarray(pieces[i][j])
                    targets = _positions_to_destinations(
                        offset, length, block, int(group_starts[j]), p_g
                    )
                    for dest, t_off, t_len in targets:
                        outboxes[i].append((dest, piece[off + t_off: off + t_off + t_len]))
                    offset += length

        # Keep local (self-addressed) pieces out of the network.
        net_out: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
        kept: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
        for i in range(p):
            for dest, payload in outboxes[i]:
                if dest == i:
                    kept[i].append((i, payload))
                    comm.charge_local(i, comm.spec.local_move_time(int(payload.size)))
                else:
                    net_out[i].append((dest, payload))

        exchange = comm.exchange(net_out, schedule=schedule)

        received: List[List[np.ndarray]] = []
        received_sizes = np.zeros(p, dtype=np.int64)
        for i in range(p):
            entries = list(exchange.inboxes[i]) + kept[i]
            entries.sort(key=lambda e: e[0])
            arrays = [np.asarray(payload) for _, payload in entries]
            received.append(arrays)
            received_sizes[i] = int(sum(a.size for a in arrays))

        group_of_rank = np.zeros(p, dtype=np.int64)
        for j in range(r):
            start = int(group_starts[j])
            group_of_rank[start:start + int(group_sizes[j])] = j

    return DeliveryResult(
        received=received,
        received_sizes=received_sizes,
        group_of_rank=group_of_rank,
        group_loads=group_loads.astype(np.int64),
        group_capacity=capacities,
        exchange=exchange,
        method=method,
    )


# ======================================================================
# Flat (DistArray) delivery engine
# ======================================================================
#
# The functions below are vectorised ports of the per-PE assignment
# algorithms above.  Pieces are given as one flat value buffer in
# ``(PE, group)`` order plus a ``(p, r)`` size matrix; messages are built as
# flat index arrays with :func:`repro.dist.flatops.split_intervals` instead
# of per-piece Python loops.  Every port emits *exactly* the message stream
# of its per-PE counterpart (same sources, destinations, payload slices and
# per-sender ordering), which keeps costs and data byte-identical.


@dataclass
class FlatDeliveryResult:
    """Outcome of a flat data-delivery step.

    Attributes
    ----------
    received:
        :class:`DistArray` of the data every PE holds after delivery
        (network messages and locally kept pieces, ordered by sending PE and
        send order — identical to the reference path's concatenation order).
    received_msg_src / received_msg_lengths:
        Source rank and length of every received *run* (message or kept
        piece), in the same order as they appear inside ``received``.
    received_msg_offsets:
        Per-PE offsets into the run arrays (``p + 1`` entries).
    received_sizes, group_of_rank, group_loads, group_capacity, method:
        As in :class:`DeliveryResult`.
    exchange:
        The underlying :class:`FlatExchangeResult` (network statistics only;
        locally kept pieces are excluded exactly as in the reference path).
    """

    received: DistArray
    received_msg_src: np.ndarray
    received_msg_lengths: np.ndarray
    received_msg_offsets: np.ndarray
    received_sizes: np.ndarray
    group_of_rank: np.ndarray
    group_loads: np.ndarray
    group_capacity: np.ndarray
    exchange: FlatExchangeResult
    method: str

    def received_concat(self, local_rank: int) -> np.ndarray:
        """All data held by ``local_rank`` after delivery (a flat view)."""
        return self.received.segment(local_rank)

    def nonempty_runs_per_pe(self) -> np.ndarray:
        """Number of non-empty received runs per PE (merge fan-in)."""
        counts = np.zeros(self.received.p, dtype=np.int64)
        run_pe = np.repeat(
            np.arange(self.received.p, dtype=np.int64),
            np.diff(self.received_msg_offsets),
        )
        nonempty = self.received_msg_lengths > 0
        np.add.at(counts, run_pe[nonempty], 1)
        return counts

    def max_received_messages(self) -> int:
        """Maximum number of network messages received by any PE."""
        return int(self.exchange.messages_received.max(initial=0))

    def max_sent_messages(self) -> int:
        """Maximum number of network messages sent by any PE."""
        return int(self.exchange.messages_sent.max(initial=0))


def _piece_starts(sizes: np.ndarray) -> np.ndarray:
    """Exclusive row-major prefix over the ``(p, r)`` piece-size matrix."""
    flat = sizes.reshape(-1)
    return (np.cumsum(flat) - flat).reshape(sizes.shape)


def _flat_assign_by_prefix(
    sizes: np.ndarray,
    piece_starts: np.ndarray,
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
    order_per_group: Optional[List[np.ndarray]] = None,
) -> Tuple[List[np.ndarray], np.ndarray, np.ndarray]:
    """Vectorised :func:`_assign_by_prefix`: message arrays per group."""
    p, r = sizes.shape
    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    parts: List[np.ndarray] = []
    for j in range(r):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        block = int(math.ceil(m_j / p_g)) if m_j > 0 else 1
        capacities[j] = block
        order = order_per_group[j] if order_per_group is not None \
            else np.arange(p, dtype=np.int64)
        sz = sizes[order, j]
        nonempty = sz > 0
        senders = order[nonempty]
        sz = sz[nonempty]
        if sz.size == 0:
            continue
        bounds = np.zeros(sz.size + 1, dtype=np.int64)
        np.cumsum(sz, out=bounds[1:])
        cuts = block * np.arange(1, p_g, dtype=np.int64)
        piece_idx, off, lengths, abs_start = split_intervals(bounds, cuts, m_j)
        src = senders[piece_idx]
        dest = group_starts[j] + np.minimum(abs_start // block, p_g - 1)
        start = piece_starts[src, j] + off
        parts.append(np.stack([src, dest, start, lengths]))
    return parts, group_loads, capacities


def _flat_assign_deterministic(
    sizes: np.ndarray,
    piece_starts: np.ndarray,
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
) -> Tuple[List[np.ndarray], np.ndarray, np.ndarray]:
    """Vectorised :func:`_assign_deterministic` (Section 4.3.1, two phases)."""
    p, r = sizes.shape
    total = int(sizes.sum())
    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    threshold = max(1, total // (2 * p * r)) if total > 0 else 1
    # Column-major copies: the per-group loop reads whole columns, which
    # would otherwise be strided passes over the (p, r) matrices.
    sizes_t = np.ascontiguousarray(sizes.T)
    starts_t = np.ascontiguousarray(piece_starts.T)
    parts: List[np.ndarray] = []
    for j in range(r):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        group_start = int(group_starts[j])
        if m_j == 0:
            capacities[j] = 0
            continue
        cap = int(math.ceil(m_j / p_g))
        psj = sizes_t[j]
        small = np.flatnonzero((psj > 0) & (psj <= threshold))
        large = np.flatnonzero(psj > threshold)

        # Phase 1: small pieces whole, round-robin by enumeration index.
        load = np.zeros(p_g, dtype=np.int64)
        if small.size:
            pe_small = np.minimum(
                p_g - 1, np.arange(small.size, dtype=np.int64) // max(1, r)
            )
            np.add.at(load, pe_small, psj[small])
            parts.append(np.stack([
                small, group_start + pe_small, starts_t[j][small], psj[small],
            ]))

        # Phase 2: large pieces fill the residual capacities.
        large_total = int(psj[large].sum())
        residual = np.maximum(0, cap - load)
        if residual.sum() < large_total:
            bump = int(math.ceil((large_total - int(residual.sum())) / p_g))
            cap += bump
            residual = np.maximum(0, cap - load)
        capacities[j] = int(cap)
        if large_total > 0:
            bounds = np.zeros(large.size + 1, dtype=np.int64)
            np.cumsum(psj[large], out=bounds[1:])
            res_prefix = np.zeros(p_g + 1, dtype=np.int64)
            np.cumsum(residual, out=res_prefix[1:])
            piece_idx, off, lengths, abs_start = split_intervals(
                bounds, res_prefix[1:-1], large_total
            )
            src = large[piece_idx]
            pe = np.minimum(
                np.searchsorted(res_prefix, abs_start, side="right") - 1, p_g - 1
            )
            parts.append(np.stack([
                src, group_start + pe, starts_t[j][src] + off, lengths,
            ]))
    return parts, group_loads, capacities


def _flat_assign_deterministic_batched(
    flat_sizes: np.ndarray,
    starts_flat: np.ndarray,
    piece_off: np.ndarray,
    p_k: np.ndarray,
    r_k: np.ndarray,
    sel: np.ndarray,
    isl_off: np.ndarray,
    sub_sizes: Sequence[np.ndarray],
    colmaj: bool = False,
) -> Optional[np.ndarray]:
    """:func:`_flat_assign_deterministic` for many islands in one pass.

    Runs the two-phase deterministic assignment of every ``(island, group)``
    pair of the selected islands at once: phase-1 small pieces place by a
    segmented enumeration count, phase-2 large pieces split against the
    residual capacities through one composed-key interval merge (the
    batched analogue of :func:`~repro.dist.flatops.split_intervals`) —
    no Python loop over islands or groups.  Emits exactly the messages of
    the per-island reference; their order differs, which is unobservable
    because the deterministic assignment sends at most one message per
    ``(source, destination)`` pair.  Returns the stacked
    ``(src, dest, start, length)`` message matrix with batch-rank sources
    and destinations, or ``None`` when the composed keys would overflow
    (the caller then falls back to the per-island path).
    """
    sel = np.asarray(sel, dtype=np.int64)
    n_sel = int(sel.size)
    pcs = p_k[sel] * r_k[sel]
    total_pieces = int(pcs.sum())
    if total_pieces == 0:
        return None
    g_flat = np.concatenate([
        np.asarray(s, dtype=np.int64).reshape(-1) for s in sub_sizes
    ])
    g_off = np.zeros(n_sel + 1, dtype=np.int64)
    np.cumsum(r_k[sel], out=g_off[1:])
    if g_flat.size != int(g_off[-1]):
        raise ValueError("need one sub-group size vector per island")
    if np.any(np.add.reduceat(g_flat, g_off[:-1]) != p_k[sel]):
        raise ValueError("sub-groups must partition their island")

    # Column-major (island, group, sender) view of every piece matrix.
    pos = concat_ranges(np.zeros(n_sel, dtype=np.int64), pcs)
    isl_rep = np.repeat(np.arange(n_sel, dtype=np.int64), pcs)
    pk_rep = p_k[sel][isl_rep]
    rk_rep = r_k[sel][isl_rep]
    src_idx = piece_off[sel][isl_rep] + (pos % pk_rep) * rk_rep + pos // pk_rep
    sz = flat_sizes[src_idx]
    # Piece starts: gathered from the PE-major value buffer, or — for the
    # column-major piece plane, whose buffer is laid out exactly in this
    # loop's (island, group, sender) order — a plain running prefix.
    st = (np.cumsum(sz) - sz) if colmaj else starts_flat[src_idx]
    sender = isl_off[sel][isl_rep] + pos % pk_rep  # batch rank of the sender

    # One pair per (island, group); pieces of a pair are contiguous.
    n_pairs = int(g_off[-1])
    pair_len = np.repeat(p_k[sel], r_k[sel])
    pair_off = np.zeros(n_pairs + 1, dtype=np.int64)
    np.cumsum(pair_len, out=pair_off[1:])
    pair_of_piece = np.repeat(np.arange(n_pairs, dtype=np.int64), pair_len)
    pair_isl = np.repeat(np.arange(n_sel, dtype=np.int64), r_k[sel])
    p_g = g_flat  # destination sub-group size per pair
    g_start = np.cumsum(g_flat) - g_flat
    g_start = isl_off[sel][pair_isl] + (
        g_start - np.repeat(g_start[g_off[:-1]], r_k[sel])
    )

    m_j = np.add.reduceat(sz, pair_off[:-1])
    isl_tot = np.add.reduceat(m_j, g_off[:-1])
    thr = np.maximum(1, isl_tot // (2 * p_k[sel] * r_k[sel]))
    thr_rep = thr[isl_rep]

    parts: List[np.ndarray] = []

    # Phase 1: small pieces whole, round-robin by enumeration index.
    small = (sz > 0) & (sz <= thr_rep)
    excl = np.cumsum(small.astype(np.int64)) - small
    s_idx = excl - np.repeat(excl[pair_off[:-1]], pair_len)
    pe_small = np.minimum(
        p_g[pair_of_piece] - 1, s_idx // np.maximum(1, rk_rep)
    )
    sm = np.flatnonzero(small)
    if sm.size:
        parts.append(np.stack([
            sender[sm], g_start[pair_of_piece[sm]] + pe_small[sm],
            st[sm], sz[sm],
        ]))

    # Residual capacities per (pair, group PE) slot.
    slot_off = np.zeros(n_pairs + 1, dtype=np.int64)
    np.cumsum(p_g, out=slot_off[1:])
    total_slots = int(slot_off[-1])
    load = np.bincount(
        slot_off[pair_of_piece[sm]] + pe_small[sm],
        weights=sz[sm], minlength=total_slots,
    ).astype(np.int64)
    large = sz > thr_rep
    large_total = np.add.reduceat(
        np.where(large, sz, 0), pair_off[:-1]
    )
    cap = -(-m_j // np.maximum(p_g, 1))
    residual = np.maximum(0, np.repeat(cap, p_g) - load)
    res_sum = np.add.reduceat(residual, slot_off[:-1])
    bump = np.where(
        res_sum < large_total,
        -(-(large_total - res_sum) // np.maximum(p_g, 1)),
        0,
    )
    cap = cap + bump
    residual = np.maximum(0, np.repeat(cap, p_g) - load)

    # Phase 2: large pieces fill the residuals.  All pairs with large
    # pieces run one composed-key interval merge: candidate split points
    # are the large-piece bounds and the interior residual prefixes, keyed
    # by (pair, position) so one sort + dedupe + two searchsorted calls
    # produce every pair's message intervals at once.
    lp = np.flatnonzero(large_total > 0)
    if lp.size == 0:
        return np.concatenate(parts, axis=1) if parts else None
    n_lp = int(lp.size)
    lp_flag = np.zeros(n_pairs, dtype=bool)
    lp_flag[lp] = True
    dense = np.zeros(n_pairs, dtype=np.int64)
    dense[lp] = np.arange(n_lp, dtype=np.int64)

    lg = np.flatnonzero(large & lp_flag[pair_of_piece])
    l_pair = pair_of_piece[lg]
    l_cnt = np.bincount(dense[l_pair], minlength=n_lp)
    l_off = np.zeros(n_lp + 1, dtype=np.int64)
    np.cumsum(l_cnt, out=l_off[1:])
    l_sz = sz[lg]
    lexcl = np.cumsum(l_sz) - l_sz
    lexcl = lexcl - np.repeat(lexcl[l_off[:-1]], l_cnt)  # bounds[piece]

    # Candidate points: each large piece's lower bound, each pair's total,
    # and the interior residual prefixes strictly inside (0, total).
    res_in_lp = residual[concat_ranges(slot_off[lp], p_g[lp])]
    rexcl = np.cumsum(res_in_lp) - res_in_lp
    rp_pair = np.repeat(np.arange(n_lp, dtype=np.int64), p_g[lp])
    rexcl = rexcl - np.repeat(rexcl[np.cumsum(p_g[lp]) - p_g[lp]], p_g[lp])
    cut_keep = (rexcl > 0) & (rexcl < large_total[lp][rp_pair])

    vmax = max(int(large_total[lp].max()), int(rexcl.max(initial=0)))
    bits = max(1, vmax.bit_length())
    if (n_lp << bits) >= (1 << 62):
        return None  # composed keys would overflow; per-island fallback
    key = np.int64(1) << np.int64(bits)
    # The piece bounds are already sorted (pair-major, ascending within
    # each pair) and so are the residual cuts, so the candidate points
    # merge by insertion — no sort.
    nb = l_cnt + 1
    nb_off = np.zeros(n_lp + 1, dtype=np.int64)
    np.cumsum(nb, out=nb_off[1:])
    # The candidate-point planes (m1, the merged pts buffer and its scatter
    # index) are piece-scale scratch, dead once the unique points are
    # extracted — all workspace checkouts.
    ws = get_arena()
    m1 = ws.empty(int(nb_off[-1]), np.int64)
    idx = concat_ranges(nb_off[:-1], l_cnt, arena=ws)
    m1[idx] = dense[l_pair] * key + lexcl
    ws.recycle(idx)
    m1[nb_off[1:] - 1] = dense[lp] * key + large_total[lp]
    ck = rp_pair[cut_keep] * key + rexcl[cut_keep]
    cpos = np.searchsorted(m1, ck, side="left") + \
        np.arange(ck.size, dtype=np.int64)
    pts_buf = ws.empty(m1.size + ck.size, np.int64)
    keep_m = np.ones(pts_buf.size, dtype=bool)
    keep_m[cpos] = False
    pts_buf[cpos] = ck
    pts_buf[keep_m] = m1
    ws.recycle(m1)
    uniq = np.ones(pts_buf.size, dtype=bool)
    uniq[1:] = pts_buf[1:] != pts_buf[:-1]
    pts = pts_buf[uniq]
    ws.recycle(pts_buf)
    pt_pair = pts >> np.int64(bits)
    pt_val = pts & (key - 1)
    # Intervals: consecutive unique points of the same pair.
    same = pt_pair[1:] == pt_pair[:-1]
    ivl = np.flatnonzero(same)
    abs_start = pt_val[ivl]
    lengths = pt_val[ivl + 1] - abs_start
    ivl_pair = pt_pair[ivl]

    # Piece of every interval: composed-key bisection into the bounds.
    bound_keys = dense[l_pair] * key + lexcl
    piece_idx = np.searchsorted(
        bound_keys, ivl_pair * key + abs_start, side="right"
    ) - 1 - l_off[ivl_pair]
    piece = lg[l_off[ivl_pair] + piece_idx]
    # Destination PE: composed-key bisection into the residual prefixes.
    rp_off = np.zeros(n_lp + 1, dtype=np.int64)
    np.cumsum(p_g[lp], out=rp_off[1:])
    res_keys = rp_pair * key + rexcl
    pe = np.minimum(
        np.searchsorted(res_keys, ivl_pair * key + abs_start, side="right")
        - 1 - rp_off[ivl_pair],
        p_g[lp][ivl_pair] - 1,
    )
    parts.append(np.stack([
        sender[piece],
        g_start[lp[ivl_pair]] + pe,
        st[piece] + (abs_start - lexcl[l_off[ivl_pair] + piece_idx]),
        lengths,
    ]))
    return np.concatenate(parts, axis=1)


def _flat_chunks_for_group(
    psj: np.ndarray, limit: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Chunk arrays ``(sender, offset, length)`` for one group (advanced).

    Pieces larger than ``limit`` are split into ``ceil(size / limit)``
    chunks; every chunk of a split piece counts as delegated (Appendix A).
    """
    senders = np.flatnonzero(psj > 0)
    if senders.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy(), 0
    sz = psj[senders]
    n_chunks = (sz + limit - 1) // limit
    total_chunks = int(n_chunks.sum())
    cum_excl = np.cumsum(n_chunks) - n_chunks
    idx_in_piece = (
        np.arange(total_chunks, dtype=np.int64) - np.repeat(cum_excl, n_chunks)
    )
    chunk_src = np.repeat(senders, n_chunks)
    chunk_off = idx_in_piece * limit
    chunk_len = np.minimum(limit, np.repeat(sz, n_chunks) - chunk_off)
    delegated = int(n_chunks[n_chunks > 1].sum())
    return chunk_src, chunk_off, chunk_len, delegated


def deliver_to_groups_flat(
    comm,
    groups,
    piece_values: np.ndarray,
    piece_sizes: np.ndarray,
    method: str = "deterministic",
    seed: int = 0,
    oversplit: Optional[float] = None,
    phase: str = PHASE_DATA_DELIVERY,
    schedule: str = "sparse",
) -> FlatDeliveryResult:
    """Flat-engine port of :func:`deliver_to_groups`.

    Parameters
    ----------
    comm, groups, method, seed, oversplit, phase, schedule:
        As for :func:`deliver_to_groups`.
    piece_values:
        Flat buffer holding every PE's pieces in ``(PE, group)`` order:
        piece ``(i, j)`` occupies ``piece_sizes[i, :j].sum()`` positions past
        the start of PE ``i``'s block, elements in original order.
    piece_sizes:
        ``(p, r)`` int64 matrix of piece sizes.
    """
    if method not in DELIVERY_METHODS:
        raise ValueError(f"unknown delivery method {method!r}; choose from {DELIVERY_METHODS}")
    p = comm.size
    r = len(groups)
    if r == 0:
        raise ValueError("need at least one target group")
    piece_sizes = np.asarray(piece_sizes, dtype=np.int64)
    if piece_sizes.shape != (p, r):
        raise ValueError(f"piece_sizes must have shape ({p}, {r})")
    piece_values = np.asarray(piece_values)
    if piece_values.size != int(piece_sizes.sum()):
        raise ValueError("piece_values size does not match piece_sizes")
    group_starts, group_sizes = _group_layout(groups)
    if int(group_sizes.sum()) != p:
        raise ValueError("groups must partition the parent communicator")
    starts_matrix = _piece_starts(piece_sizes)

    with comm.phase(phase):
        # Same enumeration prefix-sum collective as the reference path.
        comm.exscan_rows(piece_sizes)

        if method == "naive":
            parts, group_loads, capacities = _flat_assign_by_prefix(
                piece_sizes, starts_matrix, group_starts, group_sizes, None
            )
        elif method == "randomized":
            orders = []
            for j in range(r):
                perm = FeistelPermutation(p, seed=seed * 104729 + j)
                orders.append(np.argsort(perm.permutation_array(), kind="stable"))
            parts, group_loads, capacities = _flat_assign_by_prefix(
                piece_sizes, starts_matrix, group_starts, group_sizes, orders
            )
        else:
            if method == "deterministic":
                parts, group_loads, capacities = _flat_assign_deterministic(
                    piece_sizes, starts_matrix, group_starts, group_sizes
                )
            else:  # advanced
                parts, group_loads, capacities = _flat_assign_advanced(
                    comm, piece_sizes, starts_matrix, group_starts, group_sizes,
                    seed, oversplit, schedule,
                )

        if parts:
            stacked = np.concatenate(parts, axis=1)
            src, dest, start, length = stacked
        else:
            src = dest = start = length = np.empty(0, dtype=np.int64)
        msgs = FlatMessages(src, dest, start, length, piece_values)

        # Locally kept (self-addressed) pieces stay off the network; they are
        # charged one by one in send order, exactly like the reference loop.
        kept_mask = msgs.src == msgs.dest
        spec = comm.spec
        for k in np.flatnonzero(kept_mask):
            comm.charge_local(int(msgs.src[k]), spec.local_move_time(int(msgs.length[k])))

        exchange = comm.exchange_flat(
            msgs.select(~kept_mask), schedule=schedule, build_inbox=False
        )

        # Assemble the received DistArray from *all* runs (network + kept):
        # order by (receiver, source, send order) — identical to the
        # reference's per-PE `sort(key=source)` on inbox + kept entries.
        order = stable_two_key_argsort(msgs.dest, msgs.src, p, p)
        run_src = msgs.src[order]
        run_dest = msgs.dest[order]
        run_lengths = msgs.length[order]
        recv_values = take_ranges(piece_values, msgs.start[order], run_lengths)
        received_sizes = np.zeros(p, dtype=np.int64)
        np.add.at(received_sizes, msgs.dest, msgs.length)
        received = DistArray.from_sizes(recv_values, received_sizes)
        run_offsets = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(np.bincount(run_dest, minlength=p), out=run_offsets[1:])

        group_of_rank = np.repeat(np.arange(r, dtype=np.int64), group_sizes)

    return FlatDeliveryResult(
        received=received,
        received_msg_src=run_src,
        received_msg_lengths=run_lengths,
        received_msg_offsets=run_offsets,
        received_sizes=received_sizes,
        group_of_rank=group_of_rank,
        group_loads=group_loads.astype(np.int64),
        group_capacity=capacities,
        exchange=exchange,
        method=method,
    )


def _flat_advanced_parts(
    sizes: np.ndarray,
    piece_starts: np.ndarray,
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
    seed: int,
    oversplit: Optional[float],
) -> Tuple[List[np.ndarray], np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pure (charge-free) part of the advanced randomized assignment.

    Returns the message parts plus the descriptor delegation messages
    ``(desc_src, desc_dest)`` so that callers can execute the descriptor
    exchange themselves — per island on the single-communicator path, or as
    one whole-machine batch on the lockstep path.
    """
    p, r = sizes.shape
    total = int(sizes.sum())
    a_param = oversplit
    if a_param is None:
        a_param = max(1.0, math.sqrt(r / math.log(max(r * p, 2))))
    limit = max(1, int(math.ceil(a_param * total / max(1, r * p)))) if total > 0 else 1

    per_group: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    delegated = 0
    for j in range(r):
        chunk_src, chunk_off, chunk_len, dj = _flat_chunks_for_group(sizes[:, j], limit)
        if chunk_src.size > 1:
            perm = FeistelPermutation(chunk_src.size, seed=seed * 7919 + j)
            order = np.argsort(perm.permutation_array(), kind="stable")
            chunk_src, chunk_off, chunk_len = (
                chunk_src[order], chunk_off[order], chunk_len[order]
            )
        per_group.append((chunk_src, chunk_off, chunk_len))
        delegated += dj

    # Descriptor delegation targets: one constant-size descriptor per chunk
    # of a broken-up piece, to a pseudorandom PE (Appendix A).
    desc_src_list: List[int] = []
    desc_dest_list: List[int] = []
    if delegated > 0:
        perm = FeistelPermutation(max(delegated, 1), seed=seed * 15485863 + 1)
        t = 0
        for j, (chunk_src, chunk_off, chunk_len) in enumerate(per_group):
            split_chunk = (chunk_len >= 1) & (
                (sizes[chunk_src, j] > chunk_len) | (chunk_off > 0)
            )
            for i in chunk_src[split_chunk]:
                desc_src_list.append(int(i))
                desc_dest_list.append(int(perm.apply(t % max(delegated, 1))) % p)
                t += 1
    desc_src = np.asarray(desc_src_list, dtype=np.int64)
    desc_dest = np.asarray(desc_dest_list, dtype=np.int64)

    group_loads = sizes.sum(axis=0)
    capacities = np.zeros(r, dtype=np.int64)
    parts: List[np.ndarray] = []
    for j, (chunk_src, chunk_off, chunk_len) in enumerate(per_group):
        m_j = int(group_loads[j])
        p_g = int(group_sizes[j])
        block = int(math.ceil(m_j / p_g)) if m_j > 0 else 1
        capacities[j] = block
        if chunk_src.size == 0:
            continue
        bounds = np.zeros(chunk_src.size + 1, dtype=np.int64)
        np.cumsum(chunk_len, out=bounds[1:])
        cuts = block * np.arange(1, p_g, dtype=np.int64)
        chunk_idx, off, lengths, abs_start = split_intervals(bounds, cuts, m_j)
        src = chunk_src[chunk_idx]
        dest = group_starts[j] + np.minimum(abs_start // block, p_g - 1)
        start = piece_starts[src, j] + chunk_off[chunk_idx] + off
        parts.append(np.stack([src, dest, start, lengths]))
    return parts, group_loads, capacities, desc_src, desc_dest


def _flat_assign_advanced(
    comm,
    sizes: np.ndarray,
    piece_starts: np.ndarray,
    group_starts: np.ndarray,
    group_sizes: np.ndarray,
    seed: int,
    oversplit: Optional[float],
    schedule: str,
) -> Tuple[List[np.ndarray], np.ndarray, np.ndarray]:
    """Vectorised advanced randomized assignment (Appendix A).

    Reproduces :func:`_advanced_orders` + the descriptor delegation exchange
    + the chunk-order prefix enumeration of the reference path.
    """
    parts, group_loads, capacities, desc_src, desc_dest = _flat_advanced_parts(
        sizes, piece_starts, group_starts, group_sizes, seed, oversplit
    )
    n_desc = int(desc_src.size)
    if n_desc > 0:
        desc_msgs = FlatMessages(
            desc_src,
            desc_dest,
            np.zeros(n_desc, dtype=np.int64),
            np.full(n_desc, 3, dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        )
        comm.exchange_flat(desc_msgs, schedule=schedule, charge_copy=False,
                           build_inbox=False)
    return parts, group_loads, capacities


# ======================================================================
# Batched (lockstep) delivery over many islands at once
# ======================================================================


@dataclass
class BatchedDeliveryResult:
    """Outcome of a lockstep data-delivery step over a batch of islands.

    Attributes
    ----------
    received:
        :class:`DistArray` over the *batch* PEs (``islands.members`` order):
        what every PE holds after its island's delivery, runs ordered by
        (source rank, send order) exactly like the reference path.
    received_sizes:
        Per-batch-PE element counts after delivery.
    nonempty_runs:
        Per-batch-PE number of non-empty received runs (messages plus kept
        pieces) — the multiway-merge fan-in RLM-sort charges.
    """

    received: DistArray
    received_sizes: np.ndarray
    nonempty_runs: np.ndarray


def deliver_to_groups_batched(
    islands,
    subgroup_sizes: Sequence[np.ndarray],
    piece_values: Optional[np.ndarray],
    piece_sizes: Sequence[np.ndarray],
    method: str = "deterministic",
    seed: int = 0,
    oversplit: Optional[float] = None,
    phase: str = PHASE_DATA_DELIVERY,
    schedule: str = "sparse",
    elem_plane: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    piece_layout: str = "rowmaj",
) -> BatchedDeliveryResult:
    """Run the data deliveries of all islands of one recursion level at once.

    The lockstep counterpart of calling :func:`deliver_to_groups_flat` once
    per island: per-island collectives become
    :class:`~repro.sim.groups.GroupBatch` charges and the message streams of
    all islands are executed as one whole-machine exchange.  Because the
    islands are pairwise disjoint, every PE receives exactly the charge
    sequence (and the received data) of the island-by-island execution.

    Parameters
    ----------
    islands:
        :class:`~repro.sim.groups.GroupBatch` of the islands delivering at
        this level; "batch PEs" are ``islands.members`` in order.
    subgroup_sizes:
        Per island, the sizes of its ``r_k`` destination sub-groups
        (island-local, summing to the island size).
    piece_values:
        One flat buffer holding every batch PE's pieces in
        ``(batch PE, destination group)`` order.  May be ``None`` when
        ``elem_plane`` is given and the fused element path applies (every
        destination group a singleton, method not ``'advanced'``).
    piece_sizes:
        Per island, the ``(p_k, r_k)`` piece-size matrix.
    method, seed, oversplit, phase, schedule:
        As for :func:`deliver_to_groups_flat`; the per-group pseudorandom
        permutation seeds restart at every island exactly like the
        per-island reference calls.
    piece_layout:
        ``'rowmaj'`` (default): ``piece_values`` holds every batch PE's
        pieces in ``(batch PE, destination group)`` order.  ``'colmaj'``:
        the buffer is ordered ``(island, destination group, batch PE)``
        instead — one stable radix pass builds it from the original element
        order, against two for the row-major plane.  Only supported for the
        ``'deterministic'`` method with no singleton destination groups,
        where every ``(source, destination)`` pair carries at most one
        message, which makes the two layouts emit identical message
        streams.
    elem_plane:
        Optional ``(values, elem_dest)`` pair for the fused element-level
        data plane: ``values`` are the batch elements in original
        ``(batch PE, local order)`` layout and ``elem_dest`` the batch rank
        every element is delivered to.  When every piece is one whole
        message (all destination groups singletons, non-``advanced``
        method), the received layout — runs ordered by (receiver, source,
        send order) — equals one stable argsort of ``elem_dest``, because
        elements are stored by (source, original order) and each
        (source, receiver) pair carries at most one message.  That replaces
        the piece reorder, the message index build and the reassembly
        gather of the piece-space path with a single radix argsort plus one
        gather; the charged costs are identical (they only depend on the
        piece sizes).
    """
    if method not in DELIVERY_METHODS:
        raise ValueError(f"unknown delivery method {method!r}; choose from {DELIVERY_METHODS}")
    if piece_layout not in ("rowmaj", "colmaj"):
        raise ValueError("piece_layout must be 'rowmaj' or 'colmaj'")
    if piece_layout == "colmaj" and method != "deterministic":
        raise ValueError("the column-major piece plane requires the "
                         "deterministic delivery method")
    machine = islands.machine
    spec = machine.spec
    q = int(islands.members.size)
    n_isl = islands.num_groups
    if len(subgroup_sizes) != n_isl or len(piece_sizes) != n_isl:
        raise ValueError("need one sub-group layout and piece matrix per island")
    if piece_values is None:
        piece_values = np.empty(0, dtype=np.float64)  # fused path sentinel
        if elem_plane is None:
            raise ValueError("piece_values may only be omitted with elem_plane")
    else:
        piece_values = np.asarray(piece_values)
    isl_off = islands.offsets
    p_k = islands.sizes
    pe_isl = np.repeat(np.arange(n_isl, dtype=np.int64), p_k)

    r_k = np.empty(n_isl, dtype=np.int64)
    for k in range(n_isl):
        shape = np.shape(piece_sizes[k])
        if shape != (int(p_k[k]), int(np.asarray(subgroup_sizes[k]).size)):
            raise ValueError("piece matrix does not match the island layout")
        r_k[k] = shape[1]
    fused = (
        elem_plane is not None
        and method != "advanced"
        and bool(np.all(r_k == p_k))
    )
    flat_sizes = (
        np.concatenate([
            np.asarray(m, dtype=np.int64).reshape(-1) for m in piece_sizes
        ])
        if n_isl else np.empty(0, dtype=np.int64)
    )
    total_words = int(flat_sizes.sum())
    if fused:
        if total_words != np.asarray(elem_plane[0]).size:
            raise ValueError("elem_plane values do not match piece_sizes")
    elif total_words != piece_values.size:
        raise ValueError("piece_values size does not match piece_sizes")
    piece_cnt = p_k * r_k
    piece_off = np.zeros(n_isl + 1, dtype=np.int64)
    np.cumsum(piece_cnt, out=piece_off[1:])
    starts_flat = np.cumsum(flat_sizes) - flat_sizes

    with machine.phase(phase):
        # Same enumeration prefix-sum collective as the per-island reference.
        islands.charge_collective(r_k)

        parts: List[np.ndarray] = []
        desc_parts: List[np.ndarray] = []

        # Singleton destination groups (the final recursion level, usually
        # the vast majority of islands): every prefix-style assignment
        # degenerates to "each non-empty piece is one whole message to its
        # group's only PE".  The per-(src, dest) message multiplicity is one,
        # so neither the per-group enumeration order of the general path nor
        # the batching across islands can be observed — build all of these
        # islands' messages in one vectorised pass.
        eligible = (
            (r_k == p_k) if method != "advanced"
            else np.zeros(n_isl, dtype=bool)
        )
        if eligible.any():
            el = np.flatnonzero(eligible)
            ws = get_arena()
            idx_full = concat_ranges(piece_off[el], piece_cnt[el], arena=ws)
            isl_of_piece = np.repeat(el, piece_cnt[el])
            nz = flat_sizes[idx_full] > 0
            idx = idx_full[nz]
            ws.recycle(idx_full)
            isl_of_piece = isl_of_piece[nz]
            local_idx = idx - piece_off[isl_of_piece]
            parts.append(np.stack([
                isl_off[isl_of_piece] + local_idx // r_k[isl_of_piece],
                isl_off[isl_of_piece] + local_idx % r_k[isl_of_piece],
                starts_flat[idx],
                flat_sizes[idx],
            ]))

        noneligible = np.flatnonzero(~eligible)
        if piece_layout == "colmaj" and (
            eligible.any() or noneligible.size != n_isl
        ):
            raise ValueError("the column-major piece plane requires every "
                             "destination group to be a proper sub-group")
        if method == "deterministic" and noneligible.size:
            det_parts = _flat_assign_deterministic_batched(
                flat_sizes, starts_flat, piece_off, p_k, r_k,
                noneligible, isl_off,
                [subgroup_sizes[int(k)] for k in noneligible],
                colmaj=piece_layout == "colmaj",
            )
            if det_parts is not None:
                parts.append(det_parts)
                noneligible = noneligible[:0]
            elif piece_layout == "colmaj" and total_words > 0:
                raise RuntimeError("column-major piece plane requires the "
                                   "batched deterministic assignment")
        for k in noneligible:
            k = int(k)
            pk, rk = int(p_k[k]), int(r_k[k])
            sizes_k = flat_sizes[piece_off[k]:piece_off[k + 1]].reshape(pk, rk)
            starts_k = starts_flat[piece_off[k]:piece_off[k + 1]].reshape(pk, rk)
            g_sizes = np.asarray(subgroup_sizes[k], dtype=np.int64)
            if int(g_sizes.sum()) != pk:
                raise ValueError("sub-groups must partition their island")
            g_starts = np.zeros(g_sizes.size, dtype=np.int64)
            np.cumsum(g_sizes[:-1], out=g_starts[1:])
            if method == "naive":
                parts_k, _, _ = _flat_assign_by_prefix(
                    sizes_k, starts_k, g_starts, g_sizes, None
                )
            elif method == "randomized":
                orders = []
                for j in range(rk):
                    perm = FeistelPermutation(pk, seed=seed * 104729 + j)
                    orders.append(np.argsort(perm.permutation_array(), kind="stable"))
                parts_k, _, _ = _flat_assign_by_prefix(
                    sizes_k, starts_k, g_starts, g_sizes, orders
                )
            elif method == "deterministic":
                parts_k, _, _ = _flat_assign_deterministic(
                    sizes_k, starts_k, g_starts, g_sizes
                )
            else:  # advanced
                parts_k, _, _, desc_src, desc_dest = _flat_advanced_parts(
                    sizes_k, starts_k, g_starts, g_sizes, seed, oversplit
                )
                if desc_src.size:
                    desc_parts.append(np.stack([
                        desc_src + isl_off[k], desc_dest + isl_off[k],
                        np.full(desc_src.size, k, dtype=np.int64),
                    ]))
            for part in parts_k:
                # Island-local ranks -> batch ranks (starts are global already).
                part = part.copy()
                part[0] += isl_off[k]
                part[1] += isl_off[k]
                parts.append(part)

        # Advanced: one batched cost-only descriptor exchange for the
        # islands that delegated chunks (the others skip it, as per island).
        if desc_parts:
            dsrc, ddest, disl = np.concatenate(desc_parts, axis=1)
            desc_islands = np.unique(disl)
            words_s = np.zeros(q, dtype=np.int64)
            words_r = np.zeros(q, dtype=np.int64)
            np.add.at(words_s, dsrc, 3)
            np.add.at(words_r, ddest, 3)
            msg_s = np.bincount(dsrc, minlength=q).astype(np.int64)
            msg_r = np.bincount(ddest, minlength=q).astype(np.int64)
            machine.counters.record_messages(
                islands.members[dsrc], islands.members[ddest],
                np.full(dsrc.size, 3, dtype=np.int64),
            )
            if schedule == "dense":
                dense = np.repeat(p_k - 1, p_k)
                msg_s = dense.copy()
                msg_r = dense.copy()
            sel = np.isin(pe_isl, desc_islands)
            islands.select(desc_islands).charge_exchange(
                words_s[sel], words_r[sel], msg_s[sel], msg_r[sel],
                charge_copy=False,
            )

        if parts:
            stacked = np.concatenate(parts, axis=1)
            src, dest, start, length = stacked
        else:
            src = dest = start = length = np.empty(0, dtype=np.int64)

        # Locally kept (self-addressed) pieces stay off the network; charged
        # in send order, exactly like the per-island reference.  For the
        # prefix/deterministic assignments every (src, dest) pair carries at
        # most one message, so each PE has at most one kept piece and the
        # charges vectorise; the advanced chunking can keep several pieces
        # per PE, whose per-PE charge order the loop preserves.
        kept_mask = src == dest
        if method == "advanced":
            for k in np.flatnonzero(kept_mask):
                machine.advance(
                    int(islands.members[src[k]]),
                    spec.local_move_time(int(length[k])),
                )
        elif kept_mask.any():
            kidx = np.flatnonzero(kept_mask)
            machine.advance_many(
                islands.members[src[kidx]],
                spec.move_ns * 1e-9 * np.maximum(length[kidx], 0),
            )

        # The whole level's network messages as one batched exchange.
        net = ~kept_mask
        words_sent = np.bincount(
            src[net], weights=length[net], minlength=q
        ).astype(np.int64)
        words_received = np.bincount(
            dest[net], weights=length[net], minlength=q
        ).astype(np.int64)
        net_nonempty = net & (length > 0)
        messages_sent = np.bincount(src[net_nonempty], minlength=q).astype(np.int64)
        messages_received = np.bincount(dest[net_nonempty], minlength=q).astype(np.int64)
        if net_nonempty.any():
            machine.counters.record_messages(
                islands.members[src[net_nonempty]],
                islands.members[dest[net_nonempty]],
                length[net_nonempty],
            )
        if schedule == "dense":
            dense = np.repeat(p_k - 1, p_k)
            messages_sent = dense.copy()
            messages_received = dense.copy()
        islands.charge_exchange(
            words_sent, words_received, messages_sent, messages_received
        )

        # Assemble the received DistArray from all runs (network + kept),
        # ordered by (receiver, source, send order) as in the reference.
        # In the fused element plane (all pieces whole messages) that order
        # is one stable argsort of the per-element destination; otherwise
        # messages are gathered out of the piece-space buffer.
        if fused:
            elem_values, elem_dest = elem_plane
            eorder = stable_key_argsort(np.asarray(elem_dest), q)
            recv_values = gather(np.asarray(elem_values), eorder)
        else:
            order = stable_two_key_argsort(dest, src, q, q)
            recv_values = take_ranges(piece_values, start[order], length[order])
        received_sizes = np.bincount(
            dest, weights=length, minlength=q
        ).astype(np.int64)
        received = DistArray.from_sizes(recv_values, received_sizes)
        nonempty_runs = np.bincount(
            dest[length > 0], minlength=q
        ).astype(np.int64)

    return BatchedDeliveryResult(
        received=received,
        received_sizes=received_sizes,
        nonempty_runs=nonempty_runs,
    )
