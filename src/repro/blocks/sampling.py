"""Sampling parameters and distributed sample drawing for AMS-sort.

AMS-sort (Section 6) chooses a random sample controlled by two tuning
parameters:

* the **oversampling factor** ``a`` — more samples per splitter improve the
  accuracy of every splitter,
* the **overpartitioning factor** ``b`` — the algorithm creates ``b * r``
  buckets but only ``r`` PE groups, which lets the bucket-grouping step
  compensate sampling noise and reduces the required sample size for an
  ``eps`` imbalance from ``O(1/eps^2)`` to ``O(1/eps)`` (Lemma 2).

The paper's experiments use ``b = 16`` and ``a = 1.6 * log10(n)``
(Section 7.2); Figure 10/11 sweep ``a`` and ``b``.  The helpers here
reproduce that parameterisation and draw the per-PE samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dist.array import DistArray


def default_oversampling(n_total: int) -> float:
    """The oversampling factor used in the paper's experiments: ``1.6 * log10(n)``."""
    if n_total <= 1:
        return 1.0
    return max(1.0, 1.6 * math.log10(n_total))


@dataclass(frozen=True)
class SamplingParams:
    """Sampling configuration for one level of AMS-sort.

    Attributes
    ----------
    oversampling:
        The factor ``a``.
    overpartitioning:
        The factor ``b`` (``b = 1`` disables overpartitioning and recovers a
        classic sample sort splitter selection).
    per_pe:
        If True (the paper's implementation), every PE contributes
        ``ceil(a * b)`` samples, i.e. the total sample has ``~ a*b*p``
        elements.  If False (the theoretical variant of Section 6), the
        *global* sample has ``ceil(a * b * r)`` elements, spread evenly over
        the PEs.
    """

    oversampling: float = 8.0
    overpartitioning: int = 16
    per_pe: bool = True

    def __post_init__(self) -> None:
        if self.oversampling <= 0:
            raise ValueError("oversampling factor a must be positive")
        if self.overpartitioning < 1:
            raise ValueError("overpartitioning factor b must be at least 1")

    # ------------------------------------------------------------------
    def num_buckets(self, r: int) -> int:
        """Number of buckets ``b * r`` created at a level with ``r`` groups."""
        if r < 1:
            raise ValueError("need at least one group")
        return int(self.overpartitioning) * int(r)

    def num_splitters(self, r: int) -> int:
        """Number of splitters ``b*r - 1``."""
        return max(0, self.num_buckets(r) - 1)

    def samples_per_pe(self, p: int, r: int) -> int:
        """Number of sample elements each PE contributes."""
        if p < 1:
            raise ValueError("need at least one PE")
        if self.per_pe:
            return max(1, int(math.ceil(self.oversampling * self.overpartitioning)))
        total = int(math.ceil(self.oversampling * self.overpartitioning * r))
        return max(1, int(math.ceil(total / p)))

    def total_samples(self, p: int, r: int) -> int:
        """Total size of the sample over all PEs."""
        return self.samples_per_pe(p, r) * p

    @staticmethod
    def paper_defaults(n_total: int, overpartitioning: int = 16) -> "SamplingParams":
        """The configuration used in Section 7.2 of the paper."""
        return SamplingParams(
            oversampling=default_oversampling(n_total),
            overpartitioning=overpartitioning,
            per_pe=True,
        )

    @staticmethod
    def theory(eps: float, r: int) -> "SamplingParams":
        """Theoretical parameter choice of Lemma 2: ``b = Theta(1/eps)``, ``ab = Theta(log r)``."""
        if eps <= 0:
            raise ValueError("imbalance eps must be positive")
        b = max(1, int(math.ceil(2.0 / eps)))
        ab = max(float(b), math.log(max(r, 2)) * 2.0)
        a = max(1.0, ab / b)
        return SamplingParams(oversampling=a, overpartitioning=b, per_pe=False)


def draw_local_sample(
    values: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` random sample elements from one PE's local data.

    Sampling is with replacement when ``count`` exceeds the local size (this
    can only happen for tiny inputs) and without replacement otherwise, which
    matches the behaviour of drawing random positions in the local array.
    An empty local array contributes an empty sample.
    """
    values = np.asarray(values)
    if count <= 0 or values.size == 0:
        return values[:0].copy()
    if count >= values.size:
        idx = rng.integers(0, values.size, size=count)
    else:
        idx = rng.choice(values.size, size=count, replace=False)
    return values[idx].copy()


def draw_samples(
    local_data: Sequence[np.ndarray],
    params: SamplingParams,
    p: int,
    r: int,
    rngs: Sequence[np.random.Generator],
) -> List[np.ndarray]:
    """Draw the per-PE samples for one AMS-sort level.

    ``rngs`` must contain one generator per PE (PE-local randomness).
    """
    if len(local_data) != p or len(rngs) != p:
        raise ValueError("need one local array and one RNG per PE")
    per_pe = params.samples_per_pe(p, r)
    return [draw_local_sample(np.asarray(d), per_pe, g) for d, g in zip(local_data, rngs)]


def draw_samples_flat(
    data: DistArray, count: int, rngs: Sequence[np.random.Generator]
) -> DistArray:
    """Segment-aware sample drawing for the flat engine.

    Draws ``count`` elements from every PE segment of ``data`` using that
    PE's own random stream (``rngs[i]``), exactly like the per-PE reference
    (:func:`draw_local_sample` per PE), and returns the sample as a
    :class:`DistArray`.  The per-PE RNG streams are consumed in ascending PE
    order so the drawn sample is byte-identical to the reference path.
    """
    if len(rngs) != data.p:
        raise ValueError("need one RNG per PE segment")
    samples = [
        draw_local_sample(data.segment(i), count, rngs[i]) for i in range(data.p)
    ]
    return DistArray.from_list(samples)


def splitter_ranks(sample_size: int, num_splitters: int) -> np.ndarray:
    """Equidistant ranks used to pick splitters from the sorted sample.

    Splitter ``i`` (``0 <= i < num_splitters``) is the sample element of rank
    ``floor((i + 1) * sample_size / (num_splitters + 1))`` (0-based, clamped).
    """
    if num_splitters <= 0 or sample_size <= 0:
        return np.empty(0, dtype=np.int64)
    ranks = ((np.arange(1, num_splitters + 1) * sample_size) // (num_splitters + 1))
    return np.clip(ranks, 0, sample_size - 1).astype(np.int64)
