"""Sampling parameters and distributed sample drawing for AMS-sort.

AMS-sort (Section 6) chooses a random sample controlled by two tuning
parameters:

* the **oversampling factor** ``a`` — more samples per splitter improve the
  accuracy of every splitter,
* the **overpartitioning factor** ``b`` — the algorithm creates ``b * r``
  buckets but only ``r`` PE groups, which lets the bucket-grouping step
  compensate sampling noise and reduces the required sample size for an
  ``eps`` imbalance from ``O(1/eps^2)`` to ``O(1/eps)`` (Lemma 2).

The paper's experiments use ``b = 16`` and ``a = 1.6 * log10(n)``
(Section 7.2); Figure 10/11 sweep ``a`` and ``b``.  The helpers here
reproduce that parameterisation and draw the per-PE samples.

Since PR 3 the sample positions come from the machine's counter-based RNG
(:class:`~repro.dist.ctr_rng.CounterRNG`): position ``j`` of PE ``i`` at
recursion level ``l`` is ``philox(seed, l, i, j) mod local_size`` — drawn
with replacement, one vectorised call for the whole machine per level, and
byte-identical between the flat engine and the per-PE reference because the
draw depends only on its coordinates.  :func:`draw_local_sample` remains as
the legacy ``np.random.Generator`` utility for callers outside the engine
hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.dist.array import DistArray
from repro.dist.ctr_rng import CounterRNG
from repro.dist.flatops import concat_ranges


def default_oversampling(n_total: int) -> float:
    """The oversampling factor used in the paper's experiments: ``1.6 * log10(n)``."""
    if n_total <= 1:
        return 1.0
    return max(1.0, 1.6 * math.log10(n_total))


@dataclass(frozen=True)
class SamplingParams:
    """Sampling configuration for one level of AMS-sort.

    Attributes
    ----------
    oversampling:
        The factor ``a``.
    overpartitioning:
        The factor ``b`` (``b = 1`` disables overpartitioning and recovers a
        classic sample sort splitter selection).
    per_pe:
        If True (the paper's implementation), every PE contributes
        ``ceil(a * b)`` samples, i.e. the total sample has ``~ a*b*p``
        elements.  If False (the theoretical variant of Section 6), the
        *global* sample has ``ceil(a * b * r)`` elements, spread evenly over
        the PEs.
    """

    oversampling: float = 8.0
    overpartitioning: int = 16
    per_pe: bool = True

    def __post_init__(self) -> None:
        if self.oversampling <= 0:
            raise ValueError("oversampling factor a must be positive")
        if self.overpartitioning < 1:
            raise ValueError("overpartitioning factor b must be at least 1")

    # ------------------------------------------------------------------
    def num_buckets(self, r: int) -> int:
        """Number of buckets ``b * r`` created at a level with ``r`` groups."""
        if r < 1:
            raise ValueError("need at least one group")
        return int(self.overpartitioning) * int(r)

    def num_splitters(self, r: int) -> int:
        """Number of splitters ``b*r - 1``."""
        return max(0, self.num_buckets(r) - 1)

    def samples_per_pe(self, p: int, r: int) -> int:
        """Number of sample elements each PE contributes."""
        if p < 1:
            raise ValueError("need at least one PE")
        if self.per_pe:
            return max(1, int(math.ceil(self.oversampling * self.overpartitioning)))
        total = int(math.ceil(self.oversampling * self.overpartitioning * r))
        return max(1, int(math.ceil(total / p)))

    def total_samples(self, p: int, r: int) -> int:
        """Total size of the sample over all PEs."""
        return self.samples_per_pe(p, r) * p

    @staticmethod
    def paper_defaults(n_total: int, overpartitioning: int = 16) -> "SamplingParams":
        """The configuration used in Section 7.2 of the paper."""
        return SamplingParams(
            oversampling=default_oversampling(n_total),
            overpartitioning=overpartitioning,
            per_pe=True,
        )

    @staticmethod
    def theory(eps: float, r: int) -> "SamplingParams":
        """Theoretical parameter choice of Lemma 2: ``b = Theta(1/eps)``, ``ab = Theta(log r)``."""
        if eps <= 0:
            raise ValueError("imbalance eps must be positive")
        b = max(1, int(math.ceil(2.0 / eps)))
        ab = max(float(b), math.log(max(r, 2)) * 2.0)
        a = max(1.0, ab / b)
        return SamplingParams(oversampling=a, overpartitioning=b, per_pe=False)


def draw_local_sample(
    values: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` random sample elements from one PE's local data.

    Sampling is with replacement when ``count`` exceeds the local size (this
    can only happen for tiny inputs) and without replacement otherwise, which
    matches the behaviour of drawing random positions in the local array.
    An empty local array contributes an empty sample.
    """
    values = np.asarray(values)
    if count <= 0 or values.size == 0:
        return values[:0].copy()
    if count >= values.size:
        idx = rng.integers(0, values.size, size=count)
    else:
        idx = rng.choice(values.size, size=count, replace=False)
    return values[idx].copy()


def draw_samples_flat(
    data: DistArray,
    counts: Union[int, np.ndarray],
    rng: CounterRNG,
    level: int,
    pes: np.ndarray,
) -> DistArray:
    """Counter-RNG sample drawing for a whole machine (or batch) at once.

    This is the *single* sampling code path of both engines: PE segment
    ``i`` of ``data`` contributes ``counts[i]`` elements drawn uniformly
    (with replacement) at the positions

        ``rng.integers(level, pes[i], j, segment_size_i)``  for ``j < counts[i]``

    — a pure function of ``(machine seed, level, global PE, draw index)``,
    so the whole batch is one vectorised Philox call plus one gather, with
    no per-PE loop, and a per-PE invocation (``data`` restricted to one
    segment) yields byte-identical values.  Empty segments contribute empty
    samples.

    Parameters
    ----------
    data:
        The distributed values to sample from.
    counts:
        Samples per segment (scalar or one entry per segment).
    rng:
        The machine's :attr:`~repro.sim.machine.SimulatedMachine.sample_rng`.
    level:
        Recursion level (stream selector).
    pes:
        Global PE index of every segment (stream selector); for a
        whole-machine draw this is ``comm.members``.
    """
    p = data.p
    pes = np.asarray(pes, dtype=np.int64)
    if pes.shape != (p,):
        raise ValueError("need one global PE index per segment")
    sizes = data.sizes()
    counts = np.broadcast_to(np.asarray(counts, dtype=np.int64), (p,))
    if counts.size and int(counts.min(initial=0)) < 0:
        raise ValueError("sample counts must be non-negative")
    eff = np.where(sizes > 0, counts, 0)
    total = int(eff.sum())
    if total == 0:
        return DistArray(np.empty(0, dtype=data.dtype), np.zeros(p + 1, np.int64))
    seg = np.repeat(np.arange(p, dtype=np.int64), eff)
    # Draw j of stream (level, pe) is 32-bit word j mod 4 of Philox block
    # j div 4 — one block feeds four sample positions, quartering the
    # Philox work.  Blocks are evaluated per (segment, block index) lane;
    # the per-draw words are then gathered out of each segment's block
    # prefix.  32-bit words limit segment sizes to 2**31 (far above any
    # simulated per-PE load; the modulo bias at realistic sizes is < 1e-3).
    if sizes.size and int(sizes.max(initial=0)) >= 2 ** 31:
        raise ValueError("segment too large for 32-bit sample positions")
    lane_counts = (eff + 3) >> 2
    n_lanes = int(lane_counts.sum())
    lane_seg = np.repeat(np.arange(p, dtype=np.int64), lane_counts)
    lane_excl = np.cumsum(lane_counts) - lane_counts
    lane_idx = np.arange(n_lanes, dtype=np.int64) - lane_excl[lane_seg]
    y0, y1, y2, y3 = rng.blocks(level, pes[lane_seg], lane_idx)
    words = np.empty((n_lanes, 4), dtype=np.uint64)
    words[:, 0] = y0
    words[:, 1] = y1
    words[:, 2] = y2
    words[:, 3] = y3
    if not np.any(eff & 3):
        # Every segment consumes whole blocks: the per-draw words are the
        # block words in order, no gather needed.
        draw_words = words.reshape(-1)
    else:
        draw_words = words.reshape(-1)[concat_ranges(lane_excl * 4, eff)]
    draw_sizes = sizes[seg].astype(np.uint64) if int(sizes.min()) != int(sizes.max()) \
        else np.uint64(sizes[0])
    pos = (draw_words % draw_sizes).astype(np.int64)
    values = data.values[data.offsets[seg] + pos]
    return DistArray.from_sizes(values, eff)


def draw_samples(
    local_data: Sequence[np.ndarray],
    params: SamplingParams,
    p: int,
    r: int,
    rng: CounterRNG,
    level: int,
    pes: np.ndarray,
) -> List[np.ndarray]:
    """Draw the per-PE samples for one AMS-sort level (reference view).

    A thin list-of-arrays wrapper over :func:`draw_samples_flat` — the
    per-PE reference specification and the flat engine share the one
    counter-RNG sampling helper, which is what keeps their drawn samples
    byte-identical without replaying stateful per-PE streams.
    """
    if len(local_data) != p:
        raise ValueError("need one local array per PE")
    per_pe = params.samples_per_pe(p, r)
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    return draw_samples_flat(dist, per_pe, rng, level, pes).to_list()


def splitter_ranks(sample_size: int, num_splitters: int) -> np.ndarray:
    """Equidistant ranks used to pick splitters from the sorted sample.

    Splitter ``i`` (``0 <= i < num_splitters``) is the sample element of rank
    ``floor((i + 1) * sample_size / (num_splitters + 1))`` (0-based, clamped).
    """
    if num_splitters <= 0 or sample_size <= 0:
        return np.empty(0, dtype=np.int64)
    ranks = ((np.arange(1, num_splitters + 1) * sample_size) // (num_splitters + 1))
    return np.clip(ranks, 0, sample_size - 1).astype(np.int64)
