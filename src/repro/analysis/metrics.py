"""Scalar metrics used by the experiment harness (slowdown, efficiency, ...)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def slowdown(time: float, reference_time: float) -> float:
    """Ratio ``time / reference_time`` (Figure 7 plots RLM/AMS slowdown)."""
    if reference_time <= 0:
        raise ValueError("reference time must be positive")
    return float(time / reference_time)


def speedup(sequential_time: float, parallel_time: float) -> float:
    """Classic speedup ``T_seq / T_par``."""
    if parallel_time <= 0:
        raise ValueError("parallel time must be positive")
    return float(sequential_time / parallel_time)


def efficiency(sequential_time: float, parallel_time: float, p: int) -> float:
    """Parallel efficiency ``speedup / p``."""
    if p <= 0:
        raise ValueError("p must be positive")
    return speedup(sequential_time, parallel_time) / p


def weak_scaling_efficiency(times: Sequence[float]) -> List[float]:
    """Weak-scaling efficiency relative to the smallest configuration.

    For a weak-scaling series (constant work per PE) the ideal is constant
    time; the efficiency of entry ``i`` is ``times[0] / times[i]``.
    """
    times = [float(t) for t in times]
    if not times:
        return []
    if times[0] <= 0:
        raise ValueError("first measurement must be positive")
    return [times[0] / t if t > 0 else float("inf") for t in times]


def median(values: Iterable[float]) -> float:
    """Median of a sequence (the paper reports medians of five repetitions)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(arr))


def summarize_runs(times: Sequence[float]) -> Dict[str, float]:
    """Median / min / max / spread of repeated measurements (Figure 12)."""
    arr = np.asarray(list(times), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no measurements to summarize")
    med = float(np.median(arr))
    return {
        "median": med,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "spread": float(arr.max() - arr.min()),
        "relative_spread": float((arr.max() - arr.min()) / med) if med > 0 else 0.0,
        "runs": int(arr.size),
    }
