"""Analysis utilities: theoretical cost model, metrics and table formatting."""

from repro.analysis.theory import (
    ams_sort_time_model,
    rlm_sort_time_model,
    single_level_sample_sort_time_model,
    exch_lower_bound,
    isoefficiency_ams,
    isoefficiency_rlm,
    isoefficiency_single_level,
    startup_bound_multilevel,
)
from repro.analysis.calibration import (
    CalibrationResult,
    calibrate_spec,
    measure_local_costs,
)
from repro.analysis.metrics import (
    slowdown,
    speedup,
    efficiency,
    weak_scaling_efficiency,
    median,
    summarize_runs,
)
from repro.analysis.tables import (
    format_table,
    format_series,
    rows_to_csv,
)

__all__ = [
    "CalibrationResult",
    "calibrate_spec",
    "measure_local_costs",
    "ams_sort_time_model",
    "rlm_sort_time_model",
    "single_level_sample_sort_time_model",
    "exch_lower_bound",
    "isoefficiency_ams",
    "isoefficiency_rlm",
    "isoefficiency_single_level",
    "startup_bound_multilevel",
    "slowdown",
    "speedup",
    "efficiency",
    "weak_scaling_efficiency",
    "median",
    "summarize_runs",
    "format_table",
    "format_series",
    "rows_to_csv",
]
