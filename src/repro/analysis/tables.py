"""Plain-text table and series formatting for experiment output.

The benchmark harness prints the same rows/series the paper reports
(Table 2, Figures 7-12).  No plotting dependencies are used; the formatters
produce aligned text tables and simple ASCII series that are easy to diff
and to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Format a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, ""), precision) for c in columns] for row in rows]
    widths = [len(h) for h in header]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for line in body:
        out.write("  ".join(c.ljust(w) for c, w in zip(line, widths)).rstrip() + "\n")
    return out.getvalue()


def format_series(
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Format several y-series over common x-values as a text table."""
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label] + list(series.keys()),
                        title=title, precision=precision)


def rows_to_csv(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Serialise row dictionaries to CSV text (for archiving results)."""
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    out = io.StringIO()
    out.write(",".join(str(c) for c in columns) + "\n")
    for row in rows:
        out.write(",".join(str(row.get(c, "")) for c in columns) + "\n")
    return out.getvalue()
