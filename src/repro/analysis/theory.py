"""Closed-form running-time models from the paper's analysis.

These functions evaluate the asymptotic cost expressions of the paper with
explicit constants taken from a :class:`~repro.machine.spec.MachineSpec`, so
that benchmarks can compare the *shape* of the simulated results against the
analysis (Theorem 2 for RLM-sort, Theorem 3 / Lemma 3 for AMS-sort) and so
that the isoefficiency statements of Sections 5 and 6 can be plotted.

The models intentionally ignore lower-order terms exactly where the paper
does; they are not a re-derivation, just a faithful transcription.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.machine.spec import MachineSpec


def exch_lower_bound(spec: MachineSpec, h_words: float, r_messages: float,
                     level: int = 2) -> float:
    """Single-ported lower bound ``h*beta + r*alpha`` for ``Exch(P, h, r)``."""
    return h_words * spec.beta_for_level(level) + r_messages * spec.alpha


def startup_bound_multilevel(p: int, levels: int) -> float:
    """The ``O(k * p^(1/k))`` bound on message startups per PE (Section 1).

    This is the quantity the multi-level algorithms trade data movement
    against: with ``k`` levels every PE participates in ``k`` exchanges with
    ``O(p^(1/k))`` messages each instead of one exchange with ``O(p)``
    messages.
    """
    if p <= 0 or levels <= 0:
        raise ValueError("p and levels must be positive")
    return levels * (p ** (1.0 / levels))


def rlm_sort_time_model(
    spec: MachineSpec, n: int, p: int, levels: int, level_of_exchange: int = 2
) -> Dict[str, float]:
    """Running-time terms of RLM-sort (Theorem 2 / Equation (3)).

    Returns a dictionary with the individual terms (seconds):
    ``local_sort``, ``multiselect``, ``exchange`` and ``total``.
    """
    if n <= 0 or p <= 0 or levels <= 0:
        raise ValueError("n, p and levels must be positive")
    n_over_p = max(1.0, n / p)
    r = p ** (1.0 / levels)
    log_n = math.log2(max(n, 2))
    log_p = math.log2(max(p, 2))

    local_sort = spec.local_sort_time(int(n_over_p))
    # O((alpha log p + r beta + r log(n/p)) log n) for the k=O(1) multiselects
    multiselect = (
        spec.alpha * log_p
        + r * spec.beta
        + r * math.log2(n_over_p + 1) * spec.comparison_ns * 1e-9
    ) * log_n * levels
    # k exchanges of n/p words with O(r) startups each
    exchange = levels * exch_lower_bound(spec, n_over_p, 2.0 * r, level=level_of_exchange)
    # merging the received runs on every level
    merge = levels * spec.local_merge_time(int(n_over_p), max(2, int(round(r))))
    total = local_sort + multiselect + exchange + merge
    return {
        "local_sort": local_sort,
        "multiselect": multiselect,
        "exchange": exchange,
        "merge": merge,
        "total": total,
    }


def ams_sort_time_model(
    spec: MachineSpec,
    n: int,
    p: int,
    levels: int,
    eps: float = 0.1,
    level_of_exchange: int = 2,
) -> Dict[str, float]:
    """Running-time terms of AMS-sort (Theorem 3 / Lemma 3).

    Terms returned: ``local_sort`` (final internal sorting), ``partition``
    (bucket partitioning over all levels), ``splitter`` (sample sorting and
    splitter broadcast), ``exchange`` and ``total``.
    """
    if n <= 0 or p <= 0 or levels <= 0:
        raise ValueError("n, p and levels must be positive")
    if eps <= 0:
        raise ValueError("eps must be positive")
    n_over_p = max(1.0, n / p)
    r = p ** (1.0 / levels)
    log_p = math.log2(max(p, 2))

    local_sort = spec.local_sort_time(int(n_over_p))
    # O(n/p log(r/eps)) partitioning per level
    partition = levels * spec.local_partition_time(
        int(n_over_p), max(2, int(round(r / eps)))
    )
    # O(beta k^2 p^(1/k) / eps) communication volume for splitters + samples
    splitter = (
        spec.beta * (levels ** 2) * r / eps
        + levels * spec.alpha * log_p
    )
    exchange = levels * exch_lower_bound(
        spec, (1.0 + eps) * n_over_p, 2.0 * r, level=level_of_exchange
    )
    total = local_sort + partition + splitter + exchange
    return {
        "local_sort": local_sort,
        "partition": partition,
        "splitter": splitter,
        "exchange": exchange,
        "total": total,
    }


def single_level_sample_sort_time_model(
    spec: MachineSpec, n: int, p: int, level_of_exchange: int = 2
) -> Dict[str, float]:
    """Running-time terms of classic single-level sample sort.

    The exchange has ``p - 1`` startups per PE, which is exactly the term
    that does not scale (isoefficiency ``Omega(p^2 / log p)``).
    """
    if n <= 0 or p <= 0:
        raise ValueError("n and p must be positive")
    n_over_p = max(1.0, n / p)
    log_p = math.log2(max(p, 2))
    local_sort = spec.local_sort_time(int(n_over_p))
    partition = spec.local_partition_time(int(n_over_p), max(2, p))
    splitter = spec.alpha * log_p + spec.beta * p * math.log2(max(p, 2))
    exchange = exch_lower_bound(spec, n_over_p, max(1, p - 1), level=level_of_exchange)
    total = local_sort + partition + splitter + exchange
    return {
        "local_sort": local_sort,
        "partition": partition,
        "splitter": splitter,
        "exchange": exchange,
        "total": total,
    }


def isoefficiency_rlm(p: int, levels: int) -> float:
    """Isoefficiency function of RLM-sort: ``O(p^(1+1/k) * log p)`` (Section 5)."""
    if p <= 1:
        return float(p)
    return p ** (1.0 + 1.0 / levels) * math.log2(p)


def isoefficiency_ams(p: int, levels: int) -> float:
    """Isoefficiency function of AMS-sort: ``p^(1+1/k) / log p`` (Section 6)."""
    if p <= 1:
        return float(p)
    return p ** (1.0 + 1.0 / levels) / math.log2(p)


def isoefficiency_single_level(p: int) -> float:
    """Isoefficiency of single-level sample sort: ``p^2 / log p`` (Section 1)."""
    if p <= 1:
        return float(p)
    return p * p / math.log2(p)
