"""Calibration of the machine model's local-work constants.

The simulator charges local work through per-element constants in
:class:`~repro.machine.spec.MachineSpec` (``comparison_ns``, ``merge_ns``,
``partition_ns``, ``move_ns``).  The presets ship with values that roughly
correspond to a 2-ish GHz core running an optimised C++ implementation, as in
the paper.  When the goal is instead to model *this* machine running *this*
NumPy code (e.g. to compare the simulator's predictions against real
wall-clock measurements of the sequential primitives), the constants can be
measured directly with :func:`calibrate_spec`.

Calibration is deliberately cheap (a few tens of milliseconds) and pure —
it returns a new spec and never mutates global state.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.machine.spec import MachineSpec
from repro.seq.merge import merge_two
from repro.seq.partition import bucket_indices


@dataclass(frozen=True)
class CalibrationResult:
    """Measured per-element costs (nanoseconds) of the sequential primitives."""

    comparison_ns: float
    merge_ns: float
    partition_ns: float
    move_ns: float
    sample_size: int

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary view (for logging)."""
        return {
            "comparison_ns": self.comparison_ns,
            "merge_ns": self.merge_ns,
            "partition_ns": self.partition_ns,
            "move_ns": self.move_ns,
            "sample_size": float(self.sample_size),
        }


def _best_of(fn, repeats: int = 3) -> float:
    """Smallest wall-clock time of ``repeats`` invocations of ``fn`` (seconds)."""
    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_local_costs(sample_size: int = 200_000, seed: int = 0,
                        repeats: int = 3) -> CalibrationResult:
    """Measure the per-element costs of sorting, merging, partitioning and copying.

    Parameters
    ----------
    sample_size:
        Number of elements used per measurement; large enough to amortise
        call overheads, small enough to stay in the tens of milliseconds.
    """
    if sample_size < 1000:
        raise ValueError("sample_size too small for a meaningful calibration")
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2**62, size=sample_size, dtype=np.int64)
    sorted_a = np.sort(data[: sample_size // 2])
    sorted_b = np.sort(data[sample_size // 2:])
    splitters = np.sort(rng.integers(0, 2**62, size=255, dtype=np.int64))

    t_sort = _best_of(lambda: np.sort(data, kind="stable"), repeats)
    t_merge = _best_of(lambda: merge_two(sorted_a, sorted_b), repeats)
    t_partition = _best_of(lambda: bucket_indices(data, splitters), repeats)
    t_move = _best_of(lambda: data.copy(), repeats)

    n = float(sample_size)
    comparison_ns = 1e9 * t_sort / (n * max(1.0, math.log2(n)))
    merge_ns = 1e9 * t_merge / n  # two-way merge: log2(ways) == 1
    partition_ns = 1e9 * t_partition / (n * math.log2(splitters.size + 1))
    move_ns = 1e9 * t_move / n
    return CalibrationResult(
        comparison_ns=max(comparison_ns, 1e-3),
        merge_ns=max(merge_ns, 1e-3),
        partition_ns=max(partition_ns, 1e-3),
        move_ns=max(move_ns, 1e-3),
        sample_size=sample_size,
    )


def calibrate_spec(base: MachineSpec | None = None, sample_size: int = 200_000,
                   seed: int = 0) -> MachineSpec:
    """Return a copy of ``base`` with local-work constants measured on this host.

    Network parameters (``alpha``, ``beta``, hierarchy) are left untouched —
    they describe the *modelled* machine, not the host running the simulation.
    """
    if base is None:
        from repro.machine.spec import supermuc_like

        base = supermuc_like()
    measured = measure_local_costs(sample_size=sample_size, seed=seed)
    return base.with_overrides(
        name=f"{base.name}-calibrated",
        comparison_ns=measured.comparison_ns,
        merge_ns=measured.merge_ns,
        partition_ns=measured.partition_ns,
        move_ns=measured.move_ns,
    )
