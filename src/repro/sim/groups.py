"""Lockstep charging for batches of pairwise disjoint PE groups.

The deepest recursion level of the multi-level sorting algorithms runs the
*same* program on many independent PE groups (one per island of the previous
level).  The per-PE reference engine iterates the islands in Python; the flat
engine executes them in lockstep, which requires charging many disjoint
sub-communicators in one shot.

:class:`GroupBatch` provides exactly that: a batch of disjoint PE groups with
segmented synchronisation (``np.maximum.reduceat``), per-group collective
charges and per-group exchange charges.  Because the groups are disjoint,
every PE receives the same sequence of clock/phase updates (with the same
values) as it would under the island-by-island reference execution — the
batching only reorders updates *across* PEs, which the per-PE clocks,
breakdowns and counters cannot observe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.dist.flatops import concat_ranges


class GroupBatch:
    """A batch of pairwise disjoint PE groups charged in lockstep.

    Parameters
    ----------
    machine:
        The owning :class:`~repro.sim.machine.SimulatedMachine`.
    members:
        Global PE indices of all groups back to back; each group's slice
        must be sorted ascending.
    offsets:
        ``num_groups + 1`` offsets delimiting the groups inside ``members``.
        Groups must be non-empty.
    """

    def __init__(self, machine, members: np.ndarray, offsets: np.ndarray):
        self.machine = machine
        self.members = np.asarray(members, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.sizes = np.diff(self.offsets)
        if np.any(self.sizes <= 0):
            raise ValueError("groups must be non-empty")
        if self.offsets[-1] != self.members.size:
            raise ValueError("offsets do not cover the member array")
        self._levels: Optional[np.ndarray] = None

    @property
    def num_groups(self) -> int:
        """Number of groups in the batch."""
        return int(self.sizes.size)

    def levels(self) -> np.ndarray:
        """Topology level of every group (cached; same as ``Comm.level``)."""
        if self._levels is None:
            topo = self.machine.topology
            self._levels = topo.distance_levels(
                self.members[self.offsets[:-1]],
                self.members[self.offsets[1:] - 1],
            )
        return self._levels

    def select(self, group_idx: np.ndarray) -> "GroupBatch":
        """Sub-batch containing only the given groups (by index)."""
        group_idx = np.asarray(group_idx, dtype=np.int64)
        sizes = self.sizes[group_idx]
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        members = self.members[concat_ranges(self.offsets[group_idx], sizes)]
        sub = GroupBatch(self.machine, members, offsets)
        if self._levels is not None:
            sub._levels = self._levels[group_idx]
        return sub

    # ------------------------------------------------------------------
    def synchronize(self) -> None:
        """Barrier within every group (segmented clock maximum).

        Matches ``machine.synchronize(group)`` applied to every group: the
        waiting time is attributed to the current phase.
        """
        machine = self.machine
        clocks = machine.clock[self.members]
        t = np.maximum.reduceat(clocks, self.offsets[:-1])
        t_rep = np.repeat(t, self.sizes)
        waits = t_rep - clocks
        machine.clock[self.members] = t_rep
        vec = np.zeros(machine.p, dtype=np.float64)
        vec[self.members] = waits
        machine.breakdown.add_many(machine.current_phase, vec)

    def advance(self, per_group_seconds: Sequence[float]) -> None:
        """Advance every group's members by its own scalar time."""
        dts = np.repeat(np.asarray(per_group_seconds, dtype=np.float64), self.sizes)
        self.machine.advance_many(self.members, dts)

    def charge_collective(
        self,
        words: Sequence[int],
        rounds_factors: Optional[Sequence[float]] = None,
    ) -> None:
        """Per-group equivalent of ``Comm._charge_collective``.

        Synchronises every group, advances it by the closed-form collective
        time for its own word count / rounds factor, and records one
        collective op per member PE.  The scalar cost formula is evaluated
        per group with the exact same code path as the reference engine.
        """
        self.synchronize()
        cost = self.machine.cost
        levels = self.levels()
        n = self.num_groups
        # The scalar cost formula is evaluated through the exact same code
        # path as the reference engine; groups of one level are mostly
        # identical (size, words, level, rounds), so evaluate once per
        # distinct signature.  Large batches (the per-row / per-column
        # collectives of the grid sample sort) deduplicate with one
        # vectorised row-unique instead of a Python loop per group.
        if n > 8:
            key = np.empty((n, 4), dtype=np.float64)
            key[:, 0] = self.sizes
            key[:, 1] = np.maximum(np.asarray(words, dtype=np.int64), 0)
            key[:, 2] = levels
            key[:, 3] = 1.0 if rounds_factors is None else \
                np.asarray(rounds_factors, dtype=np.float64)
            uniq, inverse = np.unique(key, axis=0, return_inverse=True)
            t_uniq = np.array([
                cost.collective_time(
                    int(u[0]), words=int(u[1]), level=int(u[2]),
                    rounds_factor=float(u[3]),
                )
                for u in uniq
            ], dtype=np.float64)
            times = t_uniq[inverse.reshape(-1)]
        else:
            cache: dict = {}
            times = []
            for g in range(n):
                sig = (
                    int(self.sizes[g]),
                    max(int(words[g]), 0),
                    int(levels[g]),
                    1.0 if rounds_factors is None else float(rounds_factors[g]),
                )
                t = cache.get(sig)
                if t is None:
                    t = cost.collective_time(
                        sig[0], words=sig[1], level=sig[2], rounds_factor=sig[3]
                    )
                    cache[sig] = t
                times.append(t)
        self.advance(times)
        self.machine.counters.record_collective(self.members)

    def charge_exchange(
        self,
        words_sent: np.ndarray,
        words_received: np.ndarray,
        messages_sent: np.ndarray,
        messages_received: np.ndarray,
        charge_copy: bool = True,
    ) -> np.ndarray:
        """Per-group equivalent of the exchange charge in ``execute_exchange``.

        The four count vectors are indexed like ``members`` (one entry per
        batch PE).  Synchronises every group, charges the per-PE exchange
        times (``alpha r + beta h`` with each group's own ``beta`` level),
        synchronises again and records one exchange op per member PE.
        Returns the charged per-PE times.
        """
        machine = self.machine
        self.synchronize()
        alpha = machine.spec.alpha
        beta = np.repeat(
            np.array(
                [machine.spec.beta_for_level(int(lv)) for lv in self.levels()],
                dtype=np.float64,
            ),
            self.sizes,
        )
        h_per_pe = np.maximum(words_sent, words_received)
        r_per_pe = np.maximum(messages_sent, messages_received)
        times = alpha * r_per_pe + beta * h_per_pe
        if charge_copy:
            times = times + machine.spec.move_ns * 1e-9 * (words_sent + words_received)
        # Drop/degrade draws keyed by the pre-record exchange counters —
        # identical to the execute_exchange hook, so a batched all-levels
        # exchange draws the same faults as its group-by-group reference.
        faults = machine.faults
        if faults is not None:
            times = times + faults.exchange_extra(
                self.members, machine.counters.exchange_ops[self.members],
                h_per_pe, r_per_pe, alpha, beta,
            )
        machine.advance_many(self.members, times)
        self.synchronize()
        machine.counters.record_exchange(self.members)
        return times
