"""Reference algorithms for collective operations.

:class:`repro.sim.comm.Comm` charges collectives with closed-form costs
(``alpha * log2 P + beta * l``).  This module contains explicit round-based
algorithms for the collectives that the paper relies on, primarily

* the **hypercube all-gather with merging** used by the fast work-inefficient
  sorting algorithm ("gossiping", Section 4.2): received sorted runs are not
  concatenated but merged, so every PE ends up with the globally sorted
  union,
* binomial-tree broadcast/reduction orders (used in tests to validate the
  ``ceil(log2 P)`` round counts charged by the cost model).

The round-based implementations move real data through explicit messages so
the traffic counters reflect a realistic execution, and they work on
communicators of arbitrary (non-power-of-two) size.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

import numpy as np


def hypercube_rounds(p: int) -> int:
    """Number of communication rounds of a hypercube gossip over ``p`` PEs."""
    if p <= 0:
        raise ValueError("p must be positive")
    return int(math.ceil(math.log2(p))) if p > 1 else 0


def hypercube_allgather_merge(comm, arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    """All-gather sorted runs along a (virtual) hypercube, merging as we go.

    Every member contributes a locally sorted array; after
    ``ceil(log2 P)`` pairwise exchange rounds every member holds the sorted
    union of all contributions.  For non-power-of-two sizes the missing
    partners simply contribute nothing in the affected rounds, which keeps
    the algorithm correct at the price of slight imbalance (the same
    remedy the paper suggests: a gather along a binomial tree followed by a
    broadcast).

    Returns the per-member result list (all entries are equal arrays).
    """
    p = comm.size
    if len(arrays) != p:
        raise ValueError("need one array per member PE")
    current: List[np.ndarray] = [np.sort(np.asarray(a), kind="stable") for a in arrays]
    if p == 1:
        return current

    rounds = hypercube_rounds(p)
    for k in range(rounds):
        bit = 1 << k
        outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
        for rank in range(p):
            partner = rank ^ bit
            if partner < p:
                outboxes[rank].append((partner, current[rank]))
        result = comm.exchange(outboxes, schedule="sparse", charge_copy=False)
        new_current: List[np.ndarray] = []
        merge_sizes = []
        for rank in range(p):
            received = result.received_arrays(rank)
            pieces = [current[rank]] + received
            merged = merge_sorted_arrays(pieces)
            new_current.append(merged)
            merge_sizes.append(merged.size)
        comm.charge_merge(merge_sizes, 2)
        current = new_current

    # Ranks whose partners were missing in some round may lack a few
    # contributions; a final all-gather round over the shortfall fixes this
    # without affecting power-of-two sizes.
    total = int(sum(np.asarray(a).size for a in arrays))
    if any(c.size != total for c in current):
        union = merge_sorted_arrays([np.asarray(a) for a in arrays])
        bcast = comm.bcast(union, root=0, words=union.size)
        current = [bcast.copy() for _ in range(p)]
    return current


def merge_sorted_arrays(pieces: Sequence[np.ndarray]) -> np.ndarray:
    """Merge already-sorted arrays into one sorted array (data helper)."""
    pieces = [np.asarray(piece) for piece in pieces if np.asarray(piece).size > 0]
    if not pieces:
        return np.empty(0, dtype=np.float64)
    if len(pieces) == 1:
        return pieces[0].copy()
    out = np.concatenate(pieces)
    out.sort(kind="stable")
    return out


def binomial_bcast_order(p: int, root: int = 0) -> List[Tuple[int, int, int]]:
    """Binomial-tree broadcast schedule.

    Returns a list of ``(round, source, destination)`` triples describing
    which PE informs which PE in which round; after ``ceil(log2 p)`` rounds
    every PE has received the broadcast value.  PE indices are relative to
    ``root`` (i.e. the schedule is for the rotated numbering
    ``(pe - root) mod p``), which is how MPI implementations realise
    broadcasts from arbitrary roots.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if not 0 <= root < p:
        raise IndexError("root out of range")
    sched: List[Tuple[int, int, int]] = []
    have = {0}
    rnd = 0
    while len(have) < p:
        new = set()
        for src in have:
            dst = src + (1 << rnd)
            if dst < p:
                new.add(dst)
                sched.append((rnd, (src + root) % p, (dst + root) % p))
        have |= new
        rnd += 1
    return sched


def binomial_rounds(p: int) -> int:
    """Number of rounds of a binomial broadcast/reduction over ``p`` PEs."""
    return hypercube_rounds(p)


def tree_reduce(comm, values: Sequence[np.ndarray], op: Callable = np.add) -> np.ndarray:
    """Round-based binomial-tree reduction of per-PE vectors to rank 0.

    Functionally equivalent to :meth:`Comm.reduce_vec` but moves real
    messages so that tests can compare the charged closed-form collective
    cost against an explicit execution.
    """
    p = comm.size
    if len(values) != p:
        raise ValueError("need one vector per member PE")
    partial = [np.asarray(v).copy() for v in values]
    alive = list(range(p))
    while len(alive) > 1:
        outboxes: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(p)]
        senders = alive[1::2]
        receivers = alive[0::2]
        for recv_rank, send_rank in zip(receivers, senders):
            outboxes[send_rank].append((recv_rank, partial[send_rank]))
        result = comm.exchange(outboxes, schedule="sparse", charge_copy=False)
        for recv_rank in receivers:
            for _, payload in result.inboxes[recv_rank]:
                partial[recv_rank] = op(partial[recv_rank], payload)
        alive = receivers
    return partial[0]


def vector_prefix_sum_reference(vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Sequential reference for the vector-valued exclusive prefix sum.

    Used by the test-suite to validate :meth:`Comm.exscan_vec`.
    """
    out: List[np.ndarray] = []
    acc = None
    for v in vectors:
        v = np.asarray(v, dtype=np.int64)
        if acc is None:
            acc = np.zeros_like(v)
        out.append(acc.copy())
        acc = acc + v
    return out
