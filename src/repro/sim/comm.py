"""MPI-communicator-like groups of simulated PEs with costed collectives."""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dist.array import DistArray
from repro.dist.flatops import map_by_unique, map_by_unique2
from repro.machine.counters import PhaseTimer
from repro.sim.exchange import (
    ExchangeResult,
    FlatExchangeResult,
    FlatMessages,
    Message,
    execute_exchange,
    execute_exchange_flat,
)


class Comm:
    """A communicator over a contiguous (or arbitrary) group of PEs.

    All collective operations follow the same convention: per-PE inputs are
    passed as sequences indexed by *local rank* (0 .. ``size - 1``) and the
    result is what every member PE would hold after the operation.  The
    communicator charges the modelled time of the operation to all member
    clocks and synchronises the group, because the algorithms in the paper
    are bulk synchronous.

    Parameters
    ----------
    machine:
        The owning :class:`repro.sim.machine.SimulatedMachine`.
    members:
        Global PE indices belonging to this communicator (ascending).
    """

    def __init__(self, machine, members: np.ndarray):
        members = np.asarray(members, dtype=np.int64)
        if members.size == 0:
            raise ValueError("a communicator needs at least one member")
        if np.any(members < 0) or np.any(members >= machine.p):
            raise ValueError("communicator member out of range")
        if np.any(np.diff(members) <= 0):
            raise ValueError("communicator members must be strictly increasing")
        self.machine = machine
        self.members = members
        self._level: Optional[int] = None

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of member PEs."""
        return int(self.members.size)

    @property
    def level(self) -> int:
        """Topology level spanned by this communicator (cached)."""
        if self._level is None:
            self._level = self.machine.topology.max_distance_level(self.members)
        return self._level

    def global_pe(self, local_rank: int) -> int:
        """Global PE index of ``local_rank``."""
        return int(self.members[local_rank])

    def local_rank_of(self, global_pe: int) -> int:
        """Local rank of a global PE index (must be a member)."""
        idx = np.searchsorted(self.members, global_pe)
        if idx >= self.size or self.members[idx] != global_pe:
            raise ValueError(f"PE {global_pe} is not a member of this communicator")
        return int(idx)

    def ranks(self) -> range:
        """Iterator over local ranks."""
        return range(self.size)

    @property
    def spec(self):
        """The machine's :class:`~repro.machine.spec.MachineSpec`."""
        return self.machine.spec

    @property
    def rng(self) -> np.random.Generator:
        """Replicated random generator (same stream on every member)."""
        return self.machine.rng

    def pe_rng(self, local_rank: int) -> np.random.Generator:
        """Per-PE random generator for PE-local random decisions."""
        return self.machine.pe_rng(self.global_pe(local_rank))

    def phase(self, name: str) -> PhaseTimer:
        """Attribute subsequent costs to phase ``name`` (context manager)."""
        return self.machine.phase(name)

    # ------------------------------------------------------------------
    # Clock charging helpers
    # ------------------------------------------------------------------
    def charge_local(self, local_rank: int, seconds: float) -> None:
        """Charge ``seconds`` of local work to one member PE."""
        self.machine.advance(self.global_pe(local_rank), seconds)

    def charge_local_many(self, seconds: Sequence[float]) -> None:
        """Charge per-PE local work (one entry per local rank)."""
        seconds = np.asarray(seconds, dtype=np.float64)
        if seconds.shape != (self.size,):
            raise ValueError("need one charge per member PE")
        self.machine.advance_many(self.members, seconds)

    def charge_sort(self, sizes: Sequence[int]) -> None:
        """Charge a local sort of ``sizes[i]`` elements on each member."""
        self.charge_local_many(
            map_by_unique(np.asarray(sizes), lambda m: self.spec.local_sort_time(int(m)))
        )

    def charge_merge(self, sizes: Sequence[int], ways: Sequence[int] | int) -> None:
        """Charge a local multiway merge on each member."""
        if np.isscalar(ways):
            ways = [int(ways)] * self.size
        self.charge_local_many(
            map_by_unique2(
                np.asarray(sizes), np.asarray(ways),
                lambda m, w: self.spec.local_merge_time(m, w),
            )
        )

    def charge_partition(self, sizes: Sequence[int], buckets: int) -> None:
        """Charge a local multi-splitter partition on each member."""
        self.charge_local_many(
            map_by_unique(
                np.asarray(sizes),
                lambda m: self.spec.local_partition_time(int(m), int(buckets)),
            )
        )

    def barrier(self) -> float:
        """Synchronise all member clocks; returns the synchronised time."""
        return self.machine.synchronize(self.members)

    # ------------------------------------------------------------------
    # Internal collective cost charging
    # ------------------------------------------------------------------
    def _charge_collective(self, words: int, rounds_factor: float = 1.0) -> None:
        # Fault semantics (see :mod:`repro.sim.faults`): collective and
        # local charges pick up straggler/hiccup scaling inside
        # ``advance_many``; only the irregular exchanges (``exchange`` /
        # ``exchange_flat``) additionally run the timeout + retransmit
        # retry protocol.  Barrier waits are never fault-scaled — idle
        # time is idle regardless of the PE's speed.
        self.machine.synchronize(self.members)
        t = self.machine.cost.collective_time(
            self.size, words=max(int(words), 0), level=self.level,
            rounds_factor=rounds_factor,
        )
        self.machine.advance_many(self.members, t)
        self.machine.counters.record_collective(self.members)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def bcast(self, value, root: int = 0, words: Optional[int] = None):
        """Broadcast ``value`` from ``root`` to all members; returns ``value``.

        ``words`` is the modelled message length; when omitted it is inferred
        for numpy arrays (``value.size``) and assumed to be 1 otherwise.
        """
        if not 0 <= root < self.size:
            raise IndexError("broadcast root out of range")
        if words is None:
            words = int(value.size) if isinstance(value, np.ndarray) else 1
        self._charge_collective(words)
        return value

    def gather(self, values: Sequence, root: int = 0, words_each: int = 1) -> Optional[list]:
        """Gather one value per member at ``root``.

        Returns the gathered list (what the root holds); non-root PEs would
        hold ``None`` in a real execution.
        """
        if len(values) != self.size:
            raise ValueError("need one value per member PE")
        if not 0 <= root < self.size:
            raise IndexError("gather root out of range")
        self._charge_collective(words_each, rounds_factor=self.size)
        return list(values)

    def allgather(self, values: Sequence, words_each: int = 1) -> list:
        """All-gather one value per member; every PE gets the full list."""
        if len(values) != self.size:
            raise ValueError("need one value per member PE")
        self._charge_collective(words_each, rounds_factor=self.size)
        return list(values)

    def allgather_arrays(
        self,
        arrays: Sequence[np.ndarray],
        merge_sorted: bool = False,
    ) -> np.ndarray:
        """All-gather variable-length arrays; every PE receives their union.

        With ``merge_sorted=True`` the received runs are merged (each input
        must already be sorted), which is the "gossiping with merging" step
        of the fast work-inefficient sorting algorithm (Section 4.2).
        """
        if len(arrays) != self.size:
            raise ValueError("need one array per member PE")
        arrays = [np.asarray(a) for a in arrays]
        total = int(sum(a.size for a in arrays))
        self.charge_allgather_arrays(total)
        if total == 0:
            dtype = arrays[0].dtype if arrays else np.float64
            return np.empty(0, dtype=dtype)
        result = np.concatenate([a for a in arrays if a.size > 0])
        if merge_sorted:
            # Merging cost: every PE merges the full gathered sequence.
            merge_t = self.spec.local_merge_time(total, max(2, self.size))
            self.machine.advance_many(self.members, merge_t)
            result = np.sort(result, kind="stable")
        return result

    def charge_allgather_arrays(self, total_words: int) -> None:
        """Charge the cost of :meth:`allgather_arrays` without moving data.

        Used by the flat engine, which computes the gathered data globally
        but must charge exactly what the per-PE path charges.
        """
        mean_words = total_words / max(self.size, 1)
        self._charge_collective(max(1, int(math.ceil(mean_words))), rounds_factor=self.size)

    def allreduce_scalar(self, values: Sequence[float], op: Callable = np.sum) -> float:
        """All-reduce one scalar per member with reduction ``op``."""
        if len(values) != self.size:
            raise ValueError("need one value per member PE")
        self._charge_collective(1)
        return float(op(np.asarray(values, dtype=np.float64)))

    def allreduce_int(self, values: Sequence[int], op: Callable = np.sum) -> int:
        """All-reduce one integer per member with reduction ``op``."""
        if len(values) != self.size:
            raise ValueError("need one value per member PE")
        self._charge_collective(1)
        return int(op(np.asarray(values, dtype=np.int64)))

    def allreduce_vec(self, arrays: Sequence[np.ndarray], op: Callable = np.add) -> np.ndarray:
        """Element-wise all-reduce of equal-length vectors (one per member)."""
        if len(arrays) != self.size:
            raise ValueError("need one vector per member PE")
        arrays = [np.asarray(a) for a in arrays]
        length = arrays[0].size
        for a in arrays:
            if a.size != length:
                raise ValueError("all vectors must have the same length")
        self._charge_collective(length)
        result = arrays[0].copy()
        for a in arrays[1:]:
            result = op(result, a)
        return result

    def allreduce_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Element-wise sum all-reduce over a ``(size, L)`` contribution matrix.

        Flat-engine equivalent of :meth:`allreduce_vec` with ``op=np.add``:
        row ``i`` is member ``i``'s vector, the result is the column sum.
        Integer matrices reduce exactly, so the result is identical to the
        sequential per-PE reduction of the reference path.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != self.size:
            raise ValueError("need one contribution row per member PE")
        self._charge_collective(int(matrix.shape[1]))
        return matrix.sum(axis=0)

    def charge_allreduce_vec(self, length: int) -> None:
        """Charge an all-reduce of ``length``-word vectors without moving data.

        Used by the flat engine when it computes the reduction globally
        (e.g. one ``bincount`` instead of per-PE count vectors); the charge
        is exactly that of :meth:`allreduce_vec` / :meth:`allreduce_rows`.
        """
        self._charge_collective(int(length))

    def exscan_rows(self, matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vector-valued exclusive prefix sum over a ``(size, L)`` matrix.

        Flat-engine equivalent of :meth:`exscan_vec`; returns the
        ``(size, L)`` prefix matrix (row ``i`` = sum of rows ``0 .. i-1``)
        and the total row.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[0] != self.size:
            raise ValueError("need one contribution row per member PE")
        self._charge_collective(int(matrix.shape[1]))
        csum = np.cumsum(matrix, axis=0)
        prefixes = np.zeros_like(matrix)
        prefixes[1:] = csum[:-1]
        return prefixes, csum[-1].copy()

    def exscan_vec(self, arrays: Sequence[np.ndarray]) -> Tuple[List[np.ndarray], np.ndarray]:
        """Vector-valued exclusive prefix sum over member ranks.

        ``exscan_vec([v_0, v_1, ..., v_{P-1}])`` returns ``(prefixes, total)``
        where ``prefixes[i] = v_0 + ... + v_{i-1}`` (zeros for rank 0) and
        ``total`` is the sum over all ranks.  This is the vector-valued
        prefix sum the data-delivery algorithms rely on (Section 4.3).
        """
        if len(arrays) != self.size:
            raise ValueError("need one vector per member PE")
        mats = np.asarray([np.asarray(a, dtype=np.int64) for a in arrays])
        if mats.ndim == 1:
            mats = mats[:, None]
        length = mats.shape[1]
        self._charge_collective(length)
        csum = np.cumsum(mats, axis=0)
        prefixes = [np.zeros(length, dtype=np.int64)]
        for i in range(1, self.size):
            prefixes.append(csum[i - 1].copy())
        total = csum[-1].copy()
        return prefixes, total

    def exscan_scalar(self, values: Sequence[int]) -> Tuple[List[int], int]:
        """Scalar exclusive prefix sum; returns (per-rank prefixes, total)."""
        prefixes, total = self.exscan_vec([np.asarray([v], dtype=np.int64) for v in values])
        return [int(p[0]) for p in prefixes], int(total[0])

    def reduce_vec(self, arrays: Sequence[np.ndarray], root: int = 0,
                   op: Callable = np.add) -> np.ndarray:
        """Vector reduction to ``root``; returns the reduced vector."""
        if not 0 <= root < self.size:
            raise IndexError("reduce root out of range")
        return self.allreduce_vec(arrays, op=op)

    # ------------------------------------------------------------------
    # Irregular exchange
    # ------------------------------------------------------------------
    def exchange(
        self,
        outboxes: Sequence[Sequence[Message]],
        schedule: str = "sparse",
        charge_copy: bool = True,
    ) -> ExchangeResult:
        """Perform an irregular personalised exchange (``Exch(P, h, r)``).

        See :func:`repro.sim.exchange.execute_exchange`.
        """
        return execute_exchange(self, outboxes, schedule=schedule, charge_copy=charge_copy)

    def exchange_flat(
        self,
        msgs: FlatMessages,
        schedule: str = "sparse",
        charge_copy: bool = True,
        build_inbox: bool = True,
    ) -> FlatExchangeResult:
        """Flat-engine irregular exchange (``Exch(P, h, r)`` over a message batch).

        See :func:`repro.sim.exchange.execute_exchange_flat`.  Charges and
        counter updates are identical to :meth:`exchange` on the equivalent
        per-PE outboxes.
        """
        return execute_exchange_flat(
            self, msgs, schedule=schedule, charge_copy=charge_copy,
            build_inbox=build_inbox,
        )

    def alltoallv_flat(
        self,
        send: DistArray,
        counts: np.ndarray,
        schedule: str = "sparse",
    ) -> Tuple[DistArray, FlatExchangeResult]:
        """All-to-allv over a :class:`DistArray` in destination-major layout.

        ``send.segment(i)`` holds rank ``i``'s outgoing data ordered by
        destination rank; ``counts[i, j]`` is how many of those elements go
        to rank ``j``.  Returns the received :class:`DistArray` (segment
        ``j`` = concatenation of the payloads from ranks ``0 .. size-1`` in
        source order) plus the exchange statistics.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if send.p != self.size or counts.shape != (self.size, self.size):
            raise ValueError("need one send segment and one count row per member PE")
        if np.any(counts.sum(axis=1) != send.sizes()):
            raise ValueError("per-destination counts must sum to the segment sizes")
        p = self.size
        src = np.repeat(np.arange(p, dtype=np.int64), p)
        dest = np.tile(np.arange(p, dtype=np.int64), p)
        length = counts.reshape(-1)
        start = np.cumsum(length) - length
        msgs = FlatMessages(src, dest, start, length, send.values)
        result = self.exchange_flat(msgs, schedule=schedule)
        recv = DistArray(result.recv_values, result.recv_offsets)
        return recv, result

    def alltoallv(self, send_lists: Sequence[Sequence[np.ndarray]],
                  schedule: str = "sparse") -> List[List[np.ndarray]]:
        """Dense-style all-to-allv: ``send_lists[i][j]`` goes from rank i to rank j.

        Returns ``recv[j][i]`` = payload received by rank ``j`` from rank ``i``.
        """
        if len(send_lists) != self.size:
            raise ValueError("need one send list per member PE")
        outboxes: List[List[Message]] = []
        for i, row in enumerate(send_lists):
            if len(row) != self.size:
                raise ValueError("each send list must have one entry per member PE")
            outboxes.append([(j, np.asarray(row[j])) for j in range(self.size)])
        result = self.exchange(outboxes, schedule=schedule)
        recv: List[List[np.ndarray]] = []
        for j in range(self.size):
            row: List[np.ndarray] = [np.empty(0) for _ in range(self.size)]
            for src, payload in result.inboxes[j]:
                row[src] = payload
            recv.append(row)
        return recv

    # ------------------------------------------------------------------
    # Splitting into groups
    # ------------------------------------------------------------------
    def split(self, num_groups: int) -> List["Comm"]:
        """Split into ``num_groups`` contiguous groups of near-equal size.

        The first ``size % num_groups`` groups get one extra PE.  Groups are
        contiguous in PE numbering so that they map onto natural units of the
        machine hierarchy (Section 5).
        """
        if not 1 <= num_groups <= self.size:
            raise ValueError(
                f"cannot split a communicator of size {self.size} into {num_groups} groups"
            )
        base = self.size // num_groups
        extra = self.size % num_groups
        groups: List[Comm] = []
        start = 0
        for g in range(num_groups):
            length = base + (1 if g < extra else 0)
            groups.append(Comm(self.machine, self.members[start:start + length]))
            start += length
        return groups

    def split_sizes(self, sizes: Sequence[int]) -> List["Comm"]:
        """Split into contiguous groups with explicitly given sizes."""
        sizes = [int(s) for s in sizes]
        if any(s <= 0 for s in sizes):
            raise ValueError("group sizes must be positive")
        if sum(sizes) != self.size:
            raise ValueError("group sizes must sum to the communicator size")
        groups: List[Comm] = []
        start = 0
        for s in sizes:
            groups.append(Comm(self.machine, self.members[start:start + s]))
            start += s
        return groups

    def group_of_rank(self, groups: Sequence["Comm"], local_rank: int) -> int:
        """Index of the group (from :meth:`split`) containing ``local_rank``."""
        pe = self.global_pe(local_rank)
        for gi, g in enumerate(groups):
            if g.members[0] <= pe <= g.members[-1]:
                return gi
        raise ValueError(f"rank {local_rank} not contained in any group")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        lo, hi = int(self.members[0]), int(self.members[-1])
        return f"Comm(size={self.size}, PEs {lo}..{hi})"
