"""Deterministic fault injection for the simulated machine.

Real massively-parallel sorters run on machines that are never perfectly
healthy: nodes differ in clock speed, some straggle transiently (OS jitter,
shared-network interference), and exchange rounds are occasionally degraded
or dropped and must be retransmitted after a timeout.  This module models all
of that as a *seeded, fully deterministic* overlay on the simulator's cost
model:

* **Heterogeneous speeds and stragglers** — every PE gets a static slowdown
  multiplier (a speed spread plus a straggler subset running at
  ``straggler_factor``); transient *straggler windows* periodically multiply
  a PE's charges by ``window_factor``.  Both scale every local-work,
  collective and exchange charge that flows through
  :meth:`~repro.sim.machine.SimulatedMachine.advance` /
  :meth:`~repro.sim.machine.SimulatedMachine.advance_many`.
* **Dropped and degraded exchange rounds** — each irregular exchange
  (``Exch(P, h, r)``) can fail per PE with probability ``drop_rate``.  Every
  failure costs a timeout (``timeout_rounds * alpha`` of idle wait) plus a
  retransmission charged through the same ``alpha * r + beta * h`` model
  scaled by ``resend_fraction``; the number of consecutive failures is a
  truncated geometric draw (at most ``max_retries``).  Independently, a
  round can be *degraded* with probability ``degrade_rate``: the volume term
  is charged at ``degrade_factor`` times the healthy bandwidth cost.
* **Hiccups** — short per-PE stalls (``hiccup_seconds``) occurring at an
  average rate of ``hiccup_rate`` events per modelled second, added to
  whatever charge the PE was executing when the hiccup fired.

Determinism is the load-bearing property:

* All draws come from a dedicated :class:`~repro.dist.ctr_rng.CounterRNG`
  whose seed is salted away from the machine seed and whose ``level`` slot
  carries a *fault-domain tag* — the sampling/pivot streams (and therefore
  ``RNG_VERSION`` and the sorted outputs) are untouched.
* Draws are keyed only by per-PE state that is byte-identical across the
  flat and reference engines: the PE index (static speeds, window phases),
  the PE clock at the start of a charge (windows, hiccups) and the per-PE
  exchange counter (drop/degrade draws).  Both engines therefore charge
  byte-identical faulted clocks.
* With no plan attached — or a plan whose every rate is zero — the machine
  is byte-identical to a fault-free one (the scaling hooks short-circuit).

Recovery costs are tallied per PE in
:class:`~repro.machine.counters.FaultCounters` and surface in
``SortResult.summary_dict()`` under the ``"faults"`` key (only when a plan
is active, keeping golden traces of fault-free runs byte-identical).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dist.ctr_rng import CounterRNG
from repro.machine.counters import FaultCounters


# Fault-domain tags, passed in the ``level`` slot of the CounterRNG key so
# every fault class consumes its own independent stream family.
FAULT_DOMAIN_SPEED = 1  #: per-PE static speed spread (one draw per PE)
FAULT_DOMAIN_STRAGGLER = 2  #: which PEs are persistent stragglers
FAULT_DOMAIN_WINDOW = 3  #: per-PE phase offset of the transient windows
FAULT_DOMAIN_DROP = 4  #: per (PE, exchange index) drop/retry draw
FAULT_DOMAIN_DEGRADE = 5  #: per (PE, exchange index) degraded-round draw
FAULT_DOMAIN_HICCUP = 6  #: per (PE, hiccup interval) trigger jitter

#: Salt mixed into the plan seed so a FaultPlan sharing the machine seed
#: still draws from streams uncorrelated with the sampling paths.
_FAULT_SEED_SALT = 0x5FA17_1A9E5


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject (all off by default).

    Attach to a machine with ``SimulatedMachine(..., faults=FaultPlan(...))``
    or as a spec string (see :func:`parse_fault_spec`).  A default-constructed
    plan injects nothing; the machine then behaves byte-identically to one
    with no plan at all.

    Attributes
    ----------
    seed:
        Seed of the fault streams (independent of the machine seed).
    straggler_fraction:
        Expected fraction of PEs that are persistent stragglers.
    straggler_factor:
        Slowdown multiplier of straggler PEs (``>= 1``).
    speed_spread:
        Heterogeneity: every PE's charges are scaled by a static factor
        drawn uniformly from ``[1, 1 + speed_spread]``.
    window_fraction:
        Fraction of every ``window_period_s`` during which a PE is inside a
        transient straggler window (per-PE random phase).
    window_period_s:
        Period of the transient windows in modelled seconds.
    window_factor:
        Slowdown multiplier while inside a window (``>= 1``); applied to
        charges *starting* inside the window.
    drop_rate:
        Per-PE, per-exchange probability that a round is dropped and must be
        retransmitted (must be ``< 1``).
    degrade_rate:
        Per-PE, per-exchange probability of a degraded (slow-link) round.
    degrade_factor:
        Bandwidth-cost multiplier of a degraded round (``>= 1``).
    max_retries:
        Cap on consecutive retransmissions per exchange per PE.
    timeout_rounds:
        Idle wait before a dropped round is detected, in units of ``alpha``
        (message startup latency).
    resend_fraction:
        Fraction of the exchange volume/startups retransmitted per retry
        (1.0 = full retransmit).
    hiccup_rate:
        Average per-PE hiccup events per modelled second.
    hiccup_seconds:
        Stall added to the interrupted charge per hiccup event.
    """

    seed: int = 0
    straggler_fraction: float = 0.0
    straggler_factor: float = 2.0
    speed_spread: float = 0.0
    window_fraction: float = 0.0
    window_period_s: float = 1e-3
    window_factor: float = 4.0
    drop_rate: float = 0.0
    degrade_rate: float = 0.0
    degrade_factor: float = 4.0
    max_retries: int = 3
    timeout_rounds: float = 4.0
    resend_fraction: float = 1.0
    hiccup_rate: float = 0.0
    hiccup_seconds: float = 1e-4

    def __post_init__(self) -> None:
        for name in ("straggler_fraction", "window_fraction", "resend_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("drop_rate", "degrade_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        for name in ("straggler_factor", "window_factor", "degrade_factor"):
            value = getattr(self, name)
            if value < 1.0:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.window_period_s <= 0:
            raise ValueError("window_period_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout_rounds < 0:
            raise ValueError("timeout_rounds must be non-negative")
        if self.hiccup_rate < 0:
            raise ValueError("hiccup_rate must be non-negative")
        if self.hiccup_seconds < 0:
            raise ValueError("hiccup_seconds must be non-negative")
        if self.speed_spread < 0:
            raise ValueError("speed_spread must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether this plan injects anything at all.

        A disabled plan is dropped at machine construction, so attaching it
        is *exactly* a no-op (byte-identity, not epsilon-identity).
        """
        return bool(
            (self.straggler_fraction > 0 and self.straggler_factor > 1)
            or self.speed_spread > 0
            or (self.window_fraction > 0 and self.window_factor > 1)
            or self.drop_rate > 0
            or self.degrade_rate > 0
            or (self.hiccup_rate > 0 and self.hiccup_seconds > 0)
        )

    def spec(self) -> str:
        """Canonical spec string (non-default fields only, fixed order)."""
        parts = []
        for key, (field_name, _) in _SPEC_KEYS.items():
            value = getattr(self, field_name)
            if value == _FIELD_DEFAULTS[field_name]:
                continue
            if key == "hiccup_ms":
                parts.append(f"{key}:{value * 1e3:g}")
            elif field_name in ("seed", "max_retries"):
                parts.append(f"{key}:{int(value)}")
            else:
                parts.append(f"{key}:{value:g}")
        return ",".join(parts)


_FIELD_DEFAULTS: Dict[str, object] = {
    f.name: f.default for f in dataclasses.fields(FaultPlan)
}

#: Spec-string grammar: ``key:value`` pairs joined by commas, e.g.
#: ``"stragglers:0.1,droprate:0.01"``.  Keys map onto FaultPlan fields; the
#: dict order is the canonical order :meth:`FaultPlan.spec` emits.
_SPEC_KEYS: Dict[str, Tuple[str, type]] = {
    "seed": ("seed", int),
    "stragglers": ("straggler_fraction", float),
    "slow": ("straggler_factor", float),
    "spread": ("speed_spread", float),
    "windows": ("window_fraction", float),
    "winperiod": ("window_period_s", float),
    "winslow": ("window_factor", float),
    "droprate": ("drop_rate", float),
    "degrade": ("degrade_rate", float),
    "degfactor": ("degrade_factor", float),
    "retries": ("max_retries", int),
    "timeout": ("timeout_rounds", float),
    "resend": ("resend_fraction", float),
    "hiccups": ("hiccup_rate", float),
    "hiccup_ms": ("hiccup_seconds", float),
}


def parse_fault_spec(spec: "str | FaultPlan | None") -> Optional[FaultPlan]:
    """Parse a fault spec string like ``"stragglers:0.1,droprate:0.01"``.

    Returns ``None`` for ``None`` / empty / whitespace-only specs, passes an
    existing :class:`FaultPlan` through, and raises :class:`ValueError` on
    unknown keys or malformed values.  See :data:`_SPEC_KEYS` for the
    grammar; ``hiccup_ms`` is given in milliseconds.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    spec = spec.strip()
    if not spec:
        return None
    fields: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition(":")
        key = key.strip().lower()
        if not sep or key not in _SPEC_KEYS:
            known = ", ".join(_SPEC_KEYS)
            raise ValueError(
                f"bad fault spec entry {part!r}; expected 'key:value' with "
                f"key one of: {known}"
            )
        field_name, conv = _SPEC_KEYS[key]
        try:
            value = conv(raw.strip())
        except ValueError:
            raise ValueError(
                f"bad fault spec value {raw!r} for key {key!r} "
                f"(expected {conv.__name__})"
            ) from None
        if key == "hiccup_ms":
            value = float(value) * 1e-3
            # 'hiccups:<rate>' alone should inject; keep the default stall.
        fields[field_name] = value
    return FaultPlan(**fields)  # __post_init__ validates ranges


class FaultState:
    """Per-machine runtime state of an active :class:`FaultPlan`.

    Holds the salted fault RNG, the precomputed per-PE static slowdown and
    window phases, and the :class:`FaultCounters` tallies.  All methods are
    pure functions of ``(plan, machine state at the call)`` — no mutable
    draw cursors — which is what makes fault injection independent of how
    the engines batch their charges.
    """

    def __init__(self, plan: FaultPlan, p: int):
        if not plan.enabled:
            raise ValueError("FaultState requires an enabled FaultPlan")
        self.plan = plan
        self.p = int(p)
        self.rng = CounterRNG(int(plan.seed) ^ _FAULT_SEED_SALT)
        self.counters = FaultCounters(self.p)
        pes = np.arange(self.p, dtype=np.int64)
        slowdown = np.ones(self.p, dtype=np.float64)
        if plan.speed_spread > 0:
            slowdown = slowdown + plan.speed_spread * self.rng.uniforms(
                FAULT_DOMAIN_SPEED, pes, 0
            )
        self.straggler_pes = np.zeros(self.p, dtype=bool)
        if plan.straggler_fraction > 0 and plan.straggler_factor > 1:
            self.straggler_pes = (
                self.rng.uniforms(FAULT_DOMAIN_STRAGGLER, pes, 0)
                < plan.straggler_fraction
            )
            slowdown = np.where(
                self.straggler_pes, slowdown * plan.straggler_factor, slowdown
            )
        self.slowdown = slowdown
        self._windows = plan.window_fraction > 0 and plan.window_factor > 1
        self.window_phase = (
            self.rng.uniforms(FAULT_DOMAIN_WINDOW, pes, 0)
            if self._windows
            else None
        )
        self._hiccups = plan.hiccup_rate > 0 and plan.hiccup_seconds > 0
        self._scaling = bool(
            (self.slowdown != 1.0).any() or self._windows or self._hiccups
        )

    def reset(self) -> None:
        """Zero the tallies (the draws are stateless and unaffected)."""
        self.counters.reset()

    # ------------------------------------------------------------------
    # Charge scaling (advance / advance_many hook)
    # ------------------------------------------------------------------
    def _hiccup_count(self, idx: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Number of hiccups of PEs ``idx`` triggered in ``[0, t]``.

        Interval ``j`` of PE ``i`` fires at ``(j + u_ij) / rate`` with
        ``u_ij`` a stateless per-(PE, interval) uniform, so the count is an
        exact, monotone function of ``t`` — no draw cursors, identical for
        any charge batching.
        """
        pos = t * self.plan.hiccup_rate
        j = np.floor(pos)
        u = self.rng.uniforms(FAULT_DOMAIN_HICCUP, idx, j.astype(np.uint64))
        return j.astype(np.int64) + (u <= pos - j)

    def scale(self, idx: np.ndarray, t0: np.ndarray, dts: np.ndarray) -> np.ndarray:
        """Faulted charge durations for charges ``dts`` starting at ``t0``.

        Applies the static per-PE slowdown, the transient-window factor (a
        charge is slowed iff it *starts* inside a window) and any hiccup
        stalls falling inside the slowed charge.  Hiccup pauses do not
        recursively trigger further hiccups.  The extra time is tallied in
        ``counters.straggle_s`` / ``counters.hiccup_events``.
        """
        if not self._scaling:
            return dts
        plan = self.plan
        out = dts * self.slowdown[idx]
        if self._windows:
            pos = t0 / plan.window_period_s + self.window_phase[idx]
            in_window = (pos - np.floor(pos)) < plan.window_fraction
            out = np.where(in_window, out * plan.window_factor, out)
        if self._hiccups:
            k = self._hiccup_count(idx, t0 + out) - self._hiccup_count(idx, t0)
            out = out + k * plan.hiccup_seconds
            np.add.at(self.counters.hiccup_events, idx, k)
        np.add.at(self.counters.straggle_s, idx, out - dts)
        return out

    def scale_scalar(self, pe: int, t0: float, dt: float) -> float:
        """Scalar wrapper over :meth:`scale` (the ``advance`` hook).

        Routes through the same vectorised code on one-element arrays so the
        per-PE reference charges are bit-identical to the flat engine's
        batched lanes.
        """
        if not self._scaling:
            return dt
        out = self.scale(
            np.array([pe], dtype=np.int64),
            np.array([t0], dtype=np.float64),
            np.array([dt], dtype=np.float64),
        )
        return float(out[0])

    # ------------------------------------------------------------------
    # Exchange faults (execute_exchange / charge_exchange hook)
    # ------------------------------------------------------------------
    def exchange_extra(
        self,
        members: np.ndarray,
        op_index: np.ndarray,
        h_per_pe: np.ndarray,
        r_per_pe: np.ndarray,
        alpha: float,
        beta: "float | np.ndarray",
    ) -> np.ndarray:
        """Extra per-PE time of dropped/degraded rounds for one exchange.

        ``op_index`` is each member's ``exchange_ops`` counter *before* the
        exchange is recorded — the per-PE draw key, identical across engines
        because both issue the same per-PE exchange sequence.  Failures per
        PE are a truncated geometric draw (``floor(ln u / ln drop_rate)``
        capped at ``max_retries``): for a fixed uniform ``u`` the count is
        monotone non-decreasing in ``drop_rate``, so recovery cost is
        *exactly* monotone in the drop rate for a fixed seed.  Each failure
        costs ``timeout_rounds * alpha`` of idle wait plus a resend charged
        through the same ``alpha * r + beta * h`` exchange model; degraded
        rounds add ``(degrade_factor - 1) * beta * h``.  PEs with nothing to
        send or receive are unaffected.
        """
        plan = self.plan
        counters = self.counters
        extra = np.zeros(h_per_pe.shape, dtype=np.float64)
        active = (h_per_pe > 0) | (r_per_pe > 0)
        if plan.drop_rate > 0:
            u = self.rng.uniforms(FAULT_DOMAIN_DROP, members, op_index)
            with np.errstate(divide="ignore"):
                failures = np.floor(np.log(u) / math.log(plan.drop_rate))
            failures = np.minimum(failures, plan.max_retries)
            failures = np.where(active, failures, 0.0).astype(np.int64)
            resend_h = np.ceil(plan.resend_fraction * h_per_pe)
            resend_r = np.ceil(plan.resend_fraction * r_per_pe)
            timeout = plan.timeout_rounds * alpha
            per_retry = timeout + alpha * resend_r + beta * resend_h
            retry_cost = failures * per_retry
            extra = extra + retry_cost
            np.add.at(counters.dropped_rounds, members, failures)
            np.add.at(
                counters.resent_words, members,
                (failures * resend_h).astype(np.int64),
            )
            np.add.at(counters.timeout_wait_s, members, failures * timeout)
            np.add.at(counters.recovery_s, members, retry_cost)
        if plan.degrade_rate > 0:
            u = self.rng.uniforms(FAULT_DOMAIN_DEGRADE, members, op_index)
            degraded = (u < plan.degrade_rate) & active
            deg_cost = np.where(
                degraded, (plan.degrade_factor - 1.0) * beta * h_per_pe, 0.0
            )
            extra = extra + deg_cost
            np.add.at(counters.degraded_rounds, members, degraded.astype(np.int64))
            np.add.at(counters.degraded_s, members, deg_cost)
        return extra

    def summary(self) -> Dict[str, object]:
        """JSON-safe fault summary: the plan spec plus the counter tallies."""
        out: Dict[str, object] = {"spec": self.plan.spec()}
        out.update(self.counters.summary())
        return out
