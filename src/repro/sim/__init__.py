"""Bulk-synchronous simulator of a distributed-memory message-passing machine.

The paper's algorithms are bulk synchronous (Section 2.1): every step is
either local work or a collective / irregular data exchange over a group of
PEs.  This package provides a deterministic simulator for such programs:

* :class:`~repro.sim.machine.SimulatedMachine` — owns the per-PE clocks,
  traffic counters and phase breakdown,
* :class:`~repro.sim.comm.Comm` — an MPI-communicator-like handle on a
  contiguous group of PEs offering collectives (broadcast, reduce,
  all-reduce, prefix sums, gather, all-gather) and the irregular
  ``Exch(P, h, r)`` exchange used by the sorting algorithms,
* :mod:`~repro.sim.exchange` — message-exchange schedules (direct sparse
  delivery and dense all-to-allv) with startup/volume accounting,
* :mod:`~repro.sim.collectives` — reference algorithms for the collectives
  (hypercube all-gather with merging, binomial trees) used for cost
  derivations and tests.

Algorithms written against :class:`Comm` look like per-step SPMD programs:
every collective takes a list with one entry per member PE and returns the
per-PE results, while the machine advances the simulated clocks by the
modelled communication cost.
"""

from repro.sim.machine import SimulatedMachine
from repro.sim.comm import Comm
from repro.sim.exchange import (
    ExchangeResult,
    FlatExchangeResult,
    FlatMessages,
    execute_exchange_flat,
    one_factor_schedule,
    direct_schedule,
)
from repro.sim.groups import GroupBatch

__all__ = [
    "SimulatedMachine",
    "Comm",
    "ExchangeResult",
    "FlatExchangeResult",
    "FlatMessages",
    "execute_exchange_flat",
    "GroupBatch",
    "one_factor_schedule",
    "direct_schedule",
]
