"""The simulated machine: clocks, counters, phases and the world communicator."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.machine.cost import CostModel
from repro.machine.counters import (
    PHASE_OTHER,
    PhaseBreakdown,
    PhaseTimer,
    TrafficCounters,
)
from repro.dist.ctr_rng import CounterRNG
from repro.dist.flatops import enable_malloc_reuse
from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology, topology_for


class SimulatedMachine:
    """A distributed-memory machine of ``p`` PEs with modelled time.

    The machine does not execute PEs concurrently.  Instead, algorithms are
    written in a *whole-machine* (lockstep SPMD) style: every step is either
    local work (charged to each PE's clock with the modelled time of that
    work) or a communication step that advances the participating clocks by
    the modelled communication cost.  Because the algorithms in the paper
    are bulk synchronous this reproduces the same critical path a real
    message-passing execution would have, while remaining fully
    deterministic and runnable on a laptop.

    **Lockstep SPMD over flat arrays.**  Two execution engines drive this
    machine.  The *reference* engine materialises the distributed array as
    one numpy array per PE and loops ``for i in range(p)`` over local steps.
    The *flat* engine (:mod:`repro.dist`) stores the whole machine's data in
    a single :class:`~repro.dist.array.DistArray` (one contiguous ``values``
    buffer plus a CSR ``offsets`` vector, one segment per PE) and replaces
    the per-PE loops with whole-machine vectorised kernels: segmented sorts,
    ``bincount`` over combined ``(PE, bucket)`` keys, stable reorders by
    ``(PE, group)`` keys, and message batches assembled by offset
    arithmetic.  Both engines issue the same per-PE charge sequence, so
    clocks, phase breakdowns and traffic counters are byte-identical; only
    the wall-clock time of running the *simulation* differs (the flat
    engine scales to thousands of simulated PEs).

    **What is and is not charged.**  The cost model charges (a) local work
    through the calibrated per-element constants of
    :class:`~repro.machine.spec.MachineSpec` (sorting, merging,
    partitioning, copying, binary searches), (b) collectives through the
    closed-form ``alpha * ceil(log2 P) + beta * l`` bound, and (c) irregular
    exchanges through the ``Exch(P, h, r)`` bottleneck bound
    ``alpha * r + beta * h`` (plus packing when requested).  Bookkeeping
    that a real implementation keeps in registers or recomputes locally —
    piece-size arithmetic, enumeration order, replicated RNG draws, the
    simulator's own data movement — is *not* charged.  Synchronisation
    (waiting) time is attributed to the phase that caused it, matching the
    paper's per-phase barriers (Section 7.1).

    Parameters
    ----------
    p:
        Number of processing elements.
    spec:
        Hardware parameters; defaults to :func:`repro.machine.spec.supermuc_like`.
    topology:
        Network topology; defaults to a hierarchical topology matching ``spec``.
    seed:
        Seed for the machine's replicated random generator (used for
        decisions that the paper makes identically on all PEs, e.g. the
        shared random pivot in multisequence selection).
    backend:
        Default kernel backend for runs on this machine — a
        :class:`~repro.dist.backend.base.KernelBackend` instance or spec
        string (``'numpy'``, ``'sharedmem'``, ``'sharedmem:4'``).  ``None``
        defers to the process default (``REPRO_BACKEND`` env var, else
        numpy).  Backends only change the host wall-clock of the
        *simulation*; modelled clocks, counters and outputs are
        byte-identical across all of them.
    faults:
        Optional :class:`~repro.sim.faults.FaultPlan` (or spec string like
        ``"stragglers:0.1,droprate:0.01"``) injecting deterministic
        stragglers, degraded/dropped exchange rounds and hiccups into the
        modelled clocks.  ``None`` — or a plan that injects nothing — leaves
        the machine byte-identical to today's fault-free behaviour.  Fault
        draws use their own salted counter streams, so sorted outputs and
        the sampling paths are unaffected.
    """

    def __init__(
        self,
        p: int,
        spec: Optional[MachineSpec] = None,
        topology: Optional[Topology] = None,
        seed: int = 0,
        backend: "object | str | None" = None,
        faults: "object | str | None" = None,
    ):
        if p <= 0:
            raise ValueError(f"need at least one PE, got p={p}")
        # The flat engine's whole-machine temporaries dominate the wall
        # profile at large p unless freed blocks are recycled with their
        # pages still mapped; see :func:`repro.dist.flatops.enable_malloc_reuse`.
        enable_malloc_reuse()
        if spec is None:
            from repro.machine.spec import supermuc_like

            spec = supermuc_like()
        if topology is None:
            topology = topology_for(p, spec=spec, kind="hierarchical")
        if topology.p < p:
            raise ValueError(
                f"topology holds only {topology.p} PEs but machine needs {p}"
            )
        self.p = int(p)
        self.spec = spec
        self.topology = topology
        self.cost = CostModel(spec, topology)
        self.clock = np.zeros(self.p, dtype=np.float64)
        self.counters = TrafficCounters(self.p)
        self.breakdown = PhaseBreakdown(self.p)
        self.current_phase: str = PHASE_OTHER
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._pe_rngs: dict[int, np.random.Generator] = {}
        self._sample_rng = CounterRNG(self.seed)
        self.wall_profile: Optional[dict] = None
        self._wall_mark: Optional[float] = None
        #: Default kernel backend (spec or instance) for runs on this machine.
        if isinstance(backend, str):
            from repro.dist.backend import validate_backend_spec

            validate_backend_spec(backend, source="backend spec")
        self.backend = backend
        #: Name of the backend the most recent ``run_on_machine`` executed
        #: with — what the wall-profile attribution tooling reports.
        self.backend_used: Optional[str] = None
        from repro.sim.faults import FaultState, parse_fault_spec

        #: The attached :class:`~repro.sim.faults.FaultPlan` (or ``None``).
        self.fault_plan = parse_fault_spec(faults)
        #: Runtime fault state; ``None`` unless the plan injects something,
        #: so the fault-free hot paths stay a single attribute check.
        self.faults = (
            FaultState(self.fault_plan, self.p)
            if self.fault_plan is not None and self.fault_plan.enabled
            else None
        )
        from repro.dist.workspace import get_arena

        #: The process workspace arena level execution draws scratch from.
        #: Owned in the sense of lifecycle: :meth:`release_workspace` is the
        #: public hook to shed the pooled high-water buffers between runs.
        self.arena = get_arena()

    def release_workspace(self) -> None:
        """Drop the pooled workspace buffers (arena + backend workers).

        Long campaigns call this between cells so the high-water scratch of
        a big machine does not stay resident while smaller cells run.  The
        next run simply faults its buffers back in; outputs and modelled
        clocks are unaffected.
        """
        self.arena.release()
        backend = self.backend
        if backend is not None and hasattr(backend, "release_workspace"):
            backend.release_workspace()

    # ------------------------------------------------------------------
    # Random number generation
    # ------------------------------------------------------------------
    @property
    def sample_rng(self) -> CounterRNG:
        """Counter-based random streams for the sampled algorithm paths.

        A :class:`~repro.dist.ctr_rng.CounterRNG` keyed by the machine seed:
        every draw is a pure function of ``(seed, level, pe, index)``, so one
        vectorised call produces the whole machine's sample positions for a
        recursion level while the per-PE reference path obtains *identical*
        values from the same helper.  This supersedes :meth:`pe_rng` on the
        sampled paths (AMS splitter sampling and the sampling baselines);
        ``pe_rng`` remains for PE-local decisions that have no whole-machine
        batch formulation.  Being stateless, the streams are unaffected by
        :meth:`reset` — same seed, same draws, in any batching.
        """
        return self._sample_rng

    def pe_rng(self, pe: int) -> np.random.Generator:
        """Deterministic per-PE random generator (for PE-local decisions)."""
        if not 0 <= pe < self.p:
            raise IndexError(f"PE index {pe} out of range")
        gen = self._pe_rngs.get(pe)
        if gen is None:
            gen = np.random.default_rng((self.seed + 1) * 1_000_003 + pe)
            self._pe_rngs[pe] = gen
        return gen

    def group_rng(self, level: int, root_pe: int) -> np.random.Generator:
        """Deterministic random stream replicated within one PE group.

        Used for decisions a *sub-group* of the machine makes identically on
        all of its members (e.g. the shared random pivots of a multisequence
        selection at recursion level ``level`` in the group whose first PE is
        ``root_pe``).  Unlike :attr:`rng` the stream depends only on
        ``(machine seed, level, root_pe)``, never on what other groups have
        drawn before — which is what lets the lockstep engine run all
        sibling groups of a recursion level as one batch while remaining
        byte-identical to the group-by-group reference execution.  A fresh
        generator is returned on every call.
        """
        if not 0 <= root_pe < self.p:
            raise IndexError(f"PE index {root_pe} out of range")
        if level < 0:
            raise ValueError("level must be non-negative")
        return np.random.default_rng(
            (self.seed + 1) * 2_147_483_629
            + (level + 1) * 15_485_863
            + root_pe
        )

    # ------------------------------------------------------------------
    # Clock management
    # ------------------------------------------------------------------
    def advance(self, pe: int, seconds: float) -> None:
        """Advance PE ``pe``'s clock by ``seconds`` attributing it to the current phase.

        With an active fault plan the charge is scaled by the PE's slowdown,
        straggler windows and hiccups first (see :mod:`repro.sim.faults`).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        if seconds == 0.0:
            return
        if self.faults is not None:
            seconds = self.faults.scale_scalar(pe, float(self.clock[pe]), seconds)
        self.clock[pe] += seconds
        self.breakdown.add(self.current_phase, pe, seconds)

    def advance_many(self, pes: Sequence[int], seconds: Sequence[float] | float) -> None:
        """Advance several PE clocks at once (fault-scaled like :meth:`advance`)."""
        idx = np.asarray(list(pes), dtype=np.int64)
        if np.isscalar(seconds):
            dts = np.full(idx.shape, float(seconds))
        else:
            dts = np.asarray(seconds, dtype=np.float64)
            if dts.shape != idx.shape:
                raise ValueError("pes and seconds must have the same length")
        if (dts < 0).any():
            raise ValueError("cannot advance clock by negative time")
        if self.faults is not None:
            dts = self.faults.scale(idx, self.clock[idx], dts)
        self.clock[idx] += dts
        vec = np.zeros(self.p, dtype=np.float64)
        np.add.at(vec, idx, dts)
        self.breakdown.add_many(self.current_phase, vec)

    def synchronize(self, pes: Sequence[int]) -> float:
        """Barrier over ``pes``: all clocks jump to the maximum clock among them.

        The idle (waiting) time is attributed to the current phase, matching
        the paper's instrumentation which places an MPI barrier before every
        phase so that imbalance shows up in the phase that caused it.

        Returns the synchronized time.
        """
        idx = np.asarray(list(pes), dtype=np.int64)
        if idx.size == 0:
            return 0.0
        t = float(self.clock[idx].max())
        waits = t - self.clock[idx]
        self.clock[idx] = t
        vec = np.zeros(self.p, dtype=np.float64)
        np.add.at(vec, idx, waits)
        self.breakdown.add_many(self.current_phase, vec)
        return t

    def elapsed(self, pes: Optional[Sequence[int]] = None) -> float:
        """Maximum clock value (over ``pes`` or over all PEs)."""
        if pes is None:
            return float(self.clock.max())
        idx = np.asarray(list(pes), dtype=np.int64)
        if idx.size == 0:
            return 0.0
        return float(self.clock[idx].max())

    def reset(self) -> None:
        """Reset clocks, counters, phase breakdown and random generators.

        The counter-based sampling streams (:attr:`sample_rng`) carry no
        state and are therefore unaffected: the same seed draws the same
        samples before and after a reset.  An enabled wall-clock profile is
        cleared but stays enabled.
        """
        self.clock.fill(0.0)
        self.counters.reset()
        self.breakdown.reset()
        self.current_phase = PHASE_OTHER
        self.rng = np.random.default_rng(self.seed)
        self._pe_rngs.clear()
        if self.faults is not None:
            self.faults.reset()
        if self.wall_profile is not None:
            self.wall_profile.clear()  # in place: callers hold the reference
            self._wall_mark = None

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def phase(self, name: str) -> PhaseTimer:
        """Context manager attributing subsequent clock advances to ``name``."""
        return PhaseTimer(self, name)

    def enable_wall_profile(self) -> dict:
        """Attribute host wall-clock time to algorithm phases.

        Returns the live profile dictionary (phase name → seconds of
        *simulator execution* time spent while that phase was the innermost
        open phase).  Unlike :attr:`breakdown`, which accumulates modelled
        PE time, this measures where the engine itself spends wall time —
        the sampling / sorting / routing / delivery attribution the perf
        tooling regresses against.  Profiling costs two ``perf_counter``
        calls per phase transition (phases are coarse, so the overhead is
        noise).
        """
        if self.wall_profile is None:
            self.wall_profile = {}
        return self.wall_profile

    # ------------------------------------------------------------------
    # Communicators
    # ------------------------------------------------------------------
    def world(self) -> "Comm":
        """Communicator spanning all PEs of the machine."""
        from repro.sim.comm import Comm

        return Comm(self, np.arange(self.p, dtype=np.int64))

    def comm(self, pes: Iterable[int]) -> "Comm":
        """Communicator over an explicit set of PEs."""
        from repro.sim.comm import Comm

        members = np.asarray(sorted(set(int(x) for x in pes)), dtype=np.int64)
        return Comm(self, members)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SimulatedMachine(p={self.p}, spec={self.spec.name!r}, "
            f"topology={self.topology.describe()})"
        )
