"""Irregular data exchange (``Exch(P, h, r)``) with startup/volume accounting.

The sorting algorithms move the bulk of their data with an irregular,
personalised exchange: every PE has prepared a number of *pieces*, each
destined for one particular PE of its group.  The paper models this step with
the black-box primitive ``Exch(P, h, r)`` (Section 2.1) where

* ``P``  — number of PEs in the (sub-)network performing the exchange,
* ``h``  — bottleneck communication volume: no PE sends or receives more
  than ``h`` machine words,
* ``r``  — bottleneck startup count: no PE sends or receives more than ``r``
  messages.

This module implements the exchange on the simulator and exposes the two
schedules discussed in Section 7.1:

* **sparse / 1-factor** delivery — only non-empty messages are transmitted
  (this is the behaviour of the authors' 1-factor implementation [31]),
* **dense all-to-allv** — every pair of PEs exchanges a (possibly empty)
  message, as a plain ``MPI_Alltoallv`` would (``P - 1`` startups per PE).

The :func:`one_factor_schedule` function is a faithful stand-alone
implementation of the 1-factorisation of the complete graph used to order
the point-to-point transfers; it is exercised by the test-suite and used to
estimate the number of communication rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dist.flatops import concat_ranges, stable_two_key_argsort, take_ranges


Message = Tuple[int, np.ndarray]
"""A message is a pair ``(destination local rank, payload array)``."""


@dataclass
class ExchangeResult:
    """Outcome of one irregular exchange over a communicator of size ``P``.

    Attributes
    ----------
    inboxes:
        ``inboxes[j]`` is the list of ``(source local rank, payload)`` pairs
        received by local rank ``j``, ordered by source rank and, for equal
        sources, by send order.
    words_sent / words_received:
        Per-PE word counts.
    messages_sent / messages_received:
        Per-PE message counts (empty messages excluded unless the dense
        schedule was requested).
    h_words:
        Bottleneck volume ``h`` = max over PEs of max(sent, received) words.
    r_messages:
        Bottleneck startups ``r`` = max over PEs of max(sent, received)
        messages.
    time:
        Modelled time charged for the exchange (bottleneck PE).
    rounds:
        Number of communication rounds of the schedule (1-factor: ``P`` or
        ``P - 1``; direct: 1).
    """

    inboxes: List[List[Message]]
    words_sent: np.ndarray
    words_received: np.ndarray
    messages_sent: np.ndarray
    messages_received: np.ndarray
    h_words: int
    r_messages: int
    time: float
    rounds: int

    def received_arrays(self, local_rank: int) -> List[np.ndarray]:
        """Payload arrays received by ``local_rank`` (sources stripped)."""
        return [payload for _, payload in self.inboxes[local_rank]]

    def max_messages(self) -> int:
        """Maximum number of messages any PE sent or received."""
        return int(
            max(
                self.messages_sent.max(initial=0),
                self.messages_received.max(initial=0),
            )
        )


def one_factor_schedule(p: int) -> List[List[Tuple[int, int]]]:
    """Return the rounds of the 1-factor algorithm for ``p`` PEs.

    Every round is a list of disjoint pairs ``(i, j)`` with ``i < j``; over
    all rounds every unordered pair of distinct PEs appears exactly once.
    For even ``p`` there are ``p - 1`` rounds, for odd ``p`` there are ``p``
    rounds with one idle PE per round.  This is the schedule of Sanders and
    Träff's factor algorithm [31] which the paper's implementation uses for
    its all-to-all exchanges.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1:
        return []
    rounds: List[List[Tuple[int, int]]] = []
    if p % 2 == 0:
        # Classic circle method: fix PE p-1, rotate the others.
        n = p - 1
        for r in range(n):
            pairs = [(r, p - 1) if r < p - 1 else (0, p - 1)]
            pairs = [(min(r, p - 1), max(r, p - 1))]
            for k in range(1, (n + 1) // 2):
                a = (r + k) % n
                b = (r - k) % n
                pairs.append((min(a, b), max(a, b)))
            rounds.append(sorted(set(pairs)))
    else:
        # Odd p: in round r, PE i is paired with (r - i) mod p; the PE with
        # 2i == r (mod p) is idle.
        for r in range(p):
            pairs = []
            seen = set()
            for i in range(p):
                j = (r - i) % p
                if i == j or i in seen or j in seen:
                    continue
                seen.add(i)
                seen.add(j)
                pairs.append((min(i, j), max(i, j)))
            rounds.append(sorted(pairs))
    return rounds


def direct_schedule(p: int) -> List[List[Tuple[int, int]]]:
    """A single-round 'schedule' in which all pairs communicate at once.

    This is not a feasible single-ported schedule; it is used to describe
    direct delivery where the cost is charged through the
    ``Exch(P, h, r)`` bound instead of round-by-round.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    pairs = [(i, j) for i in range(p) for j in range(i + 1, p)]
    return [pairs] if pairs else []


def verify_one_factor(rounds: Sequence[Sequence[Tuple[int, int]]], p: int) -> bool:
    """Check that ``rounds`` is a valid 1-factorisation of the complete graph.

    Every unordered pair must appear exactly once and no PE may appear twice
    within a round.  Used by the test-suite.
    """
    seen: Dict[Tuple[int, int], int] = {}
    for rnd in rounds:
        used = set()
        for (a, b) in rnd:
            if a == b or not (0 <= a < p) or not (0 <= b < p):
                return False
            if a in used or b in used:
                return False
            used.add(a)
            used.add(b)
            seen[(a, b)] = seen.get((a, b), 0) + 1
    expected = p * (p - 1) // 2
    if len(seen) != expected:
        return False
    return all(count == 1 for count in seen.values())


def execute_exchange(
    comm,
    outboxes: Sequence[Sequence[Message]],
    schedule: str = "sparse",
    charge_copy: bool = True,
) -> ExchangeResult:
    """Run an irregular exchange on communicator ``comm``.

    Parameters
    ----------
    comm:
        The :class:`repro.sim.comm.Comm` performing the exchange.
    outboxes:
        ``outboxes[i]`` is the list of messages local rank ``i`` sends.
        Destinations are local ranks within ``comm``.
    schedule:
        ``'sparse'`` (only non-empty messages cost a startup, as with the
        1-factor implementation) or ``'dense'`` (``P - 1`` startups per PE,
        as with a plain all-to-allv).
    charge_copy:
        Whether to charge the local cost of packing/unpacking the moved
        elements in addition to the network transfer.

    Returns
    -------
    ExchangeResult
    """
    machine = comm.machine
    p = comm.size
    if len(outboxes) != p:
        raise ValueError(f"need one outbox per member PE ({p}), got {len(outboxes)}")
    if schedule not in ("sparse", "dense"):
        raise ValueError(f"unknown exchange schedule {schedule!r}")

    words_sent = np.zeros(p, dtype=np.int64)
    words_received = np.zeros(p, dtype=np.int64)
    messages_sent = np.zeros(p, dtype=np.int64)
    messages_received = np.zeros(p, dtype=np.int64)
    inboxes: List[List[Message]] = [[] for _ in range(p)]

    # Deliver messages (data semantics) and count traffic.
    for src in range(p):
        for dest, payload in outboxes[src]:
            if not 0 <= dest < p:
                raise IndexError(
                    f"message from local rank {src} addressed to invalid rank {dest}"
                )
            payload = np.asarray(payload)
            size = int(payload.size)
            inboxes[dest].append((src, payload))
            words_sent[src] += size
            words_received[dest] += size
            counted = size > 0 or schedule == "dense"
            if size > 0:
                machine.counters.record_message(
                    int(comm.members[src]), int(comm.members[dest]), size
                )
            if counted and size > 0:
                messages_sent[src] += 1
                messages_received[dest] += 1

    # Keep inboxes ordered by source rank for determinism.
    for dest in range(p):
        inboxes[dest].sort(key=lambda msg: msg[0])

    if schedule == "dense":
        messages_sent[:] = p - 1
        messages_received[:] = p - 1

    # Synchronise the group, then charge each PE its own cost; the group is
    # synchronised again afterwards because the step is bulk synchronous.
    machine.synchronize(comm.members)
    level = comm.level
    alpha = machine.spec.alpha
    beta = machine.spec.beta_for_level(level)
    h_per_pe = np.maximum(words_sent, words_received)
    r_per_pe = np.maximum(messages_sent, messages_received)
    times = alpha * r_per_pe + beta * h_per_pe
    if charge_copy:
        times = times + machine.spec.move_ns * 1e-9 * (words_sent + words_received)
    # Dropped / degraded rounds: keyed by each member's exchange counter
    # *before* this exchange is recorded, so both engines draw identically.
    faults = machine.faults
    if faults is not None:
        times = times + faults.exchange_extra(
            comm.members, machine.counters.exchange_ops[comm.members],
            h_per_pe, r_per_pe, alpha, beta,
        )
    machine.advance_many(comm.members, times)
    machine.synchronize(comm.members)
    machine.counters.record_exchange(comm.members)

    rounds = 1
    if schedule == "sparse" and p > 1:
        rounds = p - 1 if p % 2 == 0 else p

    return ExchangeResult(
        inboxes=inboxes,
        words_sent=words_sent,
        words_received=words_received,
        messages_sent=messages_sent,
        messages_received=messages_received,
        h_words=int(h_per_pe.max(initial=0)),
        r_messages=int(r_per_pe.max(initial=0)),
        time=float(times.max(initial=0.0)),
        rounds=rounds,
    )


# ----------------------------------------------------------------------
# Flat (vectorised) exchange for the DistArray engine
# ----------------------------------------------------------------------
@dataclass
class FlatMessages:
    """A batch of messages in flat form (the ``DistArray`` engine's outbox).

    Message ``k`` goes from local rank ``src[k]`` to local rank ``dest[k]``
    and its payload is ``payload[start[k]:start[k] + length[k]]``.  Messages
    are ordered by *send sequence*: for every sender, the sub-sequence of its
    messages appears in the order it would have appended them to a per-PE
    outbox, which is what keeps inbox ordering (and therefore the data
    semantics) identical to the per-PE reference path.
    """

    src: np.ndarray
    dest: np.ndarray
    start: np.ndarray
    length: np.ndarray
    payload: np.ndarray

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dest = np.asarray(self.dest, dtype=np.int64)
        self.start = np.asarray(self.start, dtype=np.int64)
        self.length = np.asarray(self.length, dtype=np.int64)
        n = self.src.size
        if not (self.dest.size == self.start.size == self.length.size == n):
            raise ValueError("message field arrays must have equal length")

    @property
    def count(self) -> int:
        """Number of messages in the batch."""
        return int(self.src.size)

    def select(self, mask: np.ndarray) -> "FlatMessages":
        """Sub-batch of the messages selected by a boolean mask."""
        return FlatMessages(
            self.src[mask], self.dest[mask], self.start[mask],
            self.length[mask], self.payload,
        )


@dataclass
class FlatExchangeResult:
    """Outcome of one flat irregular exchange.

    Mirrors :class:`ExchangeResult` but keeps the received data flat:
    ``recv_values`` holds every PE's received elements back to back
    (``recv_offsets`` delimits the per-PE segments) and
    ``recv_src`` / ``recv_lengths`` describe the received message boundaries
    in the same order (by source rank, then send order — identical to the
    per-PE inbox ordering).  ``recv_values`` is ``None`` when the caller
    asked for cost accounting only.
    """

    words_sent: np.ndarray
    words_received: np.ndarray
    messages_sent: np.ndarray
    messages_received: np.ndarray
    h_words: int
    r_messages: int
    time: float
    rounds: int
    recv_values: Optional[np.ndarray]
    recv_offsets: Optional[np.ndarray]
    recv_src: Optional[np.ndarray]
    recv_lengths: Optional[np.ndarray]


def execute_exchange_flat(
    comm,
    msgs: FlatMessages,
    schedule: str = "sparse",
    charge_copy: bool = True,
    build_inbox: bool = True,
) -> FlatExchangeResult:
    """Run an irregular exchange described by a flat message batch.

    Charges exactly the same modelled time, counters and synchronisation as
    :func:`execute_exchange` would for the equivalent per-PE outboxes; the
    received data is assembled with one stable ``lexsort`` plus one gather
    instead of per-message Python work.

    Parameters mirror :func:`execute_exchange`; ``build_inbox=False`` skips
    assembling the received values (cost accounting only), which callers use
    when they combine network messages with locally kept pieces themselves.
    """
    machine = comm.machine
    p = comm.size
    if schedule not in ("sparse", "dense"):
        raise ValueError(f"unknown exchange schedule {schedule!r}")
    if msgs.count and (
        msgs.dest.min(initial=0) < 0 or msgs.dest.max(initial=0) >= p
        or msgs.src.min(initial=0) < 0 or msgs.src.max(initial=0) >= p
    ):
        raise IndexError("flat message addressed to invalid local rank")

    words_sent = np.zeros(p, dtype=np.int64)
    words_received = np.zeros(p, dtype=np.int64)
    np.add.at(words_sent, msgs.src, msgs.length)
    np.add.at(words_received, msgs.dest, msgs.length)
    non_empty = msgs.length > 0
    messages_sent = np.bincount(msgs.src[non_empty], minlength=p).astype(np.int64)
    messages_received = np.bincount(msgs.dest[non_empty], minlength=p).astype(np.int64)
    if np.any(non_empty):
        machine.counters.record_messages(
            comm.members[msgs.src[non_empty]],
            comm.members[msgs.dest[non_empty]],
            msgs.length[non_empty],
        )
    if schedule == "dense":
        messages_sent[:] = p - 1
        messages_received[:] = p - 1

    machine.synchronize(comm.members)
    level = comm.level
    alpha = machine.spec.alpha
    beta = machine.spec.beta_for_level(level)
    h_per_pe = np.maximum(words_sent, words_received)
    r_per_pe = np.maximum(messages_sent, messages_received)
    times = alpha * r_per_pe + beta * h_per_pe
    if charge_copy:
        times = times + machine.spec.move_ns * 1e-9 * (words_sent + words_received)
    # Same drop/degrade draws as execute_exchange: the per-PE exchange
    # counter key makes the flat batch byte-identical to the per-PE path.
    faults = machine.faults
    if faults is not None:
        times = times + faults.exchange_extra(
            comm.members, machine.counters.exchange_ops[comm.members],
            h_per_pe, r_per_pe, alpha, beta,
        )
    machine.advance_many(comm.members, times)
    machine.synchronize(comm.members)
    machine.counters.record_exchange(comm.members)

    rounds = 1
    if schedule == "sparse" and p > 1:
        rounds = p - 1 if p % 2 == 0 else p

    recv_values = recv_offsets = recv_src = recv_lengths = None
    if build_inbox:
        # Stable by (dest, src, send order): the stable sort breaks the
        # remaining ties by the implicit message order, exactly like the
        # per-PE inbox sort by source rank.
        order = stable_two_key_argsort(msgs.dest, msgs.src, p, p)
        recv_src = msgs.src[order]
        recv_lengths = msgs.length[order]
        recv_values = take_ranges(msgs.payload, msgs.start[order], recv_lengths)
        recv_offsets = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(words_received, out=recv_offsets[1:])

    return FlatExchangeResult(
        words_sent=words_sent,
        words_received=words_received,
        messages_sent=messages_sent,
        messages_received=messages_received,
        h_words=int(h_per_pe.max(initial=0)),
        r_messages=int(r_per_pe.max(initial=0)),
        time=float(times.max(initial=0.0)),
        rounds=rounds,
        recv_values=recv_values,
        recv_offsets=recv_offsets,
        recv_src=recv_src,
        recv_lengths=recv_lengths,
    )
