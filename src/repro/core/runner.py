"""Convenience driver: build a machine, run an algorithm, collect statistics.

The experiment harness and the examples all go through this module so that
input distribution, validation and statistics collection are uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.ams_sort import ams_sort, ams_sort_reference
from repro.core.baselines import (
    parallel_quicksort,
    parallel_quicksort_reference,
    single_level_mergesort,
    single_level_mergesort_reference,
    single_level_sample_sort,
    single_level_sample_sort_reference,
)
from repro.core.config import AMSConfig, RLMConfig
from repro.core.rlm_sort import rlm_sort, rlm_sort_reference
from repro.core.validation import output_imbalance, validate_output
from repro.dist.array import DistArray
from repro.machine.counters import PAPER_PHASES
from repro.machine.spec import MachineSpec
from repro.sim.machine import SimulatedMachine


#: Registry of algorithm names accepted by :func:`run_on_machine`.
ALGORITHMS = ("ams", "rlm", "samplesort", "mergesort", "quicksort")

#: Execution engines: the vectorised flat `DistArray` engine (default) and
#: the per-PE reference implementation it is verified against.
ENGINES = ("flat", "reference")


@dataclass
class SortResult:
    """Everything measured during one sorting run on the simulator.

    Attributes
    ----------
    algorithm:
        Algorithm name.
    output:
        Per-PE sorted output arrays.
    total_time:
        Modelled makespan in seconds (maximum PE clock).
    phase_times:
        Bottleneck (max over PEs) modelled time per phase, accumulated over
        all recursion levels — the quantity plotted in Figure 8.
    imbalance:
        Output imbalance ``max_i |out_i| / (n/p) - 1`` (Figure 10).
    traffic:
        Machine-wide traffic summary (startups, volume).
    p:
        Number of PEs.
    n_total:
        Total number of elements sorted.
    params:
        Free-form parameter dictionary recorded by the caller.
    faults:
        Fault-injection summary (plan spec plus the
        :class:`~repro.machine.counters.FaultCounters` tallies) when the
        machine had an active :class:`~repro.sim.faults.FaultPlan`; empty
        otherwise.
    """

    algorithm: str
    output: List[np.ndarray]
    total_time: float
    phase_times: Dict[str, float]
    imbalance: float
    traffic: Dict[str, int]
    p: int
    n_total: int
    params: Dict[str, object] = field(default_factory=dict)
    faults: Dict[str, object] = field(default_factory=dict)

    @property
    def elements_per_pe(self) -> float:
        """Average input size per PE."""
        return self.n_total / max(self.p, 1)

    def phase_fraction(self, phase: str) -> float:
        """Fraction of the total time spent in ``phase``."""
        if self.total_time <= 0:
            return 0.0
        return self.phase_times.get(phase, 0.0) / self.total_time

    def summary_row(self) -> Dict[str, object]:
        """Flat dictionary for table output."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "p": self.p,
            "n_per_pe": int(round(self.elements_per_pe)),
            "time_s": self.total_time,
            "imbalance": self.imbalance,
            "max_startups": self.traffic.get("max_startups_per_pe", 0),
        }
        for phase in PAPER_PHASES:
            row[phase] = self.phase_times.get(phase, 0.0)
        row.update(self.params)
        return row

    def summary_dict(self) -> Dict[str, object]:
        """JSON-serializable summary of the run (no output arrays).

        This is the persistence boundary used by the campaign cache and the
        golden-trace regression tests: every value is a plain Python scalar
        (or a dict of them), so two identical runs serialize to byte-identical
        JSON regardless of which process executed them.  The ``"faults"``
        key appears only for fault-injected runs, keeping fault-free
        summaries byte-identical to those of builds without the fault layer.
        """
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "p": int(self.p),
            "n_total": int(self.n_total),
            "total_time_s": float(self.total_time),
            "imbalance": float(self.imbalance),
            "phase_times": {
                str(k): float(v) for k, v in sorted(self.phase_times.items())
            },
            "traffic": {str(k): int(v) for k, v in sorted(self.traffic.items())},
            "params": jsonify(self.params),
        }
        if self.faults:
            out["faults"] = jsonify(self.faults)
        return out


def jsonify(obj: object) -> object:
    """Recursively convert numpy scalars/arrays into JSON-safe Python values."""
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [jsonify(v) for v in obj.tolist()]
    if isinstance(obj, (np.bool_, bool)):
        return bool(obj)
    if isinstance(obj, (np.integer, int)):
        return int(obj)
    if isinstance(obj, (np.floating, float)):
        return float(obj)
    return obj


def _resolve_algorithm(name: str, engine: str = "flat") -> Callable:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    flat = engine == "flat"
    name = name.lower()
    if name in ("ams", "ams-sort", "amssort"):
        return ams_sort if flat else ams_sort_reference
    if name in ("rlm", "rlm-sort", "rlmsort"):
        return rlm_sort if flat else rlm_sort_reference
    if name in ("samplesort", "sample-sort", "single-level-sample-sort"):
        return single_level_sample_sort if flat else single_level_sample_sort_reference
    if name in ("mergesort", "merge-sort", "mp-sort", "single-level-mergesort"):
        return single_level_mergesort if flat else single_level_mergesort_reference
    if name in ("quicksort", "quick-sort", "parallel-quicksort"):
        return parallel_quicksort if flat else parallel_quicksort_reference
    raise ValueError(f"unknown algorithm {name!r}; known: {ALGORITHMS}")


def distribute_array(data: np.ndarray, p: int) -> List[np.ndarray]:
    """Split a single array into ``p`` near-equal consecutive chunks."""
    data = np.asarray(data)
    if p <= 0:
        raise ValueError("p must be positive")
    chunks = np.array_split(data, p)
    return [np.ascontiguousarray(c) for c in chunks]


def run_on_machine(
    machine: SimulatedMachine,
    local_data: "DistArray | Sequence[np.ndarray]",
    algorithm: str = "ams",
    config: Optional[object] = None,
    validate: bool = True,
    max_imbalance: Optional[float] = None,
    engine: str = "flat",
    backend: "object | str | None" = None,
    **kwargs: object,
) -> SortResult:
    """Run a distributed sorting algorithm on an existing machine.

    Parameters
    ----------
    machine:
        The simulated machine (its clocks/counters are reset first).
    local_data:
        The distributed input: a :class:`~repro.dist.array.DistArray` or one
        input array per PE (converted at this boundary).
    algorithm:
        One of :data:`ALGORITHMS`.
    config:
        Algorithm configuration object (:class:`AMSConfig` / :class:`RLMConfig`)
        for the multi-level algorithms.
    validate:
        Verify the output is a globally sorted permutation of the input.
    max_imbalance:
        Optional bound on the accepted output imbalance (validation only).
    engine:
        ``'flat'`` (default) runs the vectorised :class:`DistArray` engine;
        ``'reference'`` runs the per-PE seed implementation.  Both produce
        byte-identical outputs, clocks and phase breakdowns.
    backend:
        Kernel backend executing the flat engine's element-scale array
        kernels: a :class:`~repro.dist.backend.base.KernelBackend`
        instance or spec string (``'numpy'``, ``'sharedmem'``,
        ``'sharedmem:4'``).  ``None`` uses the machine's backend, else the
        process default (``REPRO_BACKEND`` or numpy).  Backends are
        byte-identical, so this changes wall-clock time only — never the
        result, the clocks or the RNG streams.
    kwargs:
        Extra keyword arguments forwarded to the algorithm function
        (baselines take e.g. ``oversampling`` or ``schedule``).
    """
    from repro.dist.backend import use_backend

    if len(local_data) != machine.p:
        raise ValueError("need one input array per PE")
    machine.reset()
    comm = machine.world()
    func = _resolve_algorithm(algorithm, engine)

    call_kwargs: Dict[str, object] = dict(kwargs)
    if config is not None:
        call_kwargs["config"] = config
    if isinstance(local_data, DistArray):
        run_input = local_data if engine == "flat" else local_data.to_list()
        input_list = local_data.to_list()
    else:
        run_input = list(local_data)
        input_list = run_input
    if backend is None:
        backend = machine.backend
    if isinstance(backend, str):
        from repro.dist.backend import validate_backend_spec

        validate_backend_spec(backend, source="backend spec")
    with use_backend(backend) as active_backend:
        output = func(comm, run_input, **call_kwargs)
        # Recorded *after* the run: a supervised backend may have demoted
        # itself mid-run, and provenance must name the substrate that
        # actually finished the job.
        machine.backend_used = active_backend.effective_name()
    if isinstance(output, DistArray):
        output = output.to_list()

    if validate:
        validate_output(input_list, output, max_imbalance=max_imbalance)

    phase_times = {
        phase: machine.breakdown.max_time(phase) for phase in machine.breakdown.phases()
    }
    n_total = int(sum(np.asarray(d).size for d in input_list))
    params: Dict[str, object] = {}
    if isinstance(config, AMSConfig):
        params["levels"] = config.levels
        params["delivery"] = config.delivery
    elif isinstance(config, RLMConfig):
        params["levels"] = config.levels
        params["delivery"] = config.delivery
    return SortResult(
        algorithm=algorithm,
        output=output,
        total_time=machine.elapsed(),
        phase_times=phase_times,
        imbalance=output_imbalance(output),
        traffic=machine.counters.summary(),
        p=machine.p,
        n_total=n_total,
        params=params,
        faults=machine.faults.summary() if machine.faults is not None else {},
    )


def sort_array(
    data: np.ndarray,
    p: int = 16,
    algorithm: str = "ams",
    config: Optional[object] = None,
    spec: Optional[MachineSpec] = None,
    seed: int = 0,
    validate: bool = True,
    **kwargs: object,
) -> SortResult:
    """Sort a single array on a freshly built simulated machine.

    This is the entry point used by the quickstart example::

        result = sort_array(np.random.default_rng(0).integers(0, 10**9, 100_000), p=64)
        sorted_values = np.concatenate(result.output)
    """
    machine = SimulatedMachine(p, spec=spec, seed=seed)
    local_data = distribute_array(np.asarray(data), p)
    return run_on_machine(
        machine,
        local_data,
        algorithm=algorithm,
        config=config,
        validate=validate,
        **kwargs,
    )
