"""Recurse Last Multiway Mergesort (RLM-sort), Section 5 of the paper.

One level of RLM-sort on a group of ``p`` PEs to be split into ``r``
sub-groups:

1. **Local sort** — every PE sorts its local data (only at the first level;
   deeper levels receive data that is already locally sorted because the
   received runs were merged).
2. **Splitter selection** — a distributed multisequence selection
   (Section 4.1) computes, for every PE, split positions such that the
   ``r`` resulting parts have *exactly* equal global sizes (perfect
   splitting: this is what distinguishes RLM-sort from AMS-sort).
3. **Data delivery** — the parts are delivered to the ``r`` PE groups
   (Section 4.3).
4. **Bucket processing** — every PE merges the sorted runs it received.
5. **Recursion** — each group recursively applies the next level; a single
   PE is already done because its data is sorted after the merge.

Theorem 2 gives the running time; the isoefficiency function is
``O(p^(1 + 1/k) log p)``, a ``log^2 p`` factor worse than AMS-sort, which the
slowdown experiment (Figure 7) makes visible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.blocks.delivery import deliver_to_groups, deliver_to_groups_flat
from repro.blocks.multiselect import multisequence_select, multisequence_select_flat
from repro.core.config import RLMConfig
from repro.dist.array import DistArray
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.merge import merge_runs_numpy


def rlm_sort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[RLMConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _presorted: bool = False,
) -> List[np.ndarray]:
    """Per-PE reference implementation of RLM-sort (the seed engine).

    Semantically identical to :func:`rlm_sort`; kept as the executable
    specification the flat engine is verified against.
    """
    if config is None:
        config = RLMConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Local sorting (first level only)
    # ------------------------------------------------------------------
    if not _presorted:
        with comm.phase(PHASE_LOCAL_SORT):
            local_sorted = [np.sort(d, kind="stable") for d in local_data]
            comm.charge_sort([d.size for d in local_data])
    else:
        local_sorted = [d for d in local_data]

    if p == 1:
        return [local_sorted[0].copy() if _presorted else local_sorted[0]]

    if _plan is None:
        _plan = config.plan_for(p)
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p))

    n_total = int(sum(d.size for d in local_sorted))
    groups = comm.split(r)

    # ------------------------------------------------------------------
    # Splitter selection: exact multisequence selection at ranks
    # proportional to the group sizes (equal to i*n/r when p divides evenly),
    # so every PE ends up with n/p elements regardless of rounding.
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        cumulative_pes = np.cumsum([g.size for g in groups])
        ranks = [int((n_total * int(c)) // p) for c in cumulative_pes[:-1]]
        selection = multisequence_select(comm, local_sorted, ranks)

    # ------------------------------------------------------------------
    # Build the r pieces per PE from the split positions
    # ------------------------------------------------------------------
    pieces: List[List[np.ndarray]] = []
    for i in range(p):
        slices = selection.pieces_for_pe(i, int(local_sorted[i].size))
        pieces.append([local_sorted[i][s] for s in slices])

    # ------------------------------------------------------------------
    # Data delivery
    # ------------------------------------------------------------------
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # Bucket processing: merge the received sorted runs on every PE
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        merged: List[np.ndarray] = []
        merge_sizes = []
        merge_ways = []
        for i in range(p):
            runs = delivery.received[i]
            out = merge_runs_numpy(runs)
            merged.append(out)
            merge_sizes.append(int(out.size))
            merge_ways.append(max(2, len([x for x in runs if x.size > 0])))
        comm.charge_merge(merge_sizes, merge_ways)

    # ------------------------------------------------------------------
    # Recursion within each group (data already locally sorted)
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        offset = comm.local_rank_of(int(group.members[0]))
        group_local = [merged[offset + j] for j in range(group.size)]
        sorted_group = rlm_sort_reference(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _presorted=True,
        )
        for j in range(group.size):
            output[offset + j] = sorted_group[j]
    return output


def _rlm_sort_flat(
    comm,
    dist: DistArray,
    config: RLMConfig,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _presorted: bool = False,
) -> DistArray:
    """One level of RLM-sort on the flat engine (whole-machine vectorised).

    Local sorting and the post-delivery multiway merge both become a single
    segmented stable sort of the flat buffer; the exact splitting runs on
    the flat multisequence selection, and the resulting pieces are already
    contiguous slices of the sorted buffer, so piece extraction is pure
    offset arithmetic.  All modelled charges match the per-PE reference.
    """
    p = comm.size

    # ------------------------------------------------------------------
    # Local sorting (first level only)
    # ------------------------------------------------------------------
    if not _presorted:
        with comm.phase(PHASE_LOCAL_SORT):
            local_sorted = dist.sort_segments()
            comm.charge_sort(dist.sizes())
    else:
        local_sorted = dist

    if p == 1:
        return local_sorted.copy() if _presorted else local_sorted

    if _plan is None:
        _plan = config.plan_for(p)
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p))

    n_total = local_sorted.total
    sizes = local_sorted.sizes()
    groups = comm.split(r)

    # ------------------------------------------------------------------
    # Splitter selection: exact multisequence selection
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        cumulative_pes = np.cumsum([g.size for g in groups])
        ranks = [int((n_total * int(c)) // p) for c in cumulative_pes[:-1]]
        selection = multisequence_select_flat(comm, local_sorted, ranks)

    # ------------------------------------------------------------------
    # Pieces: consecutive slices of the sorted segments (offset arithmetic)
    # ------------------------------------------------------------------
    bounds = np.vstack([
        np.zeros((1, p), dtype=np.int64),
        selection.splits,
        sizes[None, :],
    ])
    piece_sizes = np.diff(bounds, axis=0).T.astype(np.int64)

    # ------------------------------------------------------------------
    # Data delivery
    # ------------------------------------------------------------------
    delivery = deliver_to_groups_flat(
        comm,
        groups,
        local_sorted.values,
        piece_sizes,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # Bucket processing: merge the received sorted runs on every PE
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        merged = delivery.received.sort_segments()
        ways = np.maximum(2, delivery.nonempty_runs_per_pe())
        comm.charge_merge(delivery.received_sizes, ways)

    # ------------------------------------------------------------------
    # Recursion within each group (data already locally sorted)
    # ------------------------------------------------------------------
    if r == p:
        # Every group is a single already-sorted PE: the recursion would
        # only copy each segment, so the level is done.
        return merged
    parts: List[DistArray] = []
    start_rank = 0
    for group in groups:
        sub = merged.slice_segments(start_rank, start_rank + group.size)
        parts.append(
            _rlm_sort_flat(
                group, sub, config, level=level + 1, _plan=_plan, _presorted=True
            )
        )
        start_rank += group.size
    return DistArray.concatenate(parts)


def rlm_sort(
    comm,
    local_data: Union[DistArray, Sequence[np.ndarray]],
    config: Optional[RLMConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _presorted: bool = False,
) -> Union[DistArray, List[np.ndarray]]:
    """Sort a distributed array with RLM-sort (flat engine).

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        The distributed input: a :class:`~repro.dist.array.DistArray` or the
        classic per-PE list (converted at this boundary).
    config:
        :class:`RLMConfig`; defaults to two levels.
    level:
        Internal recursion level (leave at 0).
    _presorted:
        Internal flag: the local segments are already sorted.

    Returns
    -------
    DistArray or list of numpy.ndarray
        The sorted output in the same representation as the input.  The
        output is perfectly balanced: every PE holds ``floor(n/p)`` or
        ``ceil(n/p)`` elements.
    """
    if config is None:
        config = RLMConfig()
    if isinstance(local_data, DistArray):
        if local_data.p != comm.size:
            raise ValueError("need one local segment per member PE")
        return _rlm_sort_flat(
            comm, local_data, config, level=level, _plan=_plan, _presorted=_presorted
        )
    if len(local_data) != comm.size:
        raise ValueError("need one local array per member PE")
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    out = _rlm_sort_flat(
        comm, dist, config, level=level, _plan=_plan, _presorted=_presorted
    )
    return out.to_list()
