"""Recurse Last Multiway Mergesort (RLM-sort), Section 5 of the paper.

One level of RLM-sort on a group of ``p`` PEs to be split into ``r``
sub-groups:

1. **Local sort** — every PE sorts its local data (only at the first level;
   deeper levels receive data that is already locally sorted because the
   received runs were merged).
2. **Splitter selection** — a distributed multisequence selection
   (Section 4.1) computes, for every PE, split positions such that the
   ``r`` resulting parts have *exactly* equal global sizes (perfect
   splitting: this is what distinguishes RLM-sort from AMS-sort).
3. **Data delivery** — the parts are delivered to the ``r`` PE groups
   (Section 4.3).
4. **Bucket processing** — every PE merges the sorted runs it received.
5. **Recursion** — each group recursively applies the next level; a single
   PE is already done because its data is sorted after the merge.

Theorem 2 gives the running time; the isoefficiency function is
``O(p^(1 + 1/k) log p)``, a ``log^2 p`` factor worse than AMS-sort, which the
slowdown experiment (Figure 7) makes visible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.blocks.delivery import deliver_to_groups, deliver_to_groups_batched
from repro.blocks.multiselect import multisequence_select, multisequence_select_batched
from repro.core.ams_sort import _level_r, _level_result, _split_sizes
from repro.core.config import RLMConfig
from repro.dist.array import DistArray
from repro.dist.flatops import concat_ranges, map_by_unique2
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.merge import merge_runs_numpy
from repro.sim.groups import GroupBatch


def rlm_sort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[RLMConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _presorted: bool = False,
) -> List[np.ndarray]:
    """Per-PE reference implementation of RLM-sort (the seed engine).

    Semantically identical to :func:`rlm_sort`; kept as the executable
    specification the flat engine is verified against.
    """
    if config is None:
        config = RLMConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Local sorting (first level only)
    # ------------------------------------------------------------------
    if not _presorted:
        with comm.phase(PHASE_LOCAL_SORT):
            local_sorted = [np.sort(d, kind="stable") for d in local_data]
            comm.charge_sort([d.size for d in local_data])
    else:
        local_sorted = [d for d in local_data]

    if p == 1:
        return [local_sorted[0].copy() if _presorted else local_sorted[0]]

    if _plan is None:
        _plan = config.plan_for(p)
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p))

    n_total = int(sum(d.size for d in local_sorted))
    groups = comm.split(r)

    # ------------------------------------------------------------------
    # Splitter selection: exact multisequence selection at ranks
    # proportional to the group sizes (equal to i*n/r when p divides evenly),
    # so every PE ends up with n/p elements regardless of rounding.
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        cumulative_pes = np.cumsum([g.size for g in groups])
        ranks = [int((n_total * int(c)) // p) for c in cumulative_pes[:-1]]
        # Per-group pivot stream: sibling groups draw independently, which
        # is what lets the flat engine run them in lockstep (the draws are
        # identical either way because the stream only depends on
        # (machine seed, level, first group PE)).
        selection = multisequence_select(
            comm, local_sorted, ranks,
            rng=comm.machine.group_rng(level, comm.global_pe(0)),
        )

    # ------------------------------------------------------------------
    # Build the r pieces per PE from the split positions
    # ------------------------------------------------------------------
    pieces: List[List[np.ndarray]] = []
    for i in range(p):
        slices = selection.pieces_for_pe(i, int(local_sorted[i].size))
        pieces.append([local_sorted[i][s] for s in slices])

    # ------------------------------------------------------------------
    # Data delivery
    # ------------------------------------------------------------------
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # Bucket processing: merge the received sorted runs on every PE
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        merged: List[np.ndarray] = []
        merge_sizes = []
        merge_ways = []
        for i in range(p):
            runs = delivery.received[i]
            out = merge_runs_numpy(runs)
            merged.append(out)
            merge_sizes.append(int(out.size))
            merge_ways.append(max(2, len([x for x in runs if x.size > 0])))
        comm.charge_merge(merge_sizes, merge_ways)

    # ------------------------------------------------------------------
    # Recursion within each group (data already locally sorted)
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        offset = comm.local_rank_of(int(group.members[0]))
        group_local = [merged[offset + j] for j in range(group.size)]
        sorted_group = rlm_sort_reference(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _presorted=True,
        )
        for j in range(group.size):
            output[offset + j] = sorted_group[j]
    return output


def _rlm_level_batched(
    comm,
    dist: DistArray,
    isl_offsets: np.ndarray,
    config: RLMConfig,
    level: int,
    plan,
) -> tuple:
    """Run one RLM-sort recursion level for *all* islands in lockstep.

    Mirrors :func:`repro.core.ams_sort._ams_level_batched`: the exact
    multisequence selections of every island run as one batched pivot loop
    (:func:`multisequence_select_batched`), the piece delivery of the whole
    level is one :func:`deliver_to_groups_batched` call, and the
    post-delivery multiway merges collapse into one segmented sort.
    Singleton islands are already sorted and pass through untouched (their
    base case charges nothing).
    """
    machine = comm.machine
    spec = comm.spec
    sizes_isl = np.diff(isl_offsets)
    num_isl = int(sizes_isl.size)
    active = np.flatnonzero(sizes_isl > 1)
    n_act = int(active.size)
    act_sizes = sizes_isl[active]
    act_off = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(act_sizes, out=act_off[1:])
    batch_ranks = concat_ranges(isl_offsets[active], act_sizes)
    batch_members = comm.members[batch_ranks]
    islands = GroupBatch(machine, batch_members, act_off)
    dist_b = dist if n_act == num_isl else dist.take_segments(batch_ranks)
    data_sizes = dist_b.sizes()

    # Group counts and sub-group layouts depend only on the island size;
    # evaluate once per distinct size.
    uniq_sz, inv_sz = np.unique(act_sizes, return_inverse=True)
    r_uniq = np.array(
        [_level_r(plan, level, int(pk)) for pk in uniq_sz], dtype=np.int64
    )
    r_act = r_uniq[inv_sz]
    sub_cache = {
        int(pk): _split_sizes(int(pk), int(rk))
        for pk, rk in zip(uniq_sz, r_uniq)
    }
    sub_sizes = [sub_cache[int(pk)] for pk in act_sizes]

    # ------------------------------------------------------------------
    # 1. Splitter selection: exact multisequence selection, all islands in
    #    lockstep with per-island replicated pivot streams
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        isl_totals = np.add.reduceat(data_sizes, act_off[:-1])
        if n_act and int(isl_totals.max(initial=0)) * int(act_sizes.max(initial=1)) \
                < 2 ** 63:
            # All islands' target ranks in one pass: per-island inclusive
            # cumsum of the sub-group sizes, last entry dropped, scaled by
            # total/p — identical to the per-island integer arithmetic.
            sub_flat = np.concatenate(sub_sizes) if n_act else \
                np.empty(0, dtype=np.int64)
            sub_off = np.zeros(n_act + 1, dtype=np.int64)
            np.cumsum(r_act, out=sub_off[1:])
            cum = np.cumsum(sub_flat)
            cum -= np.repeat(
                cum[sub_off[:-1]] - sub_flat[sub_off[:-1]], r_act
            )
            keep = np.ones(int(sub_off[-1]), dtype=bool)
            keep[sub_off[1:] - 1] = False
            nr = r_act - 1
            ranks_flat = (
                np.repeat(isl_totals, nr) * cum[keep]
            ) // np.repeat(act_sizes, nr)
            ranks_per_island = np.split(ranks_flat, np.cumsum(nr)[:-1])
        else:  # pragma: no cover - int64 headroom fallback
            ranks_per_island = []
            for k in range(n_act):
                cum_k = np.cumsum(sub_sizes[k])
                ranks_per_island.append([
                    int((int(isl_totals[k]) * int(c)) // int(act_sizes[k]))
                    for c in cum_k[:-1]
                ])
        rngs = [
            machine.group_rng(level, int(batch_members[act_off[k]]))
            for k in range(n_act)
        ]
        selections = multisequence_select_batched(
            islands, dist_b, ranks_per_island, rngs
        )

    # ------------------------------------------------------------------
    # 2. Pieces: consecutive slices of the sorted segments
    # ------------------------------------------------------------------
    piece_mats = []
    for k in range(n_act):
        pk = int(act_sizes[k])
        bounds = np.vstack([
            np.zeros((1, pk), dtype=np.int64),
            selections[k].splits,
            data_sizes[act_off[k]:act_off[k + 1]][None, :],
        ])
        piece_mats.append(np.diff(bounds, axis=0).T.astype(np.int64))

    # ------------------------------------------------------------------
    # 3. Data delivery for every island at once
    # ------------------------------------------------------------------
    delivery = deliver_to_groups_batched(
        islands,
        sub_sizes,
        dist_b.values,
        piece_mats,
        method=config.delivery,
        seed=machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )
    received = delivery.received

    # ------------------------------------------------------------------
    # 4. Bucket processing: one segmented sort merges all received runs
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        merged = received.sort_segments()
        machine.advance_many(
            batch_members,
            map_by_unique2(
                delivery.received_sizes,
                np.maximum(2, delivery.nonempty_runs),
                lambda m, w: spec.local_merge_time(m, w),
            ),
        )

    # ------------------------------------------------------------------
    # 5. Next-level island layout (+ pass-through of singleton islands)
    # ------------------------------------------------------------------
    return _level_result(
        dist, isl_offsets, active, batch_ranks, merged, sub_sizes
    )


def _rlm_sort_flat(
    comm,
    dist: DistArray,
    config: RLMConfig,
    level: int = 0,
    _plan=None,
    _presorted: bool = False,
) -> DistArray:
    """RLM-sort on the flat engine: the whole recursion in lockstep.

    The first-level local sort and every post-delivery multiway merge are
    single segmented stable sorts of the flat buffer; the exact splitting of
    all islands of a level runs as one batched multisequence selection, and
    the piece delivery of a level is one whole-machine batch.  Deeper levels
    receive data that is already locally sorted, so after the last level the
    array is globally sorted and perfectly balanced.
    """
    p = comm.size

    # ------------------------------------------------------------------
    # Local sorting (first level only)
    # ------------------------------------------------------------------
    if not _presorted:
        with comm.phase(PHASE_LOCAL_SORT):
            local_sorted = dist.sort_segments()
            comm.charge_sort(dist.sizes())
    else:
        local_sorted = dist

    if p == 1:
        return local_sorted.copy() if _presorted else local_sorted

    if _plan is None:
        _plan = config.plan_for(p)

    out = local_sorted
    isl_offsets = np.array([0, p], dtype=np.int64)
    cur_level = level
    while int(np.diff(isl_offsets).max(initial=0)) > 1:
        out, isl_offsets = _rlm_level_batched(
            comm, out, isl_offsets, config, cur_level, _plan
        )
        cur_level += 1
    return out


def rlm_sort(
    comm,
    local_data: Union[DistArray, Sequence[np.ndarray]],
    config: Optional[RLMConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _presorted: bool = False,
) -> Union[DistArray, List[np.ndarray]]:
    """Sort a distributed array with RLM-sort (flat engine).

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        The distributed input: a :class:`~repro.dist.array.DistArray` or the
        classic per-PE list (converted at this boundary).
    config:
        :class:`RLMConfig`; defaults to two levels.
    level:
        Internal recursion level (leave at 0).
    _presorted:
        Internal flag: the local segments are already sorted.

    Returns
    -------
    DistArray or list of numpy.ndarray
        The sorted output in the same representation as the input.  The
        output is perfectly balanced: every PE holds ``floor(n/p)`` or
        ``ceil(n/p)`` elements.
    """
    if config is None:
        config = RLMConfig()
    if isinstance(local_data, DistArray):
        if local_data.p != comm.size:
            raise ValueError("need one local segment per member PE")
        return _rlm_sort_flat(
            comm, local_data, config, level=level, _plan=_plan, _presorted=_presorted
        )
    if len(local_data) != comm.size:
        raise ValueError("need one local array per member PE")
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    out = _rlm_sort_flat(
        comm, dist, config, level=level, _plan=_plan, _presorted=_presorted
    )
    return out.to_list()
