"""Recurse Last Multiway Mergesort (RLM-sort), Section 5 of the paper.

One level of RLM-sort on a group of ``p`` PEs to be split into ``r``
sub-groups:

1. **Local sort** — every PE sorts its local data (only at the first level;
   deeper levels receive data that is already locally sorted because the
   received runs were merged).
2. **Splitter selection** — a distributed multisequence selection
   (Section 4.1) computes, for every PE, split positions such that the
   ``r`` resulting parts have *exactly* equal global sizes (perfect
   splitting: this is what distinguishes RLM-sort from AMS-sort).
3. **Data delivery** — the parts are delivered to the ``r`` PE groups
   (Section 4.3).
4. **Bucket processing** — every PE merges the sorted runs it received.
5. **Recursion** — each group recursively applies the next level; a single
   PE is already done because its data is sorted after the merge.

Theorem 2 gives the running time; the isoefficiency function is
``O(p^(1 + 1/k) log p)``, a ``log^2 p`` factor worse than AMS-sort, which the
slowdown experiment (Figure 7) makes visible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.blocks.delivery import deliver_to_groups
from repro.blocks.multiselect import multisequence_select
from repro.core.config import RLMConfig
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.merge import merge_runs_numpy


def rlm_sort(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[RLMConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _presorted: bool = False,
) -> List[np.ndarray]:
    """Sort a distributed array with RLM-sort.

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        One array per member PE.
    config:
        :class:`RLMConfig`; defaults to two levels.
    level:
        Internal recursion level (leave at 0).
    _presorted:
        Internal flag: the local arrays are already sorted (deeper levels).

    Returns
    -------
    list of numpy.ndarray
        The sorted output, one array per member PE.  The output is perfectly
        balanced: every PE holds ``floor(n/p)`` or ``ceil(n/p)`` elements.
    """
    if config is None:
        config = RLMConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Local sorting (first level only)
    # ------------------------------------------------------------------
    if not _presorted:
        with comm.phase(PHASE_LOCAL_SORT):
            local_sorted = [np.sort(d, kind="stable") for d in local_data]
            comm.charge_sort([d.size for d in local_data])
    else:
        local_sorted = [d for d in local_data]

    if p == 1:
        return [local_sorted[0].copy() if _presorted else local_sorted[0]]

    if _plan is None:
        _plan = config.plan_for(p)
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p))

    n_total = int(sum(d.size for d in local_sorted))
    groups = comm.split(r)

    # ------------------------------------------------------------------
    # Splitter selection: exact multisequence selection at ranks
    # proportional to the group sizes (equal to i*n/r when p divides evenly),
    # so every PE ends up with n/p elements regardless of rounding.
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        cumulative_pes = np.cumsum([g.size for g in groups])
        ranks = [int((n_total * int(c)) // p) for c in cumulative_pes[:-1]]
        selection = multisequence_select(comm, local_sorted, ranks)

    # ------------------------------------------------------------------
    # Build the r pieces per PE from the split positions
    # ------------------------------------------------------------------
    pieces: List[List[np.ndarray]] = []
    for i in range(p):
        slices = selection.pieces_for_pe(i, int(local_sorted[i].size))
        pieces.append([local_sorted[i][s] for s in slices])

    # ------------------------------------------------------------------
    # Data delivery
    # ------------------------------------------------------------------
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # Bucket processing: merge the received sorted runs on every PE
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        merged: List[np.ndarray] = []
        merge_sizes = []
        merge_ways = []
        for i in range(p):
            runs = delivery.received[i]
            out = merge_runs_numpy(runs)
            merged.append(out)
            merge_sizes.append(int(out.size))
            merge_ways.append(max(2, len([x for x in runs if x.size > 0])))
        comm.charge_merge(merge_sizes, merge_ways)

    # ------------------------------------------------------------------
    # Recursion within each group (data already locally sorted)
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        offset = comm.local_rank_of(int(group.members[0]))
        group_local = [merged[offset + j] for j in range(group.size)]
        sorted_group = rlm_sort(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _presorted=True,
        )
        for j in range(group.size):
            output[offset + j] = sorted_group[j]
    return output
