"""Single-level baseline algorithms the paper compares against.

* :func:`single_level_sample_sort` — classic parallel sample sort [6]:
  centralized splitter selection (gather the sample, sort it on one PE,
  broadcast ``p - 1`` splitters), a direct all-to-all exchange with up to
  ``p - 1`` message startups per PE, and a final local sort.  Its
  isoefficiency function is ``Omega(p^2 / log p)`` — the scalability gap the
  multi-level algorithms close.
* :func:`single_level_mergesort` — single-level multiway mergesort in the
  style of MP-sort [12] (Section 7.3): local sort, exact ``p``-way
  splitting via multisequence selection, direct all-to-all exchange, and a
  final local merge (or, like MP-sort, a local sort from scratch).
* :func:`parallel_quicksort` — recursive parallel quicksort [19]: the PEs
  are repeatedly split into two halves around a pivot, moving all data once
  per level for ``log2 p`` levels.  It represents the "prohibitive
  communication volume" end of the design space discussed in the
  introduction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.blocks.delivery import deliver_to_groups, deliver_to_groups_flat
from repro.blocks.multiselect import multisequence_select, multisequence_select_flat
from repro.blocks.sampling import draw_samples_flat, splitter_ranks
from repro.dist.array import DistArray
from repro.dist.flatops import (
    bincount,
    gather,
    stable_key_argsort,
    stable_two_key_argsort,
)
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.merge import merge_runs_numpy
from repro.seq.partition import bucket_indices


def single_level_sample_sort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    oversampling: int = 16,
    schedule: str = "dense",
) -> List[np.ndarray]:
    """Per-PE reference implementation of the classic sample sort."""
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(local_data[0], kind="stable")
            comm.charge_sort([out.size])
        return [out]

    # --- centralized splitter selection -------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        samples = draw_samples_flat(
            DistArray.from_list(local_data), oversampling,
            comm.machine.sample_rng, 0, comm.members,
        ).to_list()
        gathered = comm.gather(samples, root=0, words_each=oversampling)
        pieces = [np.asarray(s) for s in gathered if np.asarray(s).size > 0]
        sample = np.sort(np.concatenate(pieces), kind="stable") if pieces else np.empty(0)
        comm.charge_local(0, comm.spec.local_sort_time(int(sample.size)))
        if sample.size == 0:
            splitters = sample[:0]
        else:
            ranks = splitter_ranks(int(sample.size), p - 1)
            splitters = sample[ranks]
        comm.bcast(splitters, root=0, words=int(splitters.size))

    # --- partition into p buckets --------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        pieces_per_pe: List[List[np.ndarray]] = []
        for i in range(p):
            data = local_data[i]
            if splitters.size == 0:
                dest = np.zeros(data.size, dtype=np.int64)
            else:
                dest = bucket_indices(data, splitters)
            pieces_per_pe.append([data[dest == j] for j in range(p)])
        comm.charge_partition([d.size for d in local_data], p)

    # --- direct all-to-all exchange ------------------------------------
    groups = comm.split(p)  # every PE is its own group
    delivery = deliver_to_groups(
        comm, groups, pieces_per_pe, method="naive",
        phase=PHASE_DATA_DELIVERY, schedule=schedule,
    )

    # --- final local sort ------------------------------------------------
    with comm.phase(PHASE_LOCAL_SORT):
        output = []
        for i in range(p):
            data = delivery.received_concat(i)
            output.append(np.sort(data, kind="stable"))
        comm.charge_sort([o.size for o in output])
    return output


def single_level_mergesort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    merge_received: bool = True,
    schedule: str = "dense",
) -> List[np.ndarray]:
    """Per-PE reference implementation of single-level multiway mergesort."""
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    with comm.phase(PHASE_LOCAL_SORT):
        local_sorted = [np.sort(d, kind="stable") for d in local_data]
        comm.charge_sort([d.size for d in local_data])

    if p == 1:
        return [local_sorted[0]]

    n_total = int(sum(d.size for d in local_sorted))

    with comm.phase(PHASE_SPLITTER_SELECTION):
        ranks = [(g * n_total) // p for g in range(1, p)]
        selection = multisequence_select(comm, local_sorted, ranks)

    pieces: List[List[np.ndarray]] = []
    for i in range(p):
        slices = selection.pieces_for_pe(i, int(local_sorted[i].size))
        pieces.append([local_sorted[i][s] for s in slices])

    groups = comm.split(p)
    delivery = deliver_to_groups(
        comm, groups, pieces, method="naive",
        phase=PHASE_DATA_DELIVERY, schedule=schedule,
    )

    with comm.phase(PHASE_BUCKET_PROCESSING):
        output: List[np.ndarray] = []
        sizes = []
        ways = []
        for i in range(p):
            runs = delivery.received[i]
            if merge_received:
                out = merge_runs_numpy(runs)
            else:
                out = delivery.received_concat(i)
                out = np.sort(out, kind="stable")
            output.append(out)
            sizes.append(int(out.size))
            ways.append(max(2, len([x for x in runs if x.size > 0])))
        if merge_received:
            comm.charge_merge(sizes, ways)
        else:
            comm.charge_sort(sizes)
    return output


def parallel_quicksort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    oversampling: int = 16,
    _presorted: bool = False,
    seed_offset: int = 0,
) -> List[np.ndarray]:
    """Per-PE reference implementation of recursive parallel quicksort."""
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(local_data[0], kind="stable")
            comm.charge_sort([out.size])
        return [out]

    # --- pivot selection from a small sample ---------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        samples = draw_samples_flat(
            DistArray.from_list(local_data), oversampling,
            comm.machine.sample_rng, seed_offset, comm.members,
        ).to_list()
        gathered = comm.allgather_arrays(samples, merge_sorted=True)
        if gathered.size == 0:
            pivot = None
        else:
            pivot = gathered[gathered.size // 2]

    # --- partition into two pieces and deliver to two halves -----------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        pieces: List[List[np.ndarray]] = []
        for i in range(p):
            data = local_data[i]
            if pivot is None:
                pieces.append([data, data[:0]])
            else:
                mask = data <= pivot
                pieces.append([data[mask], data[~mask]])
        comm.charge_partition([d.size for d in local_data], 2)

    groups = comm.split(2)
    delivery = deliver_to_groups(
        comm, groups, pieces, method="naive", phase=PHASE_DATA_DELIVERY,
        seed=seed_offset,
    )

    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        offset = comm.local_rank_of(int(group.members[0]))
        group_local = [delivery.received_concat(offset + j) for j in range(group.size)]
        sorted_group = parallel_quicksort_reference(
            group, group_local, oversampling=oversampling, seed_offset=seed_offset + 1
        )
        for j in range(group.size):
            output[offset + j] = sorted_group[j]
    return output


# ======================================================================
# Flat (DistArray) engine ports
# ======================================================================

def _single_level_sample_sort_flat(
    comm,
    dist: DistArray,
    oversampling: int = 16,
    schedule: str = "dense",
) -> DistArray:
    """Flat-engine port of the classic single-level sample sort."""
    p = comm.size
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(dist.values, kind="stable")
            comm.charge_sort([out.size])
        return DistArray(out, dist.offsets.copy())
    sizes = dist.sizes()

    # --- centralized splitter selection (counter-RNG sample) ------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        samples = draw_samples_flat(
            dist, oversampling, comm.machine.sample_rng, 0, comm.members
        ).to_list()
        gathered = comm.gather(samples, root=0, words_each=oversampling)
        pieces = [np.asarray(s) for s in gathered if np.asarray(s).size > 0]
        sample = np.sort(np.concatenate(pieces), kind="stable") if pieces else np.empty(0)
        comm.charge_local(0, comm.spec.local_sort_time(int(sample.size)))
        if sample.size == 0:
            splitters = sample[:0]
        else:
            ranks = splitter_ranks(int(sample.size), p - 1)
            splitters = sample[ranks]
        comm.bcast(splitters, root=0, words=int(splitters.size))

    # --- partition into p buckets (one argsort over (PE, bucket) keys) --
    with comm.phase(PHASE_BUCKET_PROCESSING):
        seg = dist.segment_ids()
        if splitters.size == 0:
            dest = np.zeros(dist.total, dtype=np.int64)
        else:
            dest = bucket_indices(dist.values, splitters)
        key = seg * p + dest
        order = stable_two_key_argsort(seg, dest, p, p)
        piece_values = gather(dist.values, order)
        piece_sizes = bincount(key, minlength=p * p).reshape(p, p).astype(
            np.int64, copy=False
        )
        comm.charge_partition(sizes, p)

    # --- direct all-to-all exchange ------------------------------------
    groups = comm.split(p)  # every PE is its own group
    delivery = deliver_to_groups_flat(
        comm, groups, piece_values, piece_sizes, method="naive",
        phase=PHASE_DATA_DELIVERY, schedule=schedule,
    )

    # --- final local sort ------------------------------------------------
    with comm.phase(PHASE_LOCAL_SORT):
        output = delivery.received.sort_segments()
        comm.charge_sort(delivery.received_sizes)
    return output


def _single_level_mergesort_flat(
    comm,
    dist: DistArray,
    merge_received: bool = True,
    schedule: str = "dense",
) -> DistArray:
    """Flat-engine port of single-level multiway mergesort (MP-sort style)."""
    p = comm.size

    with comm.phase(PHASE_LOCAL_SORT):
        local_sorted = dist.sort_segments()
        comm.charge_sort(dist.sizes())

    if p == 1:
        return local_sorted

    n_total = local_sorted.total
    sizes = local_sorted.sizes()

    with comm.phase(PHASE_SPLITTER_SELECTION):
        ranks = [(g * n_total) // p for g in range(1, p)]
        selection = multisequence_select_flat(comm, local_sorted, ranks)

    bounds = np.vstack([
        np.zeros((1, p), dtype=np.int64), selection.splits, sizes[None, :],
    ])
    piece_sizes = np.diff(bounds, axis=0).T.astype(np.int64)

    groups = comm.split(p)
    delivery = deliver_to_groups_flat(
        comm, groups, local_sorted.values, piece_sizes, method="naive",
        phase=PHASE_DATA_DELIVERY, schedule=schedule,
    )

    with comm.phase(PHASE_BUCKET_PROCESSING):
        # Merging the received sorted runs in source order equals a stable
        # segmented sort of the received buffer; only the charge differs
        # between merging (MP-sort merges) and re-sorting from scratch.
        output = delivery.received.sort_segments()
        if merge_received:
            ways = np.maximum(2, delivery.nonempty_runs_per_pe())
            comm.charge_merge(delivery.received_sizes, ways)
        else:
            comm.charge_sort(delivery.received_sizes)
    return output


def _parallel_quicksort_flat(
    comm,
    dist: DistArray,
    oversampling: int = 16,
    seed_offset: int = 0,
) -> DistArray:
    """Flat-engine port of recursive parallel quicksort."""
    p = comm.size

    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(dist.values, kind="stable")
            comm.charge_sort([out.size])
        return DistArray(out, dist.offsets - dist.offsets[0])
    sizes = dist.sizes()

    # --- pivot selection from a small sample ---------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        samples = draw_samples_flat(
            dist, oversampling, comm.machine.sample_rng, seed_offset, comm.members
        ).to_list()
        gathered = comm.allgather_arrays(samples, merge_sorted=True)
        if gathered.size == 0:
            pivot = None
        else:
            pivot = gathered[gathered.size // 2]

    # --- partition into two pieces and deliver to two halves -----------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        seg = dist.segment_ids()
        if pivot is None:
            side = np.zeros(dist.total, dtype=np.int64)
        else:
            side = (dist.values > pivot).astype(np.int64)
        key = seg * 2 + side
        order = stable_key_argsort(key, p * 2)
        piece_values = gather(dist.values, order)
        piece_sizes = bincount(key, minlength=p * 2).reshape(p, 2).astype(
            np.int64, copy=False
        )
        comm.charge_partition(sizes, 2)

    groups = comm.split(2)
    delivery = deliver_to_groups_flat(
        comm, groups, piece_values, piece_sizes, method="naive",
        phase=PHASE_DATA_DELIVERY, seed=seed_offset,
    )

    parts: List[DistArray] = []
    start_rank = 0
    for group in groups:
        sub = delivery.received.slice_segments(start_rank, start_rank + group.size)
        parts.append(
            _parallel_quicksort_flat(
                group, sub, oversampling=oversampling, seed_offset=seed_offset + 1
            )
        )
        start_rank += group.size
    return DistArray.concatenate(parts)


def _dispatch(flat_func, comm, local_data, **kwargs):
    """Run a flat baseline, converting list inputs at the boundary."""
    if isinstance(local_data, DistArray):
        if local_data.p != comm.size:
            raise ValueError("need one local segment per member PE")
        return flat_func(comm, local_data, **kwargs)
    if len(local_data) != comm.size:
        raise ValueError("need one local array per member PE")
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    return flat_func(comm, dist, **kwargs).to_list()


def single_level_sample_sort(
    comm,
    local_data: "Union[DistArray, Sequence[np.ndarray]]",
    oversampling: int = 16,
    schedule: str = "dense",
) -> "Union[DistArray, List[np.ndarray]]":
    """Classic single-level sample sort with centralized splitter selection.

    Runs on the flat engine; accepts a :class:`DistArray` or the classic
    per-PE list (converted at this boundary).

    Parameters
    ----------
    oversampling:
        Number of samples per PE; the root picks ``p - 1`` equidistant
        splitters from the gathered, sorted sample.
    schedule:
        ``'dense'`` models a plain ``MPI_Alltoallv`` (``p - 1`` startups per
        PE) which is the behaviour the paper attributes to single-level
        algorithms; ``'sparse'`` skips empty messages.
    """
    return _dispatch(
        _single_level_sample_sort_flat, comm, local_data,
        oversampling=oversampling, schedule=schedule,
    )


def single_level_mergesort(
    comm,
    local_data: "Union[DistArray, Sequence[np.ndarray]]",
    merge_received: bool = True,
    schedule: str = "dense",
) -> "Union[DistArray, List[np.ndarray]]":
    """Single-level multiway mergesort (perfect splitting, MP-sort style).

    Runs on the flat engine; accepts a :class:`DistArray` or the classic
    per-PE list.  ``merge_received=False`` re-sorts the received data from
    scratch instead of merging the received runs — this mimics MP-sort,
    which "implements local multiway merging by sorting from scratch"
    (Section 7.3).
    """
    return _dispatch(
        _single_level_mergesort_flat, comm, local_data,
        merge_received=merge_received, schedule=schedule,
    )


def parallel_quicksort(
    comm,
    local_data: "Union[DistArray, Sequence[np.ndarray]]",
    oversampling: int = 16,
    _presorted: bool = False,
    seed_offset: int = 0,
) -> "Union[DistArray, List[np.ndarray]]":
    """Recursive parallel quicksort: split the PEs in two around a pivot.

    Runs on the flat engine; accepts a :class:`DistArray` or the classic
    per-PE list.  Every element is moved ``Theta(log p)`` times, which is
    exactly the "prohibitive communication volume" regime the introduction
    of the paper describes for parallelised classic algorithms.
    """
    return _dispatch(
        _parallel_quicksort_flat, comm, local_data,
        oversampling=oversampling, seed_offset=seed_offset,
    )
