"""Adaptive Multi-level Sample sort (AMS-sort), Section 6 of the paper.

One level of AMS-sort on a group of ``p`` PEs that is to be split into ``r``
sub-groups:

1. **Splitter selection** — every PE contributes a random sample
   (oversampling factor ``a``, overpartitioning factor ``b``); the sample is
   sorted with the fast work-inefficient grid sort (Section 4.2) and
   ``b*r - 1`` splitters of equidistant ranks are broadcast to all PEs.
2. **Bucket processing** — every PE partitions its local data into the
   ``b*r`` buckets (super scalar sample sort style partitioning); a global
   all-reduce yields the global bucket sizes, and the optimal scanning
   algorithm (Lemma 1 / Appendix C) assigns consecutive bucket ranges to the
   ``r`` PE groups such that the maximum group load is minimised.
3. **Data delivery** — the per-group pieces are delivered with one of the
   algorithms of Section 4.3 / Appendix A so that all PEs of a group receive
   the same amount of data up to rounding and the number of message
   startups per PE stays ``O(r)``.
4. **Recursion** — each group recursively sorts its data; on a single PE the
   recursion bottoms out with a local sort.

The result is a globally sorted distributed array with at most a
``(1 + eps)`` output imbalance (Theorem 3).

Two execution engines produce the same algorithm:

* :func:`ams_sort` — the *flat* engine: the distributed array lives in a
  :class:`~repro.dist.array.DistArray` (one contiguous buffer + CSR
  offsets) and every phase is a handful of vectorised numpy calls over the
  whole machine, which is what makes ``p = 4096`` runs feasible.
* :func:`ams_sort_reference` — the original per-PE implementation
  (``List[np.ndarray]`` + ``for i in range(p)`` loops), kept as the
  executable specification.  The flat engine is verified to reproduce its
  outputs, clocks and phase breakdowns byte for byte.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.blocks.delivery import deliver_to_groups, deliver_to_groups_batched
from repro.blocks.fast_sort import (
    grid_shape,
    select_splitters_by_rank,
)
from repro.blocks.grouping import (
    optimal_bucket_grouping,
    optimal_bucket_grouping_batched,
)
from repro.blocks.sampling import (
    SamplingParams,
    draw_samples,
    draw_samples_flat,
    splitter_ranks,
)
from repro.core.config import AMSConfig
from repro.dist.array import DistArray
from repro.dist.flatops import (
    bincount,
    blockwise_searchsorted,
    concat_ranges,
    gather,
    map_by_unique,
    map_by_unique2,
    repeat_add,
    segmented_sort_values,
    stable_key_argsort,
    stable_two_key_argsort,
    take_ranges,
)
from repro.dist.workspace import get_arena
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.partition import bucket_indices
from repro.sim.groups import GroupBatch


def _centralized_splitters(comm, samples: List[np.ndarray], num_splitters: int) -> np.ndarray:
    """Centralized splitter selection (gather + sort + broadcast).

    This is the scheme of the earlier multi-level sample sort of
    Gerbessiotis and Valiant which AMS-sort replaces with the fast parallel
    sample sort; kept as an option for comparison experiments.

    The modelled gather cost is driven by the *largest* per-PE contribution:
    the gather's bottleneck is the PE that injects the most sample words,
    not the average one (with unequal local sizes the mean underestimates
    the critical path).
    """
    with comm.phase(PHASE_SPLITTER_SELECTION):
        words_each = max(1, max((int(np.asarray(s).size) for s in samples), default=1))
        gathered = comm.gather(samples, root=0, words_each=words_each)
        sample = np.concatenate([np.asarray(s) for s in gathered if np.asarray(s).size > 0]) \
            if any(np.asarray(s).size for s in gathered) else np.empty(0)
        sample = np.sort(sample, kind="stable")
        comm.charge_local(0, comm.spec.local_sort_time(int(sample.size)))
        if num_splitters <= 0 or sample.size == 0:
            splitters = sample[:0]
        else:
            ranks = splitter_ranks(int(sample.size), num_splitters)
            splitters = sample[ranks]
        comm.bcast(splitters, root=0, words=int(splitters.size))
    return splitters


def _partition_into_group_pieces(
    comm,
    local_data: List[np.ndarray],
    splitters: np.ndarray,
    boundaries: np.ndarray,
    r: int,
) -> List[List[np.ndarray]]:
    """Partition each PE's data into ``r`` pieces according to bucket boundaries.

    ``boundaries`` delimits which buckets belong to which group; elements are
    routed by a single ``searchsorted`` against the splitters, then gathered
    per group.  The modelled cost of the partition is charged here.
    """
    p = comm.size
    num_buckets = int(splitters.size) + 1
    pieces: List[List[np.ndarray]] = []
    partition_sizes = []
    for i in range(p):
        data = np.asarray(local_data[i])
        partition_sizes.append(int(data.size))
        if splitters.size == 0:
            bucket_of = np.zeros(data.size, dtype=np.int64)
        else:
            bucket_of = bucket_indices(data, splitters)
        # Map bucket index -> group index using the grouping boundaries.
        group_of = np.searchsorted(boundaries[1:-1], bucket_of, side="right") \
            if boundaries.size > 2 else np.zeros(data.size, dtype=np.int64)
        pe_pieces = []
        for g in range(r):
            pe_pieces.append(data[group_of == g])
        pieces.append(pe_pieces)
    comm.charge_partition(partition_sizes, max(2, num_buckets))
    return pieces


def ams_sort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> List[np.ndarray]:
    """Per-PE reference implementation of AMS-sort (the seed engine).

    Semantically identical to :func:`ams_sort` but materialises every PE's
    data as its own array and loops over PEs in Python; kept as the
    executable specification the flat engine is verified against, and for
    small-``p`` debugging.
    """
    if config is None:
        config = AMSConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(local_data[0], kind="stable")
            comm.charge_sort([out.size])
        return [out]

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = int(sum(d.size for d in local_data))

    # Number of groups for this level (never more than the PEs available).
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p)) if p > 1 else 1

    sampling = config.sampling_for(max(_n_total, 2))
    num_buckets = sampling.num_buckets(r)
    num_splitters = sampling.num_splitters(r)

    # ------------------------------------------------------------------
    # 1. Splitter selection
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        samples = draw_samples(
            local_data, sampling, p, r,
            comm.machine.sample_rng, level, comm.members,
        )
    if config.use_fast_sample_sort:
        splitters = select_splitters_by_rank(
            comm, samples, num_splitters, phase=PHASE_SPLITTER_SELECTION
        )
    else:
        splitters = _centralized_splitters(comm, samples, num_splitters)

    # ------------------------------------------------------------------
    # 2. Bucket processing: partition, global bucket sizes, bucket grouping
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        local_bucket_sizes = []
        for i in range(p):
            data = local_data[i]
            if splitters.size == 0:
                counts = np.array([data.size], dtype=np.int64)
            else:
                idx = bucket_indices(data, splitters)
                counts = np.bincount(idx, minlength=splitters.size + 1).astype(np.int64)
            local_bucket_sizes.append(counts)
        global_bucket_sizes = comm.allreduce_vec(local_bucket_sizes)
        grouping = optimal_bucket_grouping(global_bucket_sizes, r, method="accelerated")
        # The parallel bound search of Appendix C costs O(br + alpha log p);
        # charge one extra small collective per search round.
        comm.allreduce_scalar([float(grouping.bound)] * p, op=np.max)
        pieces = _partition_into_group_pieces(
            comm, list(local_data), splitters, grouping.boundaries, r
        )

    # ------------------------------------------------------------------
    # 3. Data delivery
    # ------------------------------------------------------------------
    groups = comm.split(r)
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # 4. Recursion within each group
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        group_rank_offset = comm.local_rank_of(int(group.members[0]))
        group_local = [
            delivery.received_concat(group_rank_offset + j) for j in range(group.size)
        ]
        sorted_group = ams_sort_reference(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _n_total=_n_total,
        )
        for j in range(group.size):
            output[group_rank_offset + j] = sorted_group[j]
    return output


def _level_r(plan: List[int], level: int, group_size: int) -> int:
    """Group count a recursion level uses for a group of ``group_size`` PEs."""
    if group_size == 1:
        return 1
    if level < len(plan):
        r = min(int(plan[level]), group_size)
    else:
        r = group_size
    return max(2, min(r, group_size))


def _split_sizes(p: int, r: int) -> np.ndarray:
    """Sub-group sizes of ``Comm.split``: near-equal, first groups larger."""
    base, extra = divmod(int(p), int(r))
    return np.array(
        [base + (1 if g < extra else 0) for g in range(int(r))], dtype=np.int64
    )


def _level_result(
    dist: DistArray,
    isl_offsets: np.ndarray,
    active: np.ndarray,
    batch_ranks: np.ndarray,
    received: DistArray,
    sub_sizes: List[np.ndarray],
) -> tuple:
    """Assemble one batched level's result and the next island layout.

    Scatters the batch PEs' received segments back into comm order (passive
    singleton islands keep their data untouched) and splits every active
    island's rank range at its sub-group boundaries.  Shared by the AMS and
    RLM level executors — their reassembly is identical.

    Returns ``(new_dist, next_isl_offsets)``.
    """
    sizes_isl = np.diff(isl_offsets)
    num_isl = int(sizes_isl.size)
    if int(active.size) == num_isl:
        new_dist = received
    else:
        new_sizes = np.diff(dist.offsets).copy()
        new_sizes[batch_ranks] = received.sizes()
        new_offsets = np.zeros(new_sizes.size + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=new_offsets[1:])
        # ``new_values`` escapes as the level's DistArray; the two scatter
        # index planes are dead right after use and come from the arena.
        ws = get_arena()
        new_values = np.empty(int(new_offsets[-1]), dtype=received.dtype)
        idx = concat_ranges(new_offsets[batch_ranks], received.sizes(), arena=ws)
        new_values[idx] = received.values
        ws.recycle(idx)
        passive = np.setdiff1d(
            np.arange(num_isl, dtype=np.int64), active, assume_unique=True
        )
        passive_ranks = isl_offsets[passive]
        old_sizes = np.diff(dist.offsets)
        idx = concat_ranges(
            new_offsets[passive_ranks], old_sizes[passive_ranks], arena=ws
        )
        new_values[idx] = take_ranges(
            dist.values, dist.offsets[passive_ranks], old_sizes[passive_ranks]
        )
        ws.recycle(idx)
        new_dist = DistArray(new_values, new_offsets)

    # Next-level island offsets: active islands contribute their sub-group
    # starts (start + exclusive cumsum of sub sizes), singleton islands
    # just their own start — all scattered in one pass.
    active_mask = np.zeros(num_isl, dtype=bool)
    active_mask[active] = True
    cnt = np.ones(num_isl, dtype=np.int64)
    next_offsets_tail = int(isl_offsets[-1])
    if len(sub_sizes):
        r_g = np.fromiter(
            (s.size for s in sub_sizes), dtype=np.int64, count=len(sub_sizes)
        )
        cnt[active] = r_g
    out_off = np.zeros(num_isl + 1, dtype=np.int64)
    np.cumsum(cnt, out=out_off[1:])
    next_offsets = np.empty(int(out_off[-1]) + 1, dtype=np.int64)
    next_offsets[-1] = next_offsets_tail
    passive_mask = ~active_mask
    next_offsets[out_off[:-1][passive_mask]] = isl_offsets[:-1][passive_mask]
    if len(sub_sizes):
        sub_flat = np.concatenate(sub_sizes)
        excl = np.cumsum(sub_flat) - sub_flat
        sub_off = np.zeros(r_g.size + 1, dtype=np.int64)
        np.cumsum(r_g, out=sub_off[1:])
        excl -= np.repeat(excl[sub_off[:-1]], r_g)
        next_offsets[concat_ranges(out_off[active], r_g)] = (
            np.repeat(isl_offsets[active], r_g) + excl
        )
    return new_dist, next_offsets


def _segmented_sample_splitters(
    samples_b: DistArray,
    isl_sample_tot: np.ndarray,
    r_act: np.ndarray,
    sampling: SamplingParams,
) -> tuple:
    """Sort the batch sample per island and pick equidistant splitters.

    One segmented (per-island) value sort over the whole batch, then one
    vectorised :func:`splitter_ranks` pick for every island at once; islands
    with no sample or no splitters get an empty slice.  Returns the
    concatenated splitters ``(spl_values, spl_off)``.  Charge-free — the
    grid and centralized splitter paths share this data plane and differ
    only in what they charge.
    """
    n_act = int(isl_sample_tot.size)
    sample_off = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(isl_sample_tot, out=sample_off[1:])
    sorted_samples = segmented_sort_values(samples_b.values, sample_off)
    uniq_r, inv_r = np.unique(r_act, return_inverse=True)
    ns = np.array(
        [sampling.num_splitters(int(rk)) for rk in uniq_r], dtype=np.int64
    )[inv_r]
    ns = np.where((ns > 0) & (isl_sample_tot > 0), ns, 0)
    spl_off = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(ns, out=spl_off[1:])
    total = int(spl_off[-1])
    if total == 0:
        return sorted_samples[:0], spl_off
    # splitter i of island k sits at sample rank
    # min((i + 1) * tot_k // (ns_k + 1), tot_k - 1), exactly splitter_ranks.
    i1 = np.arange(total, dtype=np.int64) - np.repeat(spl_off[:-1], ns) + 1
    tot_rep = np.repeat(isl_sample_tot, ns)
    ranks = np.minimum((i1 * tot_rep) // (np.repeat(ns, ns) + 1), tot_rep - 1)
    return sorted_samples[np.repeat(sample_off[:-1], ns) + ranks], spl_off


def _batched_grid_splitters(
    comm,
    islands: GroupBatch,
    samples_b: DistArray,
    act_sizes: np.ndarray,
    r_act: np.ndarray,
    sampling: SamplingParams,
) -> tuple:
    """Fast work-inefficient sample sort + splitter pick for a level batch.

    Lockstep port of :func:`repro.blocks.fast_sort.select_splitters_by_rank_flat`
    applied to every island at once: the sample-sort *data* result of island
    ``k`` is its samples' global stable order (one segmented argsort over the
    whole batch), while the modelled grid costs — local sample sorts, the
    hand-off exchanges of PEs outside a non-square grid, row/column gossip,
    ranking merges, column rank reductions, and the final splitter broadcast
    — are charged step for step like the per-island reference.
    """
    machine = islands.machine
    spec = machine.spec
    batch_members = islands.members
    act_off = islands.offsets
    n_act = islands.num_groups
    q = int(batch_members.size)
    pe_isl = np.repeat(np.arange(n_act, dtype=np.int64), act_sizes)

    with comm.phase(PHASE_SPLITTER_SELECTION):
        s_sizes = samples_b.sizes()
        machine.advance_many(
            batch_members,
            map_by_unique(s_sizes, lambda m: spec.local_sort_time(int(m))),
        )
        isl_sample_tot = np.add.reduceat(s_sizes, act_off[:-1])
        grid_mask = isl_sample_tot > 0
        # Grid shapes, one evaluation per distinct island size.
        uniq_p, inv_p = np.unique(act_sizes, return_inverse=True)
        shapes_u = [grid_shape(int(pk)) for pk in uniq_p]
        rows_a = np.array([s.rows for s in shapes_u], dtype=np.int64)[inv_p]
        cols_a = np.array([s.cols for s in shapes_u], dtype=np.int64)[inv_p]
        gp_a = rows_a * cols_a

        # PEs outside a non-square grid hand their sample to a grid PE;
        # the reference ships values and ids in two cost-only exchanges.
        # All handoff islands assemble their exchange vectors in one pass.
        handoff = np.flatnonzero(grid_mask & (gp_a < act_sizes))
        grid_sizes = s_sizes.copy()
        if handoff.size:
            n_out = act_sizes[handoff] - gp_a[handoff]
            j = concat_ranges(gp_a[handoff], n_out)  # local index in [gp, p_k)
            h_rep = np.repeat(handoff, n_out)
            outside = act_off[h_rep] + j
            dests = act_off[h_rep] + j % gp_a[h_rep]
            words_s = np.zeros(q, dtype=np.int64)
            words_r = np.zeros(q, dtype=np.int64)
            msg_s = np.zeros(q, dtype=np.int64)
            msg_r = np.zeros(q, dtype=np.int64)
            words_s[outside] = s_sizes[outside]
            np.add.at(words_r, dests, s_sizes[outside])
            nonempty = s_sizes[outside] > 0
            src_all = outside[nonempty]
            dest_all = dests[nonempty]
            msg_s[src_all] = 1
            np.add.at(msg_r, dest_all, 1)
            np.add.at(grid_sizes, dests, s_sizes[outside])
            ho_flag = np.zeros(n_act, dtype=bool)
            ho_flag[handoff] = True
            sel = ho_flag[pe_isl]
            sub = islands.select(handoff)
            for _ in range(2):  # sample values, then their ids
                if src_all.size:
                    machine.counters.record_messages(
                        batch_members[src_all], batch_members[dest_all],
                        s_sizes[src_all],
                    )
                sub.charge_exchange(
                    words_s[sel], words_r[sel], msg_s[sel], msg_r[sel],
                    charge_copy=False,
                )

        grid_active = np.flatnonzero(grid_mask)
        if grid_active.size:
            # Row/column gossip over a padded (island, row, col) cube: rows
            # are contiguous PE runs inside each grid, columns are strided;
            # one scatter of the grid sample sizes yields every island's
            # row/column totals, words and member layouts without touching
            # islands, rows or columns in Python.
            rows_g = rows_a[grid_active]
            cols_g = cols_a[grid_active]
            gp_g = gp_a[grid_active]
            n_g = int(grid_active.size)
            R = int(rows_g.max())
            C = int(cols_g.max())
            gidx = concat_ranges(np.zeros(n_g, dtype=np.int64), gp_g)
            g_rep = np.repeat(np.arange(n_g, dtype=np.int64), gp_g)
            grid_pos = act_off[grid_active][g_rep] + gidx
            cols_rep = cols_g[g_rep]
            sz_pad = np.zeros((n_g, R, C), dtype=np.int64)
            sz_pad[g_rep, gidx // cols_rep, gidx % cols_rep] = grid_sizes[grid_pos]
            row_tot = sz_pad.sum(axis=2)  # (n_g, R)
            col_tot = sz_pad.sum(axis=1)  # (n_g, C)
            valid_row = np.arange(R, dtype=np.int64)[None, :] < rows_g[:, None]
            valid_col = np.arange(C, dtype=np.int64)[None, :] < cols_g[:, None]

            grid_members = batch_members[grid_pos]
            row_lengths = np.repeat(cols_g, rows_g)
            row_off = np.zeros(row_lengths.size + 1, dtype=np.int64)
            np.cumsum(row_lengths, out=row_off[1:])
            row_words = np.maximum(1, -(-row_tot // cols_g[:, None]))[valid_row]
            row_batch = GroupBatch(machine, grid_members, row_off)
            row_batch.charge_collective(row_words, rounds_factors=row_lengths)

            # Column members in (island, col, row) order via a broadcast
            # index cube masked down to each island's true grid.
            r_idx = np.arange(R, dtype=np.int64)
            c_idx = np.arange(C, dtype=np.int64)
            cube = (
                act_off[grid_active][:, None, None]
                + r_idx[None, None, :] * cols_g[:, None, None]
                + c_idx[None, :, None]
            )
            cube_valid = (
                (c_idx[None, :, None] < cols_g[:, None, None])
                & (r_idx[None, None, :] < rows_g[:, None, None])
            )
            col_lengths = np.repeat(rows_g, cols_g)
            col_off = np.zeros(col_lengths.size + 1, dtype=np.int64)
            np.cumsum(col_lengths, out=col_off[1:])
            col_words = np.maximum(1, -(-col_tot // rows_g[:, None]))[valid_col]
            col_batch = GroupBatch(
                machine, batch_members[cube[cube_valid]], col_off
            )
            col_batch.charge_collective(col_words, rounds_factors=col_lengths)

            merge_szs = (row_tot[:, :, None] + col_tot[:, None, :])[
                valid_row[:, :, None] & valid_col[:, None, :]
            ]
            machine.advance_many(
                grid_members,
                map_by_unique(merge_szs, lambda m: spec.local_merge_time(int(m), 2)),
            )
            col_batch.charge_collective(col_tot[valid_col])

        # Sample-sort data: shared segmented argsort + splitter pick; only
        # islands that actually have splitters charge the broadcast.
        spl_values, spl_off = _segmented_sample_splitters(
            samples_b, isl_sample_tot, r_act, sampling
        )
        spl_sizes = np.diff(spl_off)
        bcast_idx = np.flatnonzero(spl_sizes > 0)
        if bcast_idx.size:
            islands.select(bcast_idx).charge_collective(spl_sizes[bcast_idx])
    return spl_values, spl_off


def _batched_centralized_splitters(
    comm,
    islands: GroupBatch,
    samples_b: DistArray,
    r_act: np.ndarray,
    sampling: SamplingParams,
) -> tuple:
    """Lockstep port of :func:`_centralized_splitters` for a level batch.

    Gather (bottlenecked by the largest per-PE contribution), root-local
    sort, equidistant splitter pick and broadcast — each charged per island
    through the :class:`GroupBatch`.
    """
    machine = islands.machine
    spec = machine.spec
    act_off = islands.offsets
    s_sizes = samples_b.sizes()
    with comm.phase(PHASE_SPLITTER_SELECTION):
        words_each = np.maximum(
            1, np.maximum.reduceat(s_sizes, act_off[:-1])
        )
        islands.charge_collective(words_each, rounds_factors=islands.sizes)

        isl_tot = np.add.reduceat(s_sizes, act_off[:-1])
        machine.advance_many(
            islands.members[act_off[:-1]],
            map_by_unique(isl_tot, lambda t: spec.local_sort_time(int(t))),
        )
        spl_values, spl_off = _segmented_sample_splitters(
            samples_b, isl_tot, r_act, sampling
        )
        # The centralized scheme broadcasts from every island's root, even
        # an empty splitter set (words = 0 still costs the latency term).
        islands.charge_collective(np.diff(spl_off))
    return spl_values, spl_off


def _ams_level_batched(
    comm,
    dist: DistArray,
    isl_offsets: np.ndarray,
    config: AMSConfig,
    level: int,
    plan: List[int],
    n_total: int,
) -> tuple:
    """Run one AMS-sort recursion level for *all* islands in lockstep.

    ``isl_offsets`` delimits the current recursion islands (groups of the
    previous level) as contiguous rank ranges of ``comm``; every island of
    size > 1 executes this level's four phases as part of one whole-machine
    batch of segmented operations, charged per ``(group, PE)`` through
    :class:`GroupBatch`.  Singleton islands are already at their base case
    and pass through untouched (their final local sort is charged by the
    caller, which is where the reference recursion charges it too — the
    deferral is invisible to per-PE clocks because base cases never
    synchronise with anyone).

    Returns ``(new_dist, new_isl_offsets)`` for the next level.
    """
    machine = comm.machine
    spec = comm.spec
    sizes_isl = np.diff(isl_offsets)
    num_isl = int(sizes_isl.size)
    active = np.flatnonzero(sizes_isl > 1)
    n_act = int(active.size)
    act_sizes = sizes_isl[active]
    act_off = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(act_sizes, out=act_off[1:])
    q = int(act_off[-1])
    batch_ranks = concat_ranges(isl_offsets[active], act_sizes)
    batch_members = comm.members[batch_ranks]
    islands = GroupBatch(machine, batch_members, act_off)
    pe_isl = np.repeat(np.arange(n_act, dtype=np.int64), act_sizes)
    dist_b = dist if n_act == num_isl else dist.take_segments(batch_ranks)
    data_sizes = dist_b.sizes()

    # Group counts, sampling counts and sub-group layouts depend on the
    # island only through its size; evaluate once per distinct size.
    uniq_sz, inv_sz = np.unique(act_sizes, return_inverse=True)
    r_uniq = np.array(
        [_level_r(plan, level, int(pk)) for pk in uniq_sz], dtype=np.int64
    )
    r_act = r_uniq[inv_sz]
    sampling = config.sampling_for(max(n_total, 2))

    # ------------------------------------------------------------------
    # 1. Splitter selection (segmented sampling + batched sample sort)
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        per_pe_counts = np.repeat(
            np.array(
                [
                    sampling.samples_per_pe(int(pk), int(rk))
                    for pk, rk in zip(uniq_sz, r_uniq)
                ],
                dtype=np.int64,
            )[inv_sz],
            act_sizes,
        )
        samples_b = draw_samples_flat(
            dist_b, per_pe_counts, machine.sample_rng, level, batch_members
        )
    if config.use_fast_sample_sort:
        spl_values, spl_off = _batched_grid_splitters(
            comm, islands, samples_b, act_sizes, r_act, sampling
        )
    else:
        spl_values, spl_off = _batched_centralized_splitters(
            comm, islands, samples_b, r_act, sampling
        )

    # ------------------------------------------------------------------
    # 2. Bucket processing: one segmented search per element, per-island
    #    grouping, one stable (PE, group) reorder for the whole batch
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        spl_sizes = np.diff(spl_off)
        nb_per_isl = np.where(spl_sizes > 0, spl_sizes + 1, 1)
        elem_off = dist_b.offsets[act_off]  # element range per island
        bucket_of = blockwise_searchsorted(
            spl_values, spl_off, dist_b.values, elem_off, side="right"
        )
        nb_off = np.zeros(n_act + 1, dtype=np.int64)
        np.cumsum(nb_per_isl, out=nb_off[1:])
        # Global bucket sizes per island: the per-(group, PE) reduction.
        # The bucket indices come straight out of the bounded searchsorted,
        # so the ragged reduction can skip its range validation passes.
        ws = get_arena()
        if n_act == 1:
            isl_bucket_key = bucket_of
            gbs_flat = bincount(
                bucket_of, minlength=int(nb_off[-1])
            ).astype(np.int64, copy=False)
        else:
            isl_bucket_key = repeat_add(
                nb_off[:-1], np.diff(elem_off), bucket_of, ws
            )
            gbs_flat = bincount(
                isl_bucket_key, minlength=int(nb_off[-1])
            ).astype(np.int64, copy=False)
        islands.charge_collective(nb_per_isl)

        # Bucket -> destination group per island through one ragged lookup
        # table (buckets are few, elements are not).  All islands' Appendix C
        # bound searches advance in lockstep; a handful of islands is faster
        # through the scalar per-island search (the lockstep probe machinery
        # has a fixed per-step cost that only pays off across many islands).
        if n_act >= 8:
            lut = optimal_bucket_grouping_batched(
                gbs_flat, nb_off, r_act
            ).bucket_group_lut()
        else:
            lut = np.concatenate([
                np.repeat(
                    np.arange(int(r_act[k]), dtype=np.int64),
                    np.diff(optimal_bucket_grouping(
                        gbs_flat[nb_off[k]:nb_off[k + 1]], int(r_act[k]),
                        method="accelerated",
                    ).boundaries),
                )
                for k in range(n_act)
            ])
        islands.charge_collective(np.ones(n_act, dtype=np.int64))
        # Group indices fit 32 bits at any simulable scale; the narrow
        # dtype halves the bandwidth of every element-scale key pass below.
        lut = lut.astype(np.int32, copy=False)
        dest_local = ws.empty(np.asarray(isl_bucket_key).size, np.int32)
        np.take(lut, isl_bucket_key, out=dest_local)
        ws.recycle(isl_bucket_key)  # no-op when it aliases bucket_of

        r_per_pe = r_act[pe_isl]
        total_pieces = int(r_per_pe.sum())
        r_max = int(r_act.max(initial=1))
        seg_sizes_b = np.diff(dist_b.offsets)
        pe_piece_base = np.cumsum(r_per_pe) - r_per_pe
        narrow = total_pieces < 2 ** 31 and int(isl_offsets[-1]) < 2 ** 31
        if narrow:
            pe_piece_base = pe_piece_base.astype(np.int32)
        piece_key = repeat_add(pe_piece_base, seg_sizes_b, dest_local, ws)
        # Piece reorder for the whole batch at once.  Three regimes:
        # * final level (every destination group a singleton, non-advanced
        #   delivery): no reorder at all — the delivery consumes the
        #   elements in place through its fused element plane, keyed by
        #   each element's destination PE;
        # * deterministic delivery at intermediate levels: ONE stable
        #   16-bit radix argsort by global (island, group) key builds the
        #   *column-major* piece plane — within a group the elements stay
        #   in (PE, original) order because the input is PE-major, so each
        #   piece is one contiguous run and the delivery addresses it
        #   through column-major piece starts.  (Valid because the
        #   deterministic assignment sends at most one message per
        #   (source, destination) pair, making the row/column layouts
        #   indistinguishable downstream.)
        # * otherwise: the classic (PE, group) row-major reorder — a stable
        #   two-key radix argsort (two 16-bit counting passes).
        fuse_delivery = (
            config.delivery != "advanced"
            and bool(np.all(r_act == act_sizes))
        )
        piece_layout = "rowmaj"
        isl_counts = np.diff(elem_off)
        if fuse_delivery:
            piece_values = None
            act_base = act_off[:-1].astype(np.int32) if narrow else act_off[:-1]
            elem_dest = repeat_add(act_base, isl_counts, dest_local, ws)
        else:
            elem_dest = None
            n_groups_total = int(r_act.sum())
            if (
                config.delivery == "deterministic"
                and n_groups_total <= 2 ** 16
                and n_total < 2 ** 45
                and bool(np.all(r_act < act_sizes))
            ):
                gbase = np.cumsum(r_act) - r_act
                if narrow:
                    gbase = gbase.astype(np.int32)
                gkey = dest_local if n_act == 1 else repeat_add(
                    gbase, isl_counts, dest_local, ws
                )
                order = stable_key_argsort(gkey, n_groups_total)
                ws.recycle(gkey)  # no-op when it aliases dest_local
                piece_layout = "colmaj"
            else:
                order = stable_two_key_argsort(
                    dist_b.segment_ids(), dest_local, q, r_max
                )
            piece_values = gather(dist_b.values, order)
        piece_len = bincount(piece_key, minlength=total_pieces).astype(
            np.int64, copy=False
        )
        ws.recycle(piece_key, dest_local)
        machine.advance_many(
            batch_members,
            map_by_unique2(
                data_sizes,
                np.maximum(2, nb_per_isl[pe_isl]),
                lambda m, nb: spec.local_partition_time(m, nb),
            ),
        )

    # ------------------------------------------------------------------
    # 3. Data delivery for every island at once
    # ------------------------------------------------------------------
    sub_cache = {
        int(pk): _split_sizes(int(pk), int(rk))
        for pk, rk in zip(uniq_sz, r_uniq)
    }
    sub_sizes = [sub_cache[int(pk)] for pk in act_sizes]
    piece_base = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(act_sizes * r_act, out=piece_base[1:])
    piece_mats = [
        piece_len[piece_base[k]:piece_base[k + 1]].reshape(
            int(act_sizes[k]), int(r_act[k])
        )
        for k in range(n_act)
    ]
    delivery = deliver_to_groups_batched(
        islands,
        sub_sizes,
        piece_values,
        piece_mats,
        method=config.delivery,
        seed=machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
        elem_plane=(dist_b.values, elem_dest) if fuse_delivery else None,
        piece_layout=piece_layout,
    )
    received = delivery.received
    if fuse_delivery:
        get_arena().recycle(elem_dest)

    # ------------------------------------------------------------------
    # 4. Next-level island layout (+ pass-through of singleton islands)
    # ------------------------------------------------------------------
    return _level_result(
        dist, isl_offsets, active, batch_ranks, received, sub_sizes
    )


def _ams_sort_flat(
    comm,
    dist: DistArray,
    config: AMSConfig,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> DistArray:
    """AMS-sort on the flat engine: the whole recursion in lockstep.

    Every recursion level executes the *entire* batch of sibling sub-groups
    (islands) as whole-machine vectorised phases — see
    :func:`_ams_level_batched` — until all islands are single PEs, whose
    base-case sorts collapse into one final segmented sort.  All modelled
    charges are issued per PE in the same order and with the same arguments
    as the depth-first per-PE reference, which only the batching across
    *disjoint* PE sets makes possible.
    """
    p = comm.size

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(dist.values, kind="stable")
            comm.charge_sort([out.size])
        return DistArray(out, dist.offsets - dist.offsets[0])

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = dist.total

    isl_offsets = np.array([0, p], dtype=np.int64)
    cur_level = level
    while int(np.diff(isl_offsets).max(initial=0)) > 1:
        dist, isl_offsets = _ams_level_batched(
            comm, dist, isl_offsets, config, cur_level, _plan, _n_total
        )
        cur_level += 1

    # All islands are singletons: the recursive base cases collapse into
    # one segmented sort charged with every PE's own local-sort time.
    with comm.phase(PHASE_LOCAL_SORT):
        out = dist.sort_segments()
        comm.charge_sort(dist.sizes())
    return out


def ams_sort(
    comm,
    local_data: Union[DistArray, Sequence[np.ndarray]],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> Union[DistArray, List[np.ndarray]]:
    """Sort a distributed array with AMS-sort (flat engine).

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        The distributed input: either a :class:`~repro.dist.array.DistArray`
        or the classic per-PE list (one array per member PE), which is
        converted with the cheap ``DistArray.from_list`` / ``to_list``
        round-trip at this boundary.
    config:
        :class:`AMSConfig`; defaults to two levels with the paper's sampling
        parameters.
    level:
        Internal recursion level (leave at 0).

    Returns
    -------
    DistArray or list of numpy.ndarray
        The sorted output in the same representation as the input.
    """
    if config is None:
        config = AMSConfig()
    if isinstance(local_data, DistArray):
        if local_data.p != comm.size:
            raise ValueError("need one local segment per member PE")
        return _ams_sort_flat(
            comm, local_data, config, level=level, _plan=_plan, _n_total=_n_total
        )
    if len(local_data) != comm.size:
        raise ValueError("need one local array per member PE")
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    out = _ams_sort_flat(
        comm, dist, config, level=level, _plan=_plan, _n_total=_n_total
    )
    return out.to_list()
