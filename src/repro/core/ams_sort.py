"""Adaptive Multi-level Sample sort (AMS-sort), Section 6 of the paper.

One level of AMS-sort on a group of ``p`` PEs that is to be split into ``r``
sub-groups:

1. **Splitter selection** — every PE contributes a random sample
   (oversampling factor ``a``, overpartitioning factor ``b``); the sample is
   sorted with the fast work-inefficient grid sort (Section 4.2) and
   ``b*r - 1`` splitters of equidistant ranks are broadcast to all PEs.
2. **Bucket processing** — every PE partitions its local data into the
   ``b*r`` buckets (super scalar sample sort style partitioning); a global
   all-reduce yields the global bucket sizes, and the optimal scanning
   algorithm (Lemma 1 / Appendix C) assigns consecutive bucket ranges to the
   ``r`` PE groups such that the maximum group load is minimised.
3. **Data delivery** — the per-group pieces are delivered with one of the
   algorithms of Section 4.3 / Appendix A so that all PEs of a group receive
   the same amount of data up to rounding and the number of message
   startups per PE stays ``O(r)``.
4. **Recursion** — each group recursively sorts its data; on a single PE the
   recursion bottoms out with a local sort.

The result is a globally sorted distributed array with at most a
``(1 + eps)`` output imbalance (Theorem 3).

Two execution engines produce the same algorithm:

* :func:`ams_sort` — the *flat* engine: the distributed array lives in a
  :class:`~repro.dist.array.DistArray` (one contiguous buffer + CSR
  offsets) and every phase is a handful of vectorised numpy calls over the
  whole machine, which is what makes ``p = 4096`` runs feasible.
* :func:`ams_sort_reference` — the original per-PE implementation
  (``List[np.ndarray]`` + ``for i in range(p)`` loops), kept as the
  executable specification.  The flat engine is verified to reproduce its
  outputs, clocks and phase breakdowns byte for byte.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.blocks.delivery import deliver_to_groups, deliver_to_groups_batched
from repro.blocks.fast_sort import (
    grid_shape,
    select_splitters_by_rank,
)
from repro.blocks.grouping import optimal_bucket_grouping
from repro.blocks.sampling import (
    SamplingParams,
    draw_samples,
    draw_samples_flat,
    splitter_ranks,
)
from repro.core.config import AMSConfig
from repro.dist.array import DistArray
from repro.dist.flatops import (
    blockwise_searchsorted,
    concat_ranges,
    map_by_unique,
    map_by_unique2,
    segmented_sort_values,
    stable_two_key_argsort,
)
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.partition import bucket_indices
from repro.sim.groups import GroupBatch


def _centralized_splitters(comm, samples: List[np.ndarray], num_splitters: int) -> np.ndarray:
    """Centralized splitter selection (gather + sort + broadcast).

    This is the scheme of the earlier multi-level sample sort of
    Gerbessiotis and Valiant which AMS-sort replaces with the fast parallel
    sample sort; kept as an option for comparison experiments.

    The modelled gather cost is driven by the *largest* per-PE contribution:
    the gather's bottleneck is the PE that injects the most sample words,
    not the average one (with unequal local sizes the mean underestimates
    the critical path).
    """
    with comm.phase(PHASE_SPLITTER_SELECTION):
        words_each = max(1, max((int(np.asarray(s).size) for s in samples), default=1))
        gathered = comm.gather(samples, root=0, words_each=words_each)
        sample = np.concatenate([np.asarray(s) for s in gathered if np.asarray(s).size > 0]) \
            if any(np.asarray(s).size for s in gathered) else np.empty(0)
        sample = np.sort(sample, kind="stable")
        comm.charge_local(0, comm.spec.local_sort_time(int(sample.size)))
        if num_splitters <= 0 or sample.size == 0:
            splitters = sample[:0]
        else:
            ranks = splitter_ranks(int(sample.size), num_splitters)
            splitters = sample[ranks]
        comm.bcast(splitters, root=0, words=int(splitters.size))
    return splitters


def _partition_into_group_pieces(
    comm,
    local_data: List[np.ndarray],
    splitters: np.ndarray,
    boundaries: np.ndarray,
    r: int,
) -> List[List[np.ndarray]]:
    """Partition each PE's data into ``r`` pieces according to bucket boundaries.

    ``boundaries`` delimits which buckets belong to which group; elements are
    routed by a single ``searchsorted`` against the splitters, then gathered
    per group.  The modelled cost of the partition is charged here.
    """
    p = comm.size
    num_buckets = int(splitters.size) + 1
    pieces: List[List[np.ndarray]] = []
    partition_sizes = []
    for i in range(p):
        data = np.asarray(local_data[i])
        partition_sizes.append(int(data.size))
        if splitters.size == 0:
            bucket_of = np.zeros(data.size, dtype=np.int64)
        else:
            bucket_of = bucket_indices(data, splitters)
        # Map bucket index -> group index using the grouping boundaries.
        group_of = np.searchsorted(boundaries[1:-1], bucket_of, side="right") \
            if boundaries.size > 2 else np.zeros(data.size, dtype=np.int64)
        pe_pieces = []
        for g in range(r):
            pe_pieces.append(data[group_of == g])
        pieces.append(pe_pieces)
    comm.charge_partition(partition_sizes, max(2, num_buckets))
    return pieces


def ams_sort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> List[np.ndarray]:
    """Per-PE reference implementation of AMS-sort (the seed engine).

    Semantically identical to :func:`ams_sort` but materialises every PE's
    data as its own array and loops over PEs in Python; kept as the
    executable specification the flat engine is verified against, and for
    small-``p`` debugging.
    """
    if config is None:
        config = AMSConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(local_data[0], kind="stable")
            comm.charge_sort([out.size])
        return [out]

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = int(sum(d.size for d in local_data))

    # Number of groups for this level (never more than the PEs available).
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p)) if p > 1 else 1

    sampling = config.sampling_for(max(_n_total, 2))
    num_buckets = sampling.num_buckets(r)
    num_splitters = sampling.num_splitters(r)

    # ------------------------------------------------------------------
    # 1. Splitter selection
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        samples = draw_samples(
            local_data, sampling, p, r,
            comm.machine.sample_rng, level, comm.members,
        )
    if config.use_fast_sample_sort:
        splitters = select_splitters_by_rank(
            comm, samples, num_splitters, phase=PHASE_SPLITTER_SELECTION
        )
    else:
        splitters = _centralized_splitters(comm, samples, num_splitters)

    # ------------------------------------------------------------------
    # 2. Bucket processing: partition, global bucket sizes, bucket grouping
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        local_bucket_sizes = []
        for i in range(p):
            data = local_data[i]
            if splitters.size == 0:
                counts = np.array([data.size], dtype=np.int64)
            else:
                idx = bucket_indices(data, splitters)
                counts = np.bincount(idx, minlength=splitters.size + 1).astype(np.int64)
            local_bucket_sizes.append(counts)
        global_bucket_sizes = comm.allreduce_vec(local_bucket_sizes)
        grouping = optimal_bucket_grouping(global_bucket_sizes, r, method="accelerated")
        # The parallel bound search of Appendix C costs O(br + alpha log p);
        # charge one extra small collective per search round.
        comm.allreduce_scalar([float(grouping.bound)] * p, op=np.max)
        pieces = _partition_into_group_pieces(
            comm, list(local_data), splitters, grouping.boundaries, r
        )

    # ------------------------------------------------------------------
    # 3. Data delivery
    # ------------------------------------------------------------------
    groups = comm.split(r)
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # 4. Recursion within each group
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        group_rank_offset = comm.local_rank_of(int(group.members[0]))
        group_local = [
            delivery.received_concat(group_rank_offset + j) for j in range(group.size)
        ]
        sorted_group = ams_sort_reference(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _n_total=_n_total,
        )
        for j in range(group.size):
            output[group_rank_offset + j] = sorted_group[j]
    return output


def _level_r(plan: List[int], level: int, group_size: int) -> int:
    """Group count a recursion level uses for a group of ``group_size`` PEs."""
    if group_size == 1:
        return 1
    if level < len(plan):
        r = min(int(plan[level]), group_size)
    else:
        r = group_size
    return max(2, min(r, group_size))


def _split_sizes(p: int, r: int) -> np.ndarray:
    """Sub-group sizes of ``Comm.split``: near-equal, first groups larger."""
    base, extra = divmod(int(p), int(r))
    return np.array(
        [base + (1 if g < extra else 0) for g in range(int(r))], dtype=np.int64
    )


def _level_result(
    dist: DistArray,
    isl_offsets: np.ndarray,
    active: np.ndarray,
    batch_ranks: np.ndarray,
    received: DistArray,
    sub_sizes: List[np.ndarray],
) -> tuple:
    """Assemble one batched level's result and the next island layout.

    Scatters the batch PEs' received segments back into comm order (passive
    singleton islands keep their data untouched) and splits every active
    island's rank range at its sub-group boundaries.  Shared by the AMS and
    RLM level executors — their reassembly is identical.

    Returns ``(new_dist, next_isl_offsets)``.
    """
    sizes_isl = np.diff(isl_offsets)
    num_isl = int(sizes_isl.size)
    if int(active.size) == num_isl:
        new_dist = received
    else:
        new_sizes = np.diff(dist.offsets).copy()
        new_sizes[batch_ranks] = received.sizes()
        new_offsets = np.zeros(new_sizes.size + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=new_offsets[1:])
        new_values = np.empty(int(new_offsets[-1]), dtype=received.dtype)
        new_values[
            concat_ranges(new_offsets[batch_ranks], received.sizes())
        ] = received.values
        passive = np.setdiff1d(
            np.arange(num_isl, dtype=np.int64), active, assume_unique=True
        )
        passive_ranks = isl_offsets[passive]
        old_sizes = np.diff(dist.offsets)
        new_values[
            concat_ranges(new_offsets[passive_ranks], old_sizes[passive_ranks])
        ] = dist.values[
            concat_ranges(dist.offsets[passive_ranks], old_sizes[passive_ranks])
        ]
        new_dist = DistArray(new_values, new_offsets)

    next_parts: List[np.ndarray] = []
    a = 0
    for g in range(num_isl):
        start = int(isl_offsets[g])
        if sizes_isl[g] == 1:
            next_parts.append(np.array([start], dtype=np.int64))
        else:
            gs = sub_sizes[a]
            next_parts.append(start + np.cumsum(gs) - gs)
            a += 1
    next_offsets = np.concatenate(
        next_parts + [np.array([int(isl_offsets[-1])], dtype=np.int64)]
    )
    return new_dist, next_offsets


def _segmented_sample_splitters(
    samples_b: DistArray,
    isl_sample_tot: np.ndarray,
    r_act: np.ndarray,
    sampling: SamplingParams,
) -> List[np.ndarray]:
    """Sort the batch sample per island and pick equidistant splitters.

    One segmented (per-island) value sort over the whole batch, then per
    island the :func:`splitter_ranks` pick; islands with no sample or no
    splitters get an empty array.  Charge-free — the grid and centralized
    splitter paths share this data plane and differ only in what they
    charge.
    """
    n_act = int(isl_sample_tot.size)
    sample_off = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(isl_sample_tot, out=sample_off[1:])
    sorted_samples = segmented_sort_values(samples_b.values, sample_off)
    splitters_per_isl: List[np.ndarray] = []
    for k in range(n_act):
        ns_k = sampling.num_splitters(int(r_act[k]))
        tot = int(isl_sample_tot[k])
        if ns_k <= 0 or tot == 0:
            splitters_per_isl.append(sorted_samples[:0])
        else:
            ranks = splitter_ranks(tot, ns_k)
            splitters_per_isl.append(sorted_samples[int(sample_off[k]) + ranks])
    return splitters_per_isl


def _batched_grid_splitters(
    comm,
    islands: GroupBatch,
    samples_b: DistArray,
    act_sizes: np.ndarray,
    r_act: np.ndarray,
    sampling: SamplingParams,
) -> List[np.ndarray]:
    """Fast work-inefficient sample sort + splitter pick for a level batch.

    Lockstep port of :func:`repro.blocks.fast_sort.select_splitters_by_rank_flat`
    applied to every island at once: the sample-sort *data* result of island
    ``k`` is its samples' global stable order (one segmented argsort over the
    whole batch), while the modelled grid costs — local sample sorts, the
    hand-off exchanges of PEs outside a non-square grid, row/column gossip,
    ranking merges, column rank reductions, and the final splitter broadcast
    — are charged step for step like the per-island reference.
    """
    machine = islands.machine
    spec = machine.spec
    batch_members = islands.members
    act_off = islands.offsets
    n_act = islands.num_groups
    q = int(batch_members.size)
    pe_isl = np.repeat(np.arange(n_act, dtype=np.int64), act_sizes)

    with comm.phase(PHASE_SPLITTER_SELECTION):
        s_sizes = samples_b.sizes()
        machine.advance_many(
            batch_members,
            map_by_unique(s_sizes, lambda m: spec.local_sort_time(int(m))),
        )
        isl_sample_tot = np.add.reduceat(s_sizes, act_off[:-1])
        grid_active = np.flatnonzero(isl_sample_tot > 0)
        shapes = [grid_shape(int(pk)) for pk in act_sizes]

        # PEs outside a non-square grid hand their sample to a grid PE;
        # the reference ships values and ids in two cost-only exchanges.
        handoff = np.array(
            [k for k in grid_active if shapes[k].size < int(act_sizes[k])],
            dtype=np.int64,
        )
        grid_sizes = s_sizes.copy()
        if handoff.size:
            words_s = np.zeros(q, dtype=np.int64)
            words_r = np.zeros(q, dtype=np.int64)
            msg_s = np.zeros(q, dtype=np.int64)
            msg_r = np.zeros(q, dtype=np.int64)
            ho_src: List[np.ndarray] = []
            ho_dest: List[np.ndarray] = []
            for k in handoff:
                k = int(k)
                base = int(act_off[k])
                gp = shapes[k].size
                outside = np.arange(base + gp, base + int(act_sizes[k]), dtype=np.int64)
                dests = base + (np.arange(gp, int(act_sizes[k]), dtype=np.int64) % gp)
                words_s[outside] = s_sizes[outside]
                np.add.at(words_r, dests, s_sizes[outside])
                nonempty = s_sizes[outside] > 0
                msg_s[outside[nonempty]] = 1
                np.add.at(msg_r, dests[nonempty], 1)
                np.add.at(grid_sizes, dests, s_sizes[outside])
                ho_src.append(outside[nonempty])
                ho_dest.append(dests[nonempty])
            sel = np.isin(pe_isl, handoff)
            sub = islands.select(handoff)
            src_all = np.concatenate(ho_src)
            dest_all = np.concatenate(ho_dest)
            for _ in range(2):  # sample values, then their ids
                if src_all.size:
                    machine.counters.record_messages(
                        batch_members[src_all], batch_members[dest_all],
                        s_sizes[src_all],
                    )
                sub.charge_exchange(
                    words_s[sel], words_r[sel], msg_s[sel], msg_r[sel],
                    charge_copy=False,
                )

        if grid_active.size:
            # Row/column gossip: rows are contiguous PE runs inside the grid.
            row_members: List[np.ndarray] = []
            row_sizes: List[int] = []
            row_words: List[int] = []
            col_members: List[np.ndarray] = []
            col_sizes: List[int] = []
            col_words: List[int] = []
            merge_pes: List[np.ndarray] = []
            merge_szs: List[np.ndarray] = []
            for k in grid_active:
                k = int(k)
                rows, cols = shapes[k].rows, shapes[k].cols
                base = int(act_off[k])
                grid = np.arange(base, base + rows * cols, dtype=np.int64)
                grid2d = grid.reshape(rows, cols)
                sz2d = grid_sizes[grid2d]
                row_tot = sz2d.sum(axis=1)
                col_tot = sz2d.sum(axis=0)
                for ri in range(rows):
                    row_members.append(batch_members[grid2d[ri]])
                    row_sizes.append(cols)
                    row_words.append(
                        max(1, int(math.ceil(int(row_tot[ri]) / max(cols, 1))))
                    )
                for cj in range(cols):
                    col_members.append(batch_members[grid2d[:, cj]])
                    col_sizes.append(rows)
                    col_words.append(
                        max(1, int(math.ceil(int(col_tot[cj]) / max(rows, 1))))
                    )
                merge_pes.append(batch_members[grid])
                merge_szs.append((row_tot[:, None] + col_tot[None, :]).reshape(-1))

            def _batch(members_list, sizes_list):
                offs = np.zeros(len(sizes_list) + 1, dtype=np.int64)
                np.cumsum(np.asarray(sizes_list, dtype=np.int64), out=offs[1:])
                return GroupBatch(machine, np.concatenate(members_list), offs)

            row_batch = _batch(row_members, row_sizes)
            row_batch.charge_collective(row_words, rounds_factors=row_sizes)
            col_batch = _batch(col_members, col_sizes)
            col_batch.charge_collective(col_words, rounds_factors=col_sizes)
            machine.advance_many(
                np.concatenate(merge_pes),
                map_by_unique(
                    np.concatenate(merge_szs),
                    lambda m: spec.local_merge_time(int(m), 2),
                ),
            )
            col_red_words = []
            for k in grid_active:
                k = int(k)
                rows, cols = shapes[k].rows, shapes[k].cols
                base = int(act_off[k])
                sz2d = grid_sizes[base:base + rows * cols].reshape(rows, cols)
                col_red_words.extend(int(c) for c in sz2d.sum(axis=0))
            col_batch.charge_collective(col_red_words)

        # Sample-sort data: shared segmented argsort + splitter pick; only
        # islands that actually have splitters charge the broadcast.
        splitters_per_isl = _segmented_sample_splitters(
            samples_b, isl_sample_tot, r_act, sampling
        )
        bcast_idx = [
            k for k, spl in enumerate(splitters_per_isl) if spl.size
        ]
        if bcast_idx:
            islands.select(np.asarray(bcast_idx)).charge_collective(
                [int(splitters_per_isl[k].size) for k in bcast_idx]
            )
    return splitters_per_isl


def _batched_centralized_splitters(
    comm,
    islands: GroupBatch,
    samples_b: DistArray,
    r_act: np.ndarray,
    sampling: SamplingParams,
) -> List[np.ndarray]:
    """Lockstep port of :func:`_centralized_splitters` for a level batch.

    Gather (bottlenecked by the largest per-PE contribution), root-local
    sort, equidistant splitter pick and broadcast — each charged per island
    through the :class:`GroupBatch`.
    """
    machine = islands.machine
    spec = machine.spec
    act_off = islands.offsets
    n_act = islands.num_groups
    s_sizes = samples_b.sizes()
    with comm.phase(PHASE_SPLITTER_SELECTION):
        words_each = [
            max(1, int(s_sizes[act_off[k]:act_off[k + 1]].max(initial=1)))
            for k in range(n_act)
        ]
        islands.charge_collective(words_each, rounds_factors=islands.sizes)

        isl_tot = np.add.reduceat(s_sizes, act_off[:-1])
        machine.advance_many(
            islands.members[act_off[:-1]],
            [spec.local_sort_time(int(t)) for t in isl_tot],
        )
        splitters_per_isl = _segmented_sample_splitters(
            samples_b, isl_tot, r_act, sampling
        )
        # The centralized scheme broadcasts from every island's root, even
        # an empty splitter set (words = 0 still costs the latency term).
        islands.charge_collective(
            [int(spl.size) for spl in splitters_per_isl]
        )
    return splitters_per_isl


def _ams_level_batched(
    comm,
    dist: DistArray,
    isl_offsets: np.ndarray,
    config: AMSConfig,
    level: int,
    plan: List[int],
    n_total: int,
) -> tuple:
    """Run one AMS-sort recursion level for *all* islands in lockstep.

    ``isl_offsets`` delimits the current recursion islands (groups of the
    previous level) as contiguous rank ranges of ``comm``; every island of
    size > 1 executes this level's four phases as part of one whole-machine
    batch of segmented operations, charged per ``(group, PE)`` through
    :class:`GroupBatch`.  Singleton islands are already at their base case
    and pass through untouched (their final local sort is charged by the
    caller, which is where the reference recursion charges it too — the
    deferral is invisible to per-PE clocks because base cases never
    synchronise with anyone).

    Returns ``(new_dist, new_isl_offsets)`` for the next level.
    """
    machine = comm.machine
    spec = comm.spec
    sizes_isl = np.diff(isl_offsets)
    num_isl = int(sizes_isl.size)
    active = np.flatnonzero(sizes_isl > 1)
    n_act = int(active.size)
    act_sizes = sizes_isl[active]
    act_off = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(act_sizes, out=act_off[1:])
    q = int(act_off[-1])
    batch_ranks = concat_ranges(isl_offsets[active], act_sizes)
    batch_members = comm.members[batch_ranks]
    islands = GroupBatch(machine, batch_members, act_off)
    pe_isl = np.repeat(np.arange(n_act, dtype=np.int64), act_sizes)
    dist_b = dist if n_act == num_isl else dist.take_segments(batch_ranks)
    data_sizes = dist_b.sizes()

    r_act = np.array(
        [_level_r(plan, level, int(pk)) for pk in act_sizes], dtype=np.int64
    )
    sampling = config.sampling_for(max(n_total, 2))

    # ------------------------------------------------------------------
    # 1. Splitter selection (segmented sampling + batched sample sort)
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        per_pe_counts = np.repeat(
            np.array(
                [
                    sampling.samples_per_pe(int(pk), int(rk))
                    for pk, rk in zip(act_sizes, r_act)
                ],
                dtype=np.int64,
            ),
            act_sizes,
        )
        samples_b = draw_samples_flat(
            dist_b, per_pe_counts, machine.sample_rng, level, batch_members
        )
    if config.use_fast_sample_sort:
        splitters_per_isl = _batched_grid_splitters(
            comm, islands, samples_b, act_sizes, r_act, sampling
        )
    else:
        splitters_per_isl = _batched_centralized_splitters(
            comm, islands, samples_b, r_act, sampling
        )

    # ------------------------------------------------------------------
    # 2. Bucket processing: one segmented search per element, per-island
    #    grouping, one stable (PE, group) reorder for the whole batch
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        spl_sizes = np.array(
            [int(s.size) for s in splitters_per_isl], dtype=np.int64
        )
        nb_per_isl = np.where(spl_sizes > 0, spl_sizes + 1, 1)
        spl_off = np.zeros(n_act + 1, dtype=np.int64)
        np.cumsum(spl_sizes, out=spl_off[1:])
        spl_values = (
            np.concatenate([s for s in splitters_per_isl if s.size])
            if spl_off[-1] else np.empty(0, dtype=dist_b.dtype)
        )
        elem_off = dist_b.offsets[act_off]  # element range per island
        elem_pe = dist_b.segment_ids()
        bucket_of = blockwise_searchsorted(
            spl_values, spl_off, dist_b.values, elem_off, side="right"
        )
        nb_off = np.zeros(n_act + 1, dtype=np.int64)
        np.cumsum(nb_per_isl, out=nb_off[1:])
        # Global bucket sizes per island: the per-(group, PE) reduction.
        # The bucket indices come straight out of the bounded searchsorted,
        # so the ragged reduction can skip its range validation passes.
        if n_act == 1:
            isl_bucket_key = bucket_of
            gbs_flat = np.bincount(
                bucket_of, minlength=int(nb_off[-1])
            ).astype(np.int64, copy=False)
        else:
            isl_bucket_key = (
                np.repeat(nb_off[:-1], np.diff(elem_off)) + bucket_of
            )
            gbs_flat = np.bincount(
                isl_bucket_key, minlength=int(nb_off[-1])
            ).astype(np.int64, copy=False)
        islands.charge_collective(nb_per_isl)

        # Bucket -> destination group per island through one ragged lookup
        # table (buckets are few, elements are not).
        lut_parts: List[np.ndarray] = []
        for k in range(n_act):
            grouping = optimal_bucket_grouping(
                gbs_flat[nb_off[k]:nb_off[k + 1]], int(r_act[k]),
                method="accelerated",
            )
            lut_parts.append(np.repeat(
                np.arange(int(r_act[k]), dtype=np.int64),
                np.diff(grouping.boundaries),
            ))
        islands.charge_collective(np.ones(n_act, dtype=np.int64))
        lut = np.concatenate(lut_parts)
        dest_local = lut[isl_bucket_key]

        r_per_pe = r_act[pe_isl]
        total_pieces = int(r_per_pe.sum())
        r_max = int(r_act.max(initial=1))
        if int(r_act.min(initial=1)) == r_max:
            # Uniform group count (the overwhelmingly common case): the
            # piece index is pure arithmetic, no per-PE base gather.
            piece_key = elem_pe * np.int64(r_max) + dest_local
        else:
            pe_piece_base = np.cumsum(r_per_pe) - r_per_pe
            piece_key = pe_piece_base[elem_pe] + dest_local
        # Stable (PE, group) reorder for the whole batch at once.  Islands
        # occupy disjoint ascending PE ranges, so one stable two-key radix
        # argsort over (PE, destination group) — two 16-bit counting passes
        # for any p up to 2^16 — equals the per-island reorders with the
        # island element offsets pre-added, eliminating the per-island
        # Python loop the previous engine spent most of its level time in.
        # When every destination group is a singleton (the final level),
        # even that reorder is skipped: the delivery consumes the elements
        # in place through its fused element plane, keyed by each
        # element's destination PE.
        fuse_delivery = (
            config.delivery != "advanced"
            and bool(np.all(r_act == act_sizes))
        )
        if fuse_delivery:
            piece_values = None
            elem_dest = (
                np.repeat(act_off[:-1], np.diff(elem_off)) + dest_local
            )
        else:
            elem_dest = None
            order = stable_two_key_argsort(elem_pe, dest_local, q, r_max)
            piece_values = dist_b.values[order]
        piece_len = np.bincount(piece_key, minlength=total_pieces).astype(
            np.int64, copy=False
        )
        machine.advance_many(
            batch_members,
            map_by_unique2(
                data_sizes,
                np.maximum(2, nb_per_isl[pe_isl]),
                lambda m, nb: spec.local_partition_time(m, nb),
            ),
        )

    # ------------------------------------------------------------------
    # 3. Data delivery for every island at once
    # ------------------------------------------------------------------
    sub_sizes = [
        _split_sizes(int(act_sizes[k]), int(r_act[k])) for k in range(n_act)
    ]
    piece_base = np.zeros(n_act + 1, dtype=np.int64)
    np.cumsum(act_sizes * r_act, out=piece_base[1:])
    piece_mats = [
        piece_len[piece_base[k]:piece_base[k + 1]].reshape(
            int(act_sizes[k]), int(r_act[k])
        )
        for k in range(n_act)
    ]
    delivery = deliver_to_groups_batched(
        islands,
        sub_sizes,
        piece_values,
        piece_mats,
        method=config.delivery,
        seed=machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
        elem_plane=(dist_b.values, elem_dest) if fuse_delivery else None,
    )
    received = delivery.received

    # ------------------------------------------------------------------
    # 4. Next-level island layout (+ pass-through of singleton islands)
    # ------------------------------------------------------------------
    return _level_result(
        dist, isl_offsets, active, batch_ranks, received, sub_sizes
    )


def _ams_sort_flat(
    comm,
    dist: DistArray,
    config: AMSConfig,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> DistArray:
    """AMS-sort on the flat engine: the whole recursion in lockstep.

    Every recursion level executes the *entire* batch of sibling sub-groups
    (islands) as whole-machine vectorised phases — see
    :func:`_ams_level_batched` — until all islands are single PEs, whose
    base-case sorts collapse into one final segmented sort.  All modelled
    charges are issued per PE in the same order and with the same arguments
    as the depth-first per-PE reference, which only the batching across
    *disjoint* PE sets makes possible.
    """
    p = comm.size

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(dist.values, kind="stable")
            comm.charge_sort([out.size])
        return DistArray(out, dist.offsets - dist.offsets[0])

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = dist.total

    isl_offsets = np.array([0, p], dtype=np.int64)
    cur_level = level
    while int(np.diff(isl_offsets).max(initial=0)) > 1:
        dist, isl_offsets = _ams_level_batched(
            comm, dist, isl_offsets, config, cur_level, _plan, _n_total
        )
        cur_level += 1

    # All islands are singletons: the recursive base cases collapse into
    # one segmented sort charged with every PE's own local-sort time.
    with comm.phase(PHASE_LOCAL_SORT):
        out = dist.sort_segments()
        comm.charge_sort(dist.sizes())
    return out


def ams_sort(
    comm,
    local_data: Union[DistArray, Sequence[np.ndarray]],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> Union[DistArray, List[np.ndarray]]:
    """Sort a distributed array with AMS-sort (flat engine).

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        The distributed input: either a :class:`~repro.dist.array.DistArray`
        or the classic per-PE list (one array per member PE), which is
        converted with the cheap ``DistArray.from_list`` / ``to_list``
        round-trip at this boundary.
    config:
        :class:`AMSConfig`; defaults to two levels with the paper's sampling
        parameters.
    level:
        Internal recursion level (leave at 0).

    Returns
    -------
    DistArray or list of numpy.ndarray
        The sorted output in the same representation as the input.
    """
    if config is None:
        config = AMSConfig()
    if isinstance(local_data, DistArray):
        if local_data.p != comm.size:
            raise ValueError("need one local segment per member PE")
        return _ams_sort_flat(
            comm, local_data, config, level=level, _plan=_plan, _n_total=_n_total
        )
    if len(local_data) != comm.size:
        raise ValueError("need one local array per member PE")
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    out = _ams_sort_flat(
        comm, dist, config, level=level, _plan=_plan, _n_total=_n_total
    )
    return out.to_list()
