"""Adaptive Multi-level Sample sort (AMS-sort), Section 6 of the paper.

One level of AMS-sort on a group of ``p`` PEs that is to be split into ``r``
sub-groups:

1. **Splitter selection** — every PE contributes a random sample
   (oversampling factor ``a``, overpartitioning factor ``b``); the sample is
   sorted with the fast work-inefficient grid sort (Section 4.2) and
   ``b*r - 1`` splitters of equidistant ranks are broadcast to all PEs.
2. **Bucket processing** — every PE partitions its local data into the
   ``b*r`` buckets (super scalar sample sort style partitioning); a global
   all-reduce yields the global bucket sizes, and the optimal scanning
   algorithm (Lemma 1 / Appendix C) assigns consecutive bucket ranges to the
   ``r`` PE groups such that the maximum group load is minimised.
3. **Data delivery** — the per-group pieces are delivered with one of the
   algorithms of Section 4.3 / Appendix A so that all PEs of a group receive
   the same amount of data up to rounding and the number of message
   startups per PE stays ``O(r)``.
4. **Recursion** — each group recursively sorts its data; on a single PE the
   recursion bottoms out with a local sort.

The result is a globally sorted distributed array with at most a
``(1 + eps)`` output imbalance (Theorem 3).

Two execution engines produce the same algorithm:

* :func:`ams_sort` — the *flat* engine: the distributed array lives in a
  :class:`~repro.dist.array.DistArray` (one contiguous buffer + CSR
  offsets) and every phase is a handful of vectorised numpy calls over the
  whole machine, which is what makes ``p = 4096`` runs feasible.
* :func:`ams_sort_reference` — the original per-PE implementation
  (``List[np.ndarray]`` + ``for i in range(p)`` loops), kept as the
  executable specification.  The flat engine is verified to reproduce its
  outputs, clocks and phase breakdowns byte for byte.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.blocks.delivery import deliver_to_groups, deliver_to_groups_flat
from repro.blocks.fast_sort import (
    grid_shape,
    select_splitters_by_rank,
    select_splitters_by_rank_flat,
)
from repro.blocks.grouping import bucket_to_group, optimal_bucket_grouping
from repro.blocks.sampling import (
    SamplingParams,
    draw_local_sample,
    draw_samples_flat,
    splitter_ranks,
)
from repro.core.config import AMSConfig
from repro.dist.array import DistArray
from repro.dist.flatops import concat_ranges, stable_two_key_argsort
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.partition import bucket_indices
from repro.sim.groups import GroupBatch


def _centralized_splitters(comm, samples: List[np.ndarray], num_splitters: int) -> np.ndarray:
    """Centralized splitter selection (gather + sort + broadcast).

    This is the scheme of the earlier multi-level sample sort of
    Gerbessiotis and Valiant which AMS-sort replaces with the fast parallel
    sample sort; kept as an option for comparison experiments.

    The modelled gather cost is driven by the *largest* per-PE contribution:
    the gather's bottleneck is the PE that injects the most sample words,
    not the average one (with unequal local sizes the mean underestimates
    the critical path).
    """
    with comm.phase(PHASE_SPLITTER_SELECTION):
        words_each = max(1, max((int(np.asarray(s).size) for s in samples), default=1))
        gathered = comm.gather(samples, root=0, words_each=words_each)
        sample = np.concatenate([np.asarray(s) for s in gathered if np.asarray(s).size > 0]) \
            if any(np.asarray(s).size for s in gathered) else np.empty(0)
        sample = np.sort(sample, kind="stable")
        comm.charge_local(0, comm.spec.local_sort_time(int(sample.size)))
        if num_splitters <= 0 or sample.size == 0:
            splitters = sample[:0]
        else:
            ranks = splitter_ranks(int(sample.size), num_splitters)
            splitters = sample[ranks]
        comm.bcast(splitters, root=0, words=int(splitters.size))
    return splitters


def _partition_into_group_pieces(
    comm,
    local_data: List[np.ndarray],
    splitters: np.ndarray,
    boundaries: np.ndarray,
    r: int,
) -> List[List[np.ndarray]]:
    """Partition each PE's data into ``r`` pieces according to bucket boundaries.

    ``boundaries`` delimits which buckets belong to which group; elements are
    routed by a single ``searchsorted`` against the splitters, then gathered
    per group.  The modelled cost of the partition is charged here.
    """
    p = comm.size
    num_buckets = int(splitters.size) + 1
    pieces: List[List[np.ndarray]] = []
    partition_sizes = []
    for i in range(p):
        data = np.asarray(local_data[i])
        partition_sizes.append(int(data.size))
        if splitters.size == 0:
            bucket_of = np.zeros(data.size, dtype=np.int64)
        else:
            bucket_of = bucket_indices(data, splitters)
        # Map bucket index -> group index using the grouping boundaries.
        group_of = np.searchsorted(boundaries[1:-1], bucket_of, side="right") \
            if boundaries.size > 2 else np.zeros(data.size, dtype=np.int64)
        pe_pieces = []
        for g in range(r):
            pe_pieces.append(data[group_of == g])
        pieces.append(pe_pieces)
    comm.charge_partition(partition_sizes, max(2, num_buckets))
    return pieces


def ams_sort_reference(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> List[np.ndarray]:
    """Per-PE reference implementation of AMS-sort (the seed engine).

    Semantically identical to :func:`ams_sort` but materialises every PE's
    data as its own array and loops over PEs in Python; kept as the
    executable specification the flat engine is verified against, and for
    small-``p`` debugging.
    """
    if config is None:
        config = AMSConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(local_data[0], kind="stable")
            comm.charge_sort([out.size])
        return [out]

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = int(sum(d.size for d in local_data))

    # Number of groups for this level (never more than the PEs available).
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p)) if p > 1 else 1

    sampling = config.sampling_for(max(_n_total, 2))
    num_buckets = sampling.num_buckets(r)
    num_splitters = sampling.num_splitters(r)

    # ------------------------------------------------------------------
    # 1. Splitter selection
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        per_pe = sampling.samples_per_pe(p, r)
        samples = [
            draw_local_sample(local_data[i], per_pe, comm.pe_rng(i)) for i in range(p)
        ]
    if config.use_fast_sample_sort:
        splitters = select_splitters_by_rank(
            comm, samples, num_splitters, phase=PHASE_SPLITTER_SELECTION
        )
    else:
        splitters = _centralized_splitters(comm, samples, num_splitters)

    # ------------------------------------------------------------------
    # 2. Bucket processing: partition, global bucket sizes, bucket grouping
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        local_bucket_sizes = []
        for i in range(p):
            data = local_data[i]
            if splitters.size == 0:
                counts = np.array([data.size], dtype=np.int64)
            else:
                idx = bucket_indices(data, splitters)
                counts = np.bincount(idx, minlength=splitters.size + 1).astype(np.int64)
            local_bucket_sizes.append(counts)
        global_bucket_sizes = comm.allreduce_vec(local_bucket_sizes)
        grouping = optimal_bucket_grouping(global_bucket_sizes, r, method="accelerated")
        # The parallel bound search of Appendix C costs O(br + alpha log p);
        # charge one extra small collective per search round.
        comm.allreduce_scalar([float(grouping.bound)] * p, op=np.max)
        pieces = _partition_into_group_pieces(
            comm, list(local_data), splitters, grouping.boundaries, r
        )

    # ------------------------------------------------------------------
    # 3. Data delivery
    # ------------------------------------------------------------------
    groups = comm.split(r)
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # 4. Recursion within each group
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        group_rank_offset = comm.local_rank_of(int(group.members[0]))
        group_local = [
            delivery.received_concat(group_rank_offset + j) for j in range(group.size)
        ]
        sorted_group = ams_sort_reference(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _n_total=_n_total,
        )
        for j in range(group.size):
            output[group_rank_offset + j] = sorted_group[j]
    return output


def _next_level_r(plan: List[int], next_level: int, group_size: int) -> int:
    """Group count the recursion would use for a group at ``next_level``."""
    if group_size == 1:
        return 1
    if next_level < len(plan):
        r = min(int(plan[next_level]), group_size)
    else:
        r = group_size
    return max(2, min(r, group_size))


def _ams_sort_last_level_batched(
    comm,
    groups,
    received: DistArray,
    config: AMSConfig,
    level: int,
    _n_total: int,
) -> DistArray:
    """Run the final AMS-sort level of *all* sub-groups (islands) in lockstep.

    Precondition (checked by the caller): every island of size > 1 splits
    into singleton groups at this level (``r == p``), its fast-sample-sort
    grid covers all of its PEs, and the delivery method is not ``advanced``.
    Under these conditions the per-island recursion bodies are the same
    program on disjoint PE sets, so the whole level runs as one batch of
    segmented whole-machine operations: per-island collectives become
    :class:`~repro.sim.groups.GroupBatch` charges, the singleton-group
    delivery degenerates to "each non-empty piece is one whole message", and
    the ``p`` recursive base cases collapse into one segmented sort.  Every
    PE receives exactly the charge sequence of the island-by-island
    reference execution.
    """
    machine = comm.machine
    spec = comm.spec
    sampling = config.sampling_for(max(_n_total, 2))
    num_islands = len(groups)

    isl_sizes_all = np.array([g.size for g in groups], dtype=np.int64)
    rank_offsets_all = np.zeros(num_islands + 1, dtype=np.int64)
    np.cumsum(isl_sizes_all, out=rank_offsets_all[1:])
    multi_idx = np.flatnonzero(isl_sizes_all > 1)
    single_idx = np.flatnonzero(isl_sizes_all == 1)

    out_b: Optional[DistArray] = None
    sorted_singles: Optional[DistArray] = None

    if multi_idx.size:
        sizes_m = isl_sizes_all[multi_idx]           # island sizes (= r per island)
        n_m = int(multi_idx.size)
        isl_offsets = np.zeros(n_m + 1, dtype=np.int64)
        np.cumsum(sizes_m, out=isl_offsets[1:])
        q = int(isl_offsets[-1])                     # PEs in the batch
        batch_ranks = concat_ranges(rank_offsets_all[multi_idx], sizes_m)
        batch_members = comm.members[batch_ranks]
        island_of_pe = np.repeat(np.arange(n_m, dtype=np.int64), sizes_m)
        islands = GroupBatch(machine, batch_members, isl_offsets)
        if single_idx.size == 0:
            dist_b = received
        else:
            dist_b = DistArray.concatenate([
                received.slice_segments(
                    int(rank_offsets_all[g]), int(rank_offsets_all[g + 1])
                )
                for g in multi_idx
            ])
        data_sizes = dist_b.sizes()

        # --------------------------------------------------------------
        # 1. Sampling (segment-aware, per-PE RNG streams)
        # --------------------------------------------------------------
        with comm.phase(PHASE_SPLITTER_SELECTION):
            per_pe_counts = np.repeat(
                np.array(
                    [sampling.samples_per_pe(int(pk), int(pk)) for pk in sizes_m],
                    dtype=np.int64,
                ),
                sizes_m,
            )
            samples_b = DistArray.from_list([
                draw_local_sample(
                    dist_b.segment(i),
                    int(per_pe_counts[i]),
                    machine.pe_rng(int(batch_members[i])),
                )
                for i in range(q)
            ])

            # ----------------------------------------------------------
            # 2. Fast work-inefficient sample sort, batched over islands
            # ----------------------------------------------------------
            s_sizes = samples_b.sizes()
            machine.advance_many(
                batch_members, [spec.local_sort_time(int(m)) for m in s_sizes]
            )
            isl_sample_sizes = np.add.reduceat(s_sizes, isl_offsets[:-1])
            active = np.flatnonzero(isl_sample_sizes > 0)

            shapes = [grid_shape(int(pk)) for pk in sizes_m]
            if active.size:
                # Row gossip: rows are contiguous PE runs inside each island.
                row_members: List[np.ndarray] = []
                row_sizes: List[int] = []
                row_words: List[int] = []
                col_members: List[np.ndarray] = []
                col_sizes: List[int] = []
                col_words: List[int] = []
                merge_pes: List[np.ndarray] = []
                merge_ts: List[float] = []
                for k in active:
                    k = int(k)
                    rows, cols = shapes[k].rows, shapes[k].cols
                    base = int(isl_offsets[k])
                    grid = np.arange(base, base + rows * cols, dtype=np.int64)
                    grid2d = grid.reshape(rows, cols)
                    sz2d = s_sizes[grid2d]
                    row_tot = sz2d.sum(axis=1)
                    col_tot = sz2d.sum(axis=0)
                    for ri in range(rows):
                        row_members.append(batch_members[grid2d[ri]])
                        row_sizes.append(cols)
                        row_words.append(
                            max(1, int(math.ceil(int(row_tot[ri]) / max(cols, 1))))
                        )
                    for cj in range(cols):
                        col_members.append(batch_members[grid2d[:, cj]])
                        col_sizes.append(rows)
                        col_words.append(
                            max(1, int(math.ceil(int(col_tot[cj]) / max(rows, 1))))
                        )
                    merge_pes.append(batch_members[grid])
                    merge_sz = row_tot[:, None] + col_tot[None, :]
                    merge_ts.extend(
                        spec.local_merge_time(int(m), 2) for m in merge_sz.reshape(-1)
                    )

                def _batch(members_list, sizes_list):
                    offs = np.zeros(len(sizes_list) + 1, dtype=np.int64)
                    np.cumsum(np.asarray(sizes_list, dtype=np.int64), out=offs[1:])
                    return GroupBatch(machine, np.concatenate(members_list), offs)

                row_batch = _batch(row_members, row_sizes)
                row_batch.charge_collective(row_words, rounds_factors=row_sizes)
                col_batch = _batch(col_members, col_sizes)
                col_batch.charge_collective(col_words, rounds_factors=col_sizes)
                machine.advance_many(np.concatenate(merge_pes), merge_ts)
                col_red_words = []
                for k in active:
                    k = int(k)
                    rows, cols = shapes[k].rows, shapes[k].cols
                    base = int(isl_offsets[k])
                    sz2d = s_sizes[base:base + rows * cols].reshape(rows, cols)
                    col_red_words.extend(int(c) for c in sz2d.sum(axis=0))
                col_batch.charge_collective(col_red_words)

            # Sample sort data: one segmented stable argsort over the batch.
            sample_isl_totals = isl_sample_sizes
            sample_isl_offsets = np.zeros(n_m + 1, dtype=np.int64)
            np.cumsum(sample_isl_totals, out=sample_isl_offsets[1:])
            sample_island = np.repeat(np.arange(n_m, dtype=np.int64), sample_isl_totals)
            order = np.lexsort((samples_b.values, sample_island))
            sorted_samples = samples_b.values[order]

            splitters_per_isl: List[np.ndarray] = []
            bcast_idx: List[int] = []
            bcast_words: List[int] = []
            for k in range(n_m):
                ns_k = sampling.num_splitters(int(sizes_m[k]))
                tot = int(sample_isl_totals[k])
                if ns_k <= 0 or tot == 0:
                    splitters_per_isl.append(sorted_samples[:0])
                    continue
                ranks = ((np.arange(1, ns_k + 1) * tot) // (ns_k + 1))
                ranks = np.clip(ranks, 0, tot - 1)
                spl = sorted_samples[int(sample_isl_offsets[k]) + ranks]
                splitters_per_isl.append(spl)
                bcast_idx.append(k)
                bcast_words.append(int(spl.size))
            if bcast_idx:
                islands.select(np.asarray(bcast_idx)).charge_collective(bcast_words)

        # --------------------------------------------------------------
        # 3. Bucket processing (counting, grouping, partition)
        # --------------------------------------------------------------
        with comm.phase(PHASE_BUCKET_PROCESSING):
            nb_per_isl = np.array(
                [max(1, int(spl.size) + 1) if spl.size else 1
                 for spl in splitters_per_isl],
                dtype=np.int64,
            )
            bucketed = []
            for k in range(n_m):
                lo_v = int(dist_b.offsets[isl_offsets[k]])
                hi_v = int(dist_b.offsets[isl_offsets[k + 1]])
                vals_k = dist_b.values[lo_v:hi_v]
                spl = splitters_per_isl[k]
                if spl.size == 0:
                    bucket_of_k = np.zeros(vals_k.size, dtype=np.int64)
                    gbs_k = np.array([vals_k.size], dtype=np.int64)
                else:
                    bucket_of_k = bucket_indices(vals_k, spl)
                    gbs_k = np.bincount(
                        bucket_of_k, minlength=int(spl.size) + 1
                    ).astype(np.int64)
                bucketed.append((gbs_k, bucket_of_k))
            islands.charge_collective([int(x) for x in nb_per_isl])
            dest_parts: List[np.ndarray] = []
            for k in range(n_m):
                gbs_k, bucket_of_k = bucketed[k]
                grouping = optimal_bucket_grouping(
                    gbs_k, int(sizes_m[k]), method="accelerated"
                )
                dest_parts.append(
                    bucket_to_group(grouping.boundaries, bucket_of_k)
                )
            islands.charge_collective([1] * n_m)  # max-reduce of the bound
            dest_local = (
                np.concatenate(dest_parts) if dest_parts
                else np.empty(0, dtype=np.int64)
            )

            r_per_pe = np.repeat(sizes_m, sizes_m)
            pe_piece_base = np.cumsum(r_per_pe) - r_per_pe
            pe_of_element = dist_b.segment_ids()
            key = pe_piece_base[pe_of_element] + dest_local
            total_pieces = int(r_per_pe.sum())
            order = stable_two_key_argsort(
                pe_of_element, dest_local, q, int(sizes_m.max())
            )
            piece_values = dist_b.values[order]
            piece_len = np.bincount(key, minlength=total_pieces).astype(
                np.int64, copy=False
            )
            machine.advance_many(
                batch_members,
                [
                    spec.local_partition_time(
                        int(m), max(2, int(nb_per_isl[island_of_pe[i]]))
                    )
                    for i, m in enumerate(data_sizes)
                ],
            )

        # --------------------------------------------------------------
        # 4. Delivery to singleton groups: one whole message per piece
        # --------------------------------------------------------------
        with comm.phase(PHASE_DATA_DELIVERY):
            islands.charge_collective([int(pk) for pk in sizes_m])  # exscan
            piece_pe = np.repeat(np.arange(q, dtype=np.int64), r_per_pe)
            piece_j = np.arange(total_pieces, dtype=np.int64) - pe_piece_base[piece_pe]
            piece_dest = isl_offsets[island_of_pe[piece_pe]] + piece_j
            piece_start = np.cumsum(piece_len) - piece_len
            nonempty = piece_len > 0
            msg_src = piece_pe[nonempty]
            msg_dest = piece_dest[nonempty]
            msg_len = piece_len[nonempty]
            msg_start = piece_start[nonempty]

            kept_mask = msg_src == msg_dest
            if kept_mask.any():
                kept_src = msg_src[kept_mask]
                machine.advance_many(
                    batch_members[kept_src],
                    [spec.local_move_time(int(m)) for m in msg_len[kept_mask]],
                )

            net = ~kept_mask
            words_sent = np.zeros(q, dtype=np.int64)
            words_received = np.zeros(q, dtype=np.int64)
            np.add.at(words_sent, msg_src[net], msg_len[net])
            np.add.at(words_received, msg_dest[net], msg_len[net])
            messages_sent = np.bincount(msg_src[net], minlength=q).astype(np.int64)
            messages_received = np.bincount(msg_dest[net], minlength=q).astype(np.int64)
            if net.any():
                machine.counters.record_messages(
                    batch_members[msg_src[net]],
                    batch_members[msg_dest[net]],
                    msg_len[net],
                )
            if config.exchange_schedule == "dense":
                messages_sent = np.repeat(sizes_m - 1, sizes_m)
                messages_received = messages_sent.copy()
            islands.charge_exchange(
                words_sent, words_received, messages_sent, messages_received
            )

            order2 = stable_two_key_argsort(msg_dest, msg_src, q, q)
            recv_values = piece_values[
                concat_ranges(msg_start[order2], msg_len[order2])
            ]
            recv_sizes = np.zeros(q, dtype=np.int64)
            np.add.at(recv_sizes, msg_dest, msg_len)
            received_b = DistArray.from_sizes(recv_values, recv_sizes)

        # --------------------------------------------------------------
        # 5. Base cases: one segmented sort for all singleton groups
        # --------------------------------------------------------------
        with comm.phase(PHASE_LOCAL_SORT):
            out_b = received_b.sort_segments()
            machine.advance_many(
                batch_members, [spec.local_sort_time(int(m)) for m in recv_sizes]
            )

    if single_idx.size:
        with comm.phase(PHASE_LOCAL_SORT):
            single_dist = DistArray.from_list([
                received.segment(int(rank_offsets_all[g])) for g in single_idx
            ])
            sorted_singles = single_dist.sort_segments()
            single_members = comm.members[rank_offsets_all[single_idx]]
            machine.advance_many(
                single_members,
                [spec.local_sort_time(int(m)) for m in single_dist.sizes()],
            )

    if single_idx.size == 0:
        assert out_b is not None
        return out_b

    # Interleave multi-island and singleton outputs back into group order.
    parts: List[DistArray] = []
    multi_pos = {int(g): i for i, g in enumerate(multi_idx)}
    single_pos = {int(g): i for i, g in enumerate(single_idx)}
    for g in range(num_islands):
        if g in multi_pos:
            i = multi_pos[g]
            base = int(np.sum(isl_sizes_all[multi_idx[:i]]))
            parts.append(out_b.slice_segments(base, base + int(isl_sizes_all[g])))
        else:
            i = single_pos[g]
            parts.append(sorted_singles.slice_segments(i, i + 1))
    return DistArray.concatenate(parts)


def _ams_sort_flat(
    comm,
    dist: DistArray,
    config: AMSConfig,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> DistArray:
    """One level of AMS-sort on the flat engine (whole-machine vectorised).

    The four phases become: per-PE sampling via segment-aware gather, one
    ``searchsorted`` + one ``bincount`` over combined ``(PE, bucket)`` keys
    for the global bucket sizes, one stable argsort on ``(PE, group)`` keys
    for the group routing, and offset-arithmetic message assembly in
    :func:`deliver_to_groups_flat`.  All modelled charges are issued in the
    same order and with the same arguments as the per-PE reference.
    """
    p = comm.size

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(dist.values, kind="stable")
            comm.charge_sort([out.size])
        return DistArray(out, dist.offsets - dist.offsets[0])

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = dist.total

    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p)) if p > 1 else 1

    sampling = config.sampling_for(max(_n_total, 2))
    num_splitters = sampling.num_splitters(r)
    sizes = dist.sizes()

    # ------------------------------------------------------------------
    # 1. Splitter selection
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        per_pe = sampling.samples_per_pe(p, r)
        samples = draw_samples_flat(dist, per_pe, [comm.pe_rng(i) for i in range(p)])
    if config.use_fast_sample_sort:
        splitters = select_splitters_by_rank_flat(
            comm, samples, num_splitters, phase=PHASE_SPLITTER_SELECTION
        )
    else:
        splitters = _centralized_splitters(comm, samples.to_list(), num_splitters)

    # ------------------------------------------------------------------
    # 2. Bucket processing: partition, global bucket sizes, bucket grouping
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        seg = dist.segment_ids()
        if splitters.size == 0:
            bucket_of = np.zeros(dist.total, dtype=np.int64)
            nb = 1
            global_bucket_sizes = np.array([dist.total], dtype=np.int64)
        else:
            bucket_of = bucket_indices(dist.values, splitters)
            nb = int(splitters.size) + 1
            global_bucket_sizes = np.bincount(bucket_of, minlength=nb).astype(
                np.int64, copy=False
            )
        comm.charge_allreduce_vec(nb)
        grouping = optimal_bucket_grouping(global_bucket_sizes, r, method="accelerated")
        # The parallel bound search of Appendix C costs O(br + alpha log p);
        # charge one extra small collective per search round.
        comm.allreduce_scalar([float(grouping.bound)] * p, op=np.max)
        group_of = bucket_to_group(grouping.boundaries, bucket_of)
        key = seg * r + group_of
        order = stable_two_key_argsort(seg, group_of, p, r)
        piece_values = dist.values[order]
        piece_sizes = np.bincount(key, minlength=p * r).reshape(p, r).astype(
            np.int64, copy=False
        )
        comm.charge_partition(sizes, max(2, nb))

    # ------------------------------------------------------------------
    # 3. Data delivery
    # ------------------------------------------------------------------
    groups = comm.split(r)
    delivery = deliver_to_groups_flat(
        comm,
        groups,
        piece_values,
        piece_sizes,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # 4. Recursion within each group
    # ------------------------------------------------------------------
    if r == p:
        # Every group is a single PE: the p recursive base cases collapse
        # into one segmented sort.  Each base case would charge its PE's
        # local-sort time independently, so one vectorised charge of the
        # same per-PE values is bit-identical.
        with comm.phase(PHASE_LOCAL_SORT):
            out = delivery.received.sort_segments()
            comm.charge_sort(delivery.received_sizes)
        return out
    if (
        config.use_fast_sample_sort
        and config.delivery != "advanced"
        and all(
            g.size == 1
            or (
                _next_level_r(_plan, level + 1, g.size) == g.size
                and grid_shape(g.size).size == g.size
            )
            for g in groups
        )
    ):
        # Every sub-group runs its *final* level next (r == p, full sample
        # grid): execute all of them in lockstep instead of recursing.
        return _ams_sort_last_level_batched(
            comm, groups, delivery.received, config, level + 1, _n_total
        )
    parts: List[DistArray] = []
    start_rank = 0
    for group in groups:
        sub = delivery.received.slice_segments(start_rank, start_rank + group.size)
        parts.append(
            _ams_sort_flat(
                group, sub, config, level=level + 1, _plan=_plan, _n_total=_n_total
            )
        )
        start_rank += group.size
    return DistArray.concatenate(parts)


def ams_sort(
    comm,
    local_data: Union[DistArray, Sequence[np.ndarray]],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> Union[DistArray, List[np.ndarray]]:
    """Sort a distributed array with AMS-sort (flat engine).

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        The distributed input: either a :class:`~repro.dist.array.DistArray`
        or the classic per-PE list (one array per member PE), which is
        converted with the cheap ``DistArray.from_list`` / ``to_list``
        round-trip at this boundary.
    config:
        :class:`AMSConfig`; defaults to two levels with the paper's sampling
        parameters.
    level:
        Internal recursion level (leave at 0).

    Returns
    -------
    DistArray or list of numpy.ndarray
        The sorted output in the same representation as the input.
    """
    if config is None:
        config = AMSConfig()
    if isinstance(local_data, DistArray):
        if local_data.p != comm.size:
            raise ValueError("need one local segment per member PE")
        return _ams_sort_flat(
            comm, local_data, config, level=level, _plan=_plan, _n_total=_n_total
        )
    if len(local_data) != comm.size:
        raise ValueError("need one local array per member PE")
    dist = DistArray.from_list([np.asarray(d) for d in local_data])
    out = _ams_sort_flat(
        comm, dist, config, level=level, _plan=_plan, _n_total=_n_total
    )
    return out.to_list()
