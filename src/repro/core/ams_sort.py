"""Adaptive Multi-level Sample sort (AMS-sort), Section 6 of the paper.

One level of AMS-sort on a group of ``p`` PEs that is to be split into ``r``
sub-groups:

1. **Splitter selection** — every PE contributes a random sample
   (oversampling factor ``a``, overpartitioning factor ``b``); the sample is
   sorted with the fast work-inefficient grid sort (Section 4.2) and
   ``b*r - 1`` splitters of equidistant ranks are broadcast to all PEs.
2. **Bucket processing** — every PE partitions its local data into the
   ``b*r`` buckets (super scalar sample sort style partitioning); a global
   all-reduce yields the global bucket sizes, and the optimal scanning
   algorithm (Lemma 1 / Appendix C) assigns consecutive bucket ranges to the
   ``r`` PE groups such that the maximum group load is minimised.
3. **Data delivery** — the per-group pieces are delivered with one of the
   algorithms of Section 4.3 / Appendix A so that all PEs of a group receive
   the same amount of data up to rounding and the number of message
   startups per PE stays ``O(r)``.
4. **Recursion** — each group recursively sorts its data; on a single PE the
   recursion bottoms out with a local sort.

The result is a globally sorted distributed array with at most a
``(1 + eps)`` output imbalance (Theorem 3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.blocks.delivery import deliver_to_groups
from repro.blocks.fast_sort import select_splitters_by_rank
from repro.blocks.grouping import optimal_bucket_grouping
from repro.blocks.sampling import SamplingParams, draw_local_sample, splitter_ranks
from repro.core.config import AMSConfig
from repro.machine.counters import (
    PHASE_BUCKET_PROCESSING,
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)
from repro.seq.partition import bucket_indices


def _centralized_splitters(comm, samples: List[np.ndarray], num_splitters: int) -> np.ndarray:
    """Centralized splitter selection (gather + sort + broadcast).

    This is the scheme of the earlier multi-level sample sort of
    Gerbessiotis and Valiant which AMS-sort replaces with the fast parallel
    sample sort; kept as an option for comparison experiments.
    """
    with comm.phase(PHASE_SPLITTER_SELECTION):
        gathered = comm.gather(samples, root=0,
                               words_each=max(1, int(np.mean([s.size for s in samples]))))
        sample = np.concatenate([np.asarray(s) for s in gathered if np.asarray(s).size > 0]) \
            if any(np.asarray(s).size for s in gathered) else np.empty(0)
        sample = np.sort(sample, kind="stable")
        comm.charge_local(0, comm.spec.local_sort_time(int(sample.size)))
        if num_splitters <= 0 or sample.size == 0:
            splitters = sample[:0]
        else:
            ranks = splitter_ranks(int(sample.size), num_splitters)
            splitters = sample[ranks]
        comm.bcast(splitters, root=0, words=int(splitters.size))
    return splitters


def _partition_into_group_pieces(
    comm,
    local_data: List[np.ndarray],
    splitters: np.ndarray,
    boundaries: np.ndarray,
    r: int,
) -> List[List[np.ndarray]]:
    """Partition each PE's data into ``r`` pieces according to bucket boundaries.

    ``boundaries`` delimits which buckets belong to which group; elements are
    routed by a single ``searchsorted`` against the splitters, then gathered
    per group.  The modelled cost of the partition is charged here.
    """
    p = comm.size
    num_buckets = int(splitters.size) + 1
    pieces: List[List[np.ndarray]] = []
    partition_sizes = []
    for i in range(p):
        data = np.asarray(local_data[i])
        partition_sizes.append(int(data.size))
        if splitters.size == 0:
            bucket_of = np.zeros(data.size, dtype=np.int64)
        else:
            bucket_of = bucket_indices(data, splitters)
        # Map bucket index -> group index using the grouping boundaries.
        group_of = np.searchsorted(boundaries[1:-1], bucket_of, side="right") \
            if boundaries.size > 2 else np.zeros(data.size, dtype=np.int64)
        pe_pieces = []
        for g in range(r):
            pe_pieces.append(data[group_of == g])
        pieces.append(pe_pieces)
    comm.charge_partition(partition_sizes, max(2, num_buckets))
    return pieces


def ams_sort(
    comm,
    local_data: Sequence[np.ndarray],
    config: Optional[AMSConfig] = None,
    level: int = 0,
    _plan: Optional[List[int]] = None,
    _n_total: Optional[int] = None,
) -> List[np.ndarray]:
    """Sort a distributed array with AMS-sort.

    Parameters
    ----------
    comm:
        Communicator over the PEs holding the data.
    local_data:
        One array per member PE.
    config:
        :class:`AMSConfig`; defaults to two levels with the paper's sampling
        parameters.
    level:
        Internal recursion level (leave at 0).

    Returns
    -------
    list of numpy.ndarray
        The sorted output, one array per member PE (ordered by PE).
    """
    if config is None:
        config = AMSConfig()
    p = comm.size
    if len(local_data) != p:
        raise ValueError("need one local array per member PE")
    local_data = [np.asarray(d) for d in local_data]

    # ------------------------------------------------------------------
    # Base case: a single PE sorts locally.
    # ------------------------------------------------------------------
    if p == 1:
        with comm.phase(PHASE_LOCAL_SORT):
            out = np.sort(local_data[0], kind="stable")
            comm.charge_sort([out.size])
        return [out]

    if _plan is None:
        _plan = config.plan_for(p)
    if _n_total is None:
        _n_total = int(sum(d.size for d in local_data))

    # Number of groups for this level (never more than the PEs available).
    if level < len(_plan):
        r = min(int(_plan[level]), p)
    else:
        r = p
    r = max(2, min(r, p)) if p > 1 else 1

    sampling = config.sampling_for(max(_n_total, 2))
    num_buckets = sampling.num_buckets(r)
    num_splitters = sampling.num_splitters(r)

    # ------------------------------------------------------------------
    # 1. Splitter selection
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SPLITTER_SELECTION):
        per_pe = sampling.samples_per_pe(p, r)
        samples = [
            draw_local_sample(local_data[i], per_pe, comm.pe_rng(i)) for i in range(p)
        ]
    if config.use_fast_sample_sort:
        splitters = select_splitters_by_rank(
            comm, samples, num_splitters, phase=PHASE_SPLITTER_SELECTION
        )
    else:
        splitters = _centralized_splitters(comm, samples, num_splitters)

    # ------------------------------------------------------------------
    # 2. Bucket processing: partition, global bucket sizes, bucket grouping
    # ------------------------------------------------------------------
    with comm.phase(PHASE_BUCKET_PROCESSING):
        local_bucket_sizes = []
        for i in range(p):
            data = local_data[i]
            if splitters.size == 0:
                counts = np.array([data.size], dtype=np.int64)
            else:
                idx = bucket_indices(data, splitters)
                counts = np.bincount(idx, minlength=splitters.size + 1).astype(np.int64)
            local_bucket_sizes.append(counts)
        global_bucket_sizes = comm.allreduce_vec(local_bucket_sizes)
        grouping = optimal_bucket_grouping(global_bucket_sizes, r, method="accelerated")
        # The parallel bound search of Appendix C costs O(br + alpha log p);
        # charge one extra small collective per search round.
        comm.allreduce_scalar([float(grouping.bound)] * p, op=np.max)
        pieces = _partition_into_group_pieces(
            comm, list(local_data), splitters, grouping.boundaries, r
        )

    # ------------------------------------------------------------------
    # 3. Data delivery
    # ------------------------------------------------------------------
    groups = comm.split(r)
    delivery = deliver_to_groups(
        comm,
        groups,
        pieces,
        method=config.delivery,
        seed=comm.machine.seed + level + 1,
        phase=PHASE_DATA_DELIVERY,
        schedule=config.exchange_schedule,
    )

    # ------------------------------------------------------------------
    # 4. Recursion within each group
    # ------------------------------------------------------------------
    output: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    for g, group in enumerate(groups):
        group_rank_offset = comm.local_rank_of(int(group.members[0]))
        group_local = [
            delivery.received_concat(group_rank_offset + j) for j in range(group.size)
        ]
        sorted_group = ams_sort(
            group,
            group_local,
            config=config,
            level=level + 1,
            _plan=_plan,
            _n_total=_n_total,
        )
        for j in range(group.size):
            output[group_rank_offset + j] = sorted_group[j]
    return output
