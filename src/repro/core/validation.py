"""Validation of distributed sorting outputs.

The output requirement of the paper (Section 1): the PEs store a permutation
of the input elements such that the elements on each PE are sorted and no
element on PE ``i`` is larger than any element on PE ``i + 1``.  AMS-sort
additionally guarantees at most a ``(1 + eps)`` imbalance of the per-PE
output sizes, which :func:`output_imbalance` measures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def check_globally_sorted(output: Sequence[np.ndarray]) -> bool:
    """True when every PE's data is sorted and PE boundaries are monotone."""
    prev_max = None
    for arr in output:
        arr = np.asarray(arr)
        if arr.size == 0:
            continue
        if arr.size > 1 and np.any(arr[1:] < arr[:-1]):
            return False
        if prev_max is not None and arr[0] < prev_max:
            return False
        prev_max = arr[-1]
    return True


def check_permutation(
    input_data: Sequence[np.ndarray], output: Sequence[np.ndarray]
) -> bool:
    """True when the output is a permutation of the input (as multisets)."""
    in_pieces = [np.asarray(a) for a in input_data if np.asarray(a).size > 0]
    out_pieces = [np.asarray(a) for a in output if np.asarray(a).size > 0]
    total_in = int(sum(a.size for a in in_pieces))
    total_out = int(sum(a.size for a in out_pieces))
    if total_in != total_out:
        return False
    if total_in == 0:
        return True
    all_in = np.sort(np.concatenate(in_pieces), kind="stable")
    all_out = np.sort(np.concatenate(out_pieces), kind="stable")
    return bool(np.array_equal(all_in, all_out))


def output_imbalance(output: Sequence[np.ndarray]) -> float:
    """Relative imbalance ``max_i |out_i| / (n / p) - 1`` of the output sizes.

    Returns 0 for an empty input.  This is the quantity plotted in
    Figure 10 of the paper ("maximum imbalance among groups").
    """
    sizes = np.array([int(np.asarray(a).size) for a in output], dtype=np.float64)
    total = sizes.sum()
    if total == 0:
        return 0.0
    mean = total / sizes.size
    return float(sizes.max() / mean - 1.0)


def group_imbalance(group_loads: Sequence[int]) -> float:
    """Relative imbalance of per-group loads (used by overpartitioning experiments)."""
    loads = np.asarray(list(group_loads), dtype=np.float64)
    if loads.size == 0 or loads.sum() == 0:
        return 0.0
    mean = loads.sum() / loads.size
    return float(loads.max() / mean - 1.0)


def validate_output(
    input_data: Sequence[np.ndarray],
    output: Sequence[np.ndarray],
    max_imbalance: float | None = None,
) -> Dict[str, object]:
    """Full output validation; raises :class:`AssertionError` on violation.

    Returns a dictionary of the measured properties so callers can log them.
    """
    sorted_ok = check_globally_sorted(output)
    perm_ok = check_permutation(input_data, output)
    imbalance = output_imbalance(output)
    if not sorted_ok:
        raise AssertionError("output is not globally sorted")
    if not perm_ok:
        raise AssertionError("output is not a permutation of the input")
    if max_imbalance is not None and imbalance > max_imbalance:
        raise AssertionError(
            f"output imbalance {imbalance:.4f} exceeds allowed {max_imbalance:.4f}"
        )
    return {
        "globally_sorted": sorted_ok,
        "permutation": perm_ok,
        "imbalance": imbalance,
        "total_elements": int(sum(np.asarray(a).size for a in output)),
    }
