"""Algorithm configuration and the per-level group-count plan (Table 1).

The central tuning knob of both multi-level algorithms is the number of
recursion levels ``k`` and, per level, the number of groups ``r`` the PEs are
split into.  Asymptotically ``r = Theta(p^(1/k))`` is the right choice
(Section 5); in practice the paper aligns the groups with the machine
hierarchy: the *last* level always splits into groups of one node
(16 MPI processes on SuperMUC) so that its data exchange stays node-internal,
and the remaining factor ``p / 16`` is distributed over the earlier levels as
evenly as possible (Section 7.2, Table 1).

:func:`level_plan` reproduces that scheme for arbitrary ``p`` and ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.blocks.delivery import DELIVERY_METHODS
from repro.blocks.sampling import SamplingParams, default_oversampling


def _near_equal_factors(value: int, parts: int) -> List[int]:
    """Split ``value`` into ``parts`` integer factors whose product covers ``value``.

    Factors are as equal as possible (powers of two stay powers of two) and
    ordered from largest to smallest, matching Table 1 where the first level
    uses the largest group count.
    """
    if parts <= 0:
        return []
    if value <= 1:
        return [1] * parts
    if parts == 1:
        return [value]
    factors: List[int] = []
    remaining = value
    for i in range(parts, 0, -1):
        if i == 1:
            factors.append(max(1, remaining))
            break
        f = max(1, int(math.ceil(remaining ** (1.0 / i))))
        # Keep powers of two exact (the experiments use power-of-two p).
        if remaining & (remaining - 1) == 0:
            bits = int(math.log2(remaining))
            f = 1 << int(math.ceil(bits / i))
        factors.append(f)
        remaining = max(1, int(math.ceil(remaining / f)))
    factors.sort(reverse=True)
    return factors


def level_plan(p: int, levels: int, node_size: int = 16) -> List[int]:
    """Group counts ``r_1 .. r_k`` per recursion level for ``p`` PEs.

    The product of the returned counts is at least ``p`` (groups of the last
    level are single PEs / nodes).  Reproduces Table 1 of the paper for the
    power-of-two configurations used there:

    >>> level_plan(512, 2)
    [32, 16]
    >>> level_plan(32768, 3)
    [64, 32, 16]

    For ``levels == 1`` the single level must split all the way down to
    single PEs, i.e. ``r_1 = p`` (the paper's Table 1 lists the node size in
    this row, which only describes the node-internal final grouping).
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if levels <= 0:
        raise ValueError("need at least one level")
    if levels == 1:
        return [p]
    node_size = max(1, min(node_size, p))
    last = node_size
    remaining = int(math.ceil(p / last))
    if remaining <= 1:
        # Fewer PEs than one node: split evenly across the requested levels.
        return _near_equal_factors(p, levels)
    head = _near_equal_factors(remaining, levels - 1)
    return head + [last]


@dataclass(frozen=True)
class AMSConfig:
    """Configuration of AMS-sort.

    Attributes
    ----------
    levels:
        Number of recursion levels ``k``.
    epsilon:
        Accepted output imbalance (the output guarantee is
        ``(1 + epsilon) * n / p`` elements per PE w.h.p.).  Only used when
        ``sampling`` is not given explicitly (theoretical parameterisation).
    sampling:
        Explicit :class:`SamplingParams` (oversampling ``a``,
        overpartitioning ``b``).  ``None`` selects the paper's experimental
        defaults (``b = 16``, ``a = 1.6 log10 n``) at run time.
    delivery:
        Data delivery strategy (see :data:`DELIVERY_METHODS`).
    exchange_schedule:
        ``'sparse'`` (1-factor style, skips empty messages) or ``'dense'``
        (plain all-to-allv).
    node_size:
        Group size targeted by the last level (Table 1 uses 16).
    group_plan:
        Optional explicit list of group counts per level, overriding
        :func:`level_plan`.
    use_fast_sample_sort:
        Sort the sample with the fast work-inefficient grid sort of
        Section 4.2 (True, default) or with a centralized
        gather-sort-broadcast (False; this is the Gerbessiotis/Valiant
        variant AMS-sort improves upon and is kept for comparison).
    """

    levels: int = 2
    epsilon: float = 0.1
    sampling: Optional[SamplingParams] = None
    delivery: str = "deterministic"
    exchange_schedule: str = "sparse"
    node_size: int = 16
    group_plan: Optional[Sequence[int]] = None
    use_fast_sample_sort: bool = True

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("AMS-sort needs at least one level")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.delivery not in DELIVERY_METHODS:
            raise ValueError(f"unknown delivery method {self.delivery!r}")
        if self.exchange_schedule not in ("sparse", "dense"):
            raise ValueError("exchange_schedule must be 'sparse' or 'dense'")
        if self.node_size < 1:
            raise ValueError("node_size must be positive")

    # ------------------------------------------------------------------
    def plan_for(self, p: int) -> List[int]:
        """Group counts per level for a machine of ``p`` PEs."""
        if self.group_plan is not None:
            plan = [int(r) for r in self.group_plan]
            if any(r < 1 for r in plan):
                raise ValueError("group plan entries must be positive")
            return plan
        return level_plan(p, self.levels, node_size=self.node_size)

    def sampling_for(self, n_total: int) -> SamplingParams:
        """Sampling parameters, defaulting to the paper's experimental choice."""
        if self.sampling is not None:
            return self.sampling
        return SamplingParams(
            oversampling=default_oversampling(max(n_total, 2)),
            overpartitioning=16,
            per_pe=True,
        )

    def with_levels(self, levels: int) -> "AMSConfig":
        """Copy of this configuration with a different level count."""
        return replace(self, levels=levels, group_plan=None)


@dataclass(frozen=True)
class RLMConfig:
    """Configuration of RLM-sort (Recurse Last Multiway Mergesort).

    Attributes
    ----------
    levels:
        Number of recursion levels ``k``.
    delivery:
        Data delivery strategy.
    exchange_schedule:
        Exchange schedule for the bulk data exchange.
    node_size:
        Group size targeted by the last level.
    group_plan:
        Optional explicit group counts per level.
    """

    levels: int = 2
    delivery: str = "deterministic"
    exchange_schedule: str = "sparse"
    node_size: int = 16
    group_plan: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("RLM-sort needs at least one level")
        if self.delivery not in DELIVERY_METHODS:
            raise ValueError(f"unknown delivery method {self.delivery!r}")
        if self.exchange_schedule not in ("sparse", "dense"):
            raise ValueError("exchange_schedule must be 'sparse' or 'dense'")
        if self.node_size < 1:
            raise ValueError("node_size must be positive")

    def plan_for(self, p: int) -> List[int]:
        """Group counts per level for a machine of ``p`` PEs."""
        if self.group_plan is not None:
            plan = [int(r) for r in self.group_plan]
            if any(r < 1 for r in plan):
                raise ValueError("group plan entries must be positive")
            return plan
        return level_plan(p, self.levels, node_size=self.node_size)

    def with_levels(self, levels: int) -> "RLMConfig":
        """Copy of this configuration with a different level count."""
        return replace(self, levels=levels, group_plan=None)
