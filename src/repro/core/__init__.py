"""The paper's sorting algorithms and their configuration.

* :func:`repro.core.ams_sort.ams_sort` — Adaptive Multi-level Sample sort
  (AMS-sort, Section 6),
* :func:`repro.core.rlm_sort.rlm_sort` — Recurse Last Multiway Mergesort
  (RLM-sort, Section 5),
* :mod:`repro.core.baselines` — single-level comparators: classic sample
  sort with centralized splitter selection, single-level multiway mergesort
  ("MP-sort style") and a recursive parallel quicksort,
* :mod:`repro.core.config` — algorithm configuration, including the group
  count (``r``) plan per recursion level used in the paper's weak scaling
  experiments (Table 1),
* :mod:`repro.core.runner` — a convenience driver that builds a simulated
  machine, distributes the input, runs an algorithm, validates the output
  and collects phase/traffic statistics,
* :mod:`repro.core.validation` — output checks (global sortedness,
  permutation preservation, imbalance).
"""

from repro.core.config import AMSConfig, RLMConfig, level_plan
from repro.core.ams_sort import ams_sort, ams_sort_reference
from repro.core.rlm_sort import rlm_sort, rlm_sort_reference
from repro.core.baselines import (
    single_level_sample_sort,
    single_level_sample_sort_reference,
    single_level_mergesort,
    single_level_mergesort_reference,
    parallel_quicksort,
    parallel_quicksort_reference,
)
from repro.core.runner import ENGINES, SortResult, run_on_machine, sort_array
from repro.core.validation import (
    check_globally_sorted,
    check_permutation,
    output_imbalance,
    validate_output,
)

__all__ = [
    "AMSConfig",
    "RLMConfig",
    "level_plan",
    "ams_sort",
    "ams_sort_reference",
    "rlm_sort",
    "rlm_sort_reference",
    "single_level_sample_sort",
    "single_level_sample_sort_reference",
    "single_level_mergesort",
    "single_level_mergesort_reference",
    "parallel_quicksort",
    "parallel_quicksort_reference",
    "ENGINES",
    "SortResult",
    "run_on_machine",
    "sort_array",
    "check_globally_sorted",
    "check_permutation",
    "output_imbalance",
    "validate_output",
]
