"""``DistArray`` — the whole machine's data as one flat numpy array.

A distributed array over ``p`` PEs is stored as

* ``values`` — one contiguous 1-D numpy array holding every PE's elements
  back to back (PE 0 first), and
* ``offsets`` — an int64 vector of ``p + 1`` entries; PE ``i`` owns the
  slice ``values[offsets[i]:offsets[i + 1]]``.

This is the CSR-style ragged layout; all whole-machine operations of the
flat engine (sampling, bucket counting, routing, exchange assembly) become
offset arithmetic plus single vectorised numpy calls instead of
``for i in range(p)`` loops over per-PE arrays.

Conversion from and to the seed representation (``List[np.ndarray]``) is a
single concatenate / ``p`` cheap views, so the public API keeps accepting
lists while every hot path runs flat.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.dist.flatops import segment_ids, segmented_sort_values, take_ranges


class DistArray:
    """A distributed array in flat (CSR) layout.

    Parameters
    ----------
    values:
        All elements of the machine, PE 0's segment first.
    offsets:
        ``p + 1`` non-decreasing int64 offsets; segment ``i`` is
        ``values[offsets[i]:offsets[i+1]]``.
    copy:
        Copy the inputs (default False: views are kept).
    """

    __slots__ = ("values", "offsets")

    def __init__(self, values: np.ndarray, offsets: np.ndarray, copy: bool = False):
        values = np.asarray(values)
        offsets = np.asarray(offsets, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("DistArray values must be one-dimensional")
        if offsets.ndim != 1 or offsets.size < 2:
            raise ValueError("offsets needs at least two entries (p >= 1)")
        if int(offsets[0]) != 0 or int(offsets[-1]) != values.size:
            raise ValueError("offsets must start at 0 and end at values.size")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.values = values.copy() if copy else values
        self.offsets = offsets.copy() if copy else offsets

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_list(cls, arrays: Sequence[np.ndarray]) -> "DistArray":
        """Build from the seed per-PE list representation (one concatenate)."""
        arrays = [np.asarray(a) for a in arrays]
        if not arrays:
            raise ValueError("need at least one per-PE array")
        for i, a in enumerate(arrays):
            if a.ndim != 1:
                raise ValueError(f"per-PE array {i} is not one-dimensional")
        sizes = np.array([a.size for a in arrays], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        non_empty = [a for a in arrays if a.size > 0]
        if non_empty:
            values = np.concatenate(non_empty) if len(non_empty) > 1 else non_empty[0].copy()
        else:
            values = np.empty(0, dtype=arrays[0].dtype)
        return cls(values, offsets)

    @classmethod
    def from_sizes(cls, values: np.ndarray, sizes: Sequence[int]) -> "DistArray":
        """Build from a flat buffer plus per-PE segment sizes."""
        sizes = np.asarray(sizes, dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(np.asarray(values), offsets)

    @classmethod
    def empty(cls, p: int, dtype=np.float64) -> "DistArray":
        """An empty distributed array over ``p`` PEs."""
        if p <= 0:
            raise ValueError("need at least one PE")
        return cls(np.empty(0, dtype=dtype), np.zeros(p + 1, dtype=np.int64))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of PE segments."""
        return int(self.offsets.size - 1)

    @property
    def total(self) -> int:
        """Total number of elements over all PEs."""
        return int(self.values.size)

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self.values.dtype

    def sizes(self) -> np.ndarray:
        """Per-PE segment sizes (int64 vector of length ``p``)."""
        return np.diff(self.offsets)

    def segment(self, i: int) -> np.ndarray:
        """PE ``i``'s elements (a view into ``values``)."""
        if not 0 <= i < self.p:
            raise IndexError(f"segment index {i} out of range")
        return self.values[self.offsets[i]:self.offsets[i + 1]]

    def segment_ids(self) -> np.ndarray:
        """Owning-PE index of every element (length ``total``)."""
        return segment_ids(self.offsets)

    def slice_segments(self, lo: int, hi: int) -> "DistArray":
        """Sub-array over segments ``lo .. hi - 1`` (views, zero copy)."""
        if not 0 <= lo <= hi <= self.p:
            raise IndexError(f"segment range [{lo}, {hi}) out of bounds")
        base = self.offsets[lo]
        return DistArray(
            self.values[base:self.offsets[hi]], self.offsets[lo:hi + 1] - base
        )

    def take_segments(self, idx: np.ndarray) -> "DistArray":
        """Sub-array over an arbitrary (ascending or not) list of segments.

        Segment ``k`` of the result is segment ``idx[k]`` of this array; the
        values are gathered with one :func:`~repro.dist.flatops.take_ranges`
        indexing pass.  Unlike :meth:`slice_segments` this copies.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("need at least one segment index")
        if idx.min() < 0 or idx.max() >= self.p:
            raise IndexError("segment index out of range")
        sizes = self.sizes()[idx]
        values = take_ranges(self.values, self.offsets[idx], sizes)
        return DistArray.from_sizes(values, sizes)

    # ------------------------------------------------------------------
    # Conversion / transformation
    # ------------------------------------------------------------------
    def to_list(self, copy: bool = False) -> List[np.ndarray]:
        """The seed per-PE list representation (views unless ``copy``)."""
        out = [self.segment(i) for i in range(self.p)]
        return [a.copy() for a in out] if copy else out

    def sort_segments(self) -> "DistArray":
        """Stable-sort every segment (byte-identical to per-PE stable sort)."""
        return DistArray(segmented_sort_values(self.values, self.offsets), self.offsets)

    def copy(self) -> "DistArray":
        """Deep copy."""
        return DistArray(self.values.copy(), self.offsets.copy())

    @staticmethod
    def concatenate(parts: Sequence["DistArray"]) -> "DistArray":
        """Concatenate along the PE axis (segments of all parts in order)."""
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one part")
        values = [d.values for d in parts if d.values.size > 0]
        if values:
            flat = np.concatenate(values) if len(values) > 1 else values[0]
        else:
            flat = np.empty(0, dtype=parts[0].dtype)
        sizes = np.concatenate([d.sizes() for d in parts])
        return DistArray.from_sizes(flat, sizes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.p

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistArray(p={self.p}, total={self.total}, dtype={self.dtype}, "
            f"sizes={self.sizes()[:8].tolist()}{'...' if self.p > 8 else ''})"
        )
