"""Per-machine workspace arena: preallocated buffers for level temporaries.

The flat engine's recursion levels are dominated by a small set of
element-scale temporaries — composed sort keys, radix argsort scratch,
``concat_ranges`` index planes, padded-sort rectangles, delivery planes.
Before this module each level allocated them fresh with ``np.empty`` /
``np.zeros`` and dropped them at the end of the level, so the process
walked its whole working set through the allocator once per level and the
peak resident set grew with the number of *distinct concurrent
temporaries*, not with the data.  ``enable_malloc_reuse`` (PR 5) already
keeps freed pages mapped; the arena goes one step further and keeps the
*buffers themselves*, so a level checks its scratch out of a small pool
and returns it, and a p = 2^20 run touches the same few buffers over and
over.

Design:

* A :class:`WorkspaceArena` owns per-dtype free lists of 1-D buffers.
  :meth:`~WorkspaceArena.empty` checks out the smallest free buffer that
  fits (best fit; free lists stay sorted by capacity) and returns a
  length-``n`` view of it; on a miss the largest too-small buffer is
  retired and a new one of ``max(n, 2 * retired.size)`` is allocated, so
  per dtype the pool converges geometrically to the high-water size
  instead of holding one buffer per historical size.
* :meth:`~WorkspaceArena.recycle` returns a checkout to the pool.  It
  walks the view's ``base`` chain to find the owning buffer, so reshaped
  and sliced views recycle fine — and it is a safe no-op for arrays the
  arena never handed out (double recycles included), so call sites can
  recycle unconditionally.
* :meth:`~WorkspaceArena.arange` is the persistent read-only index ramp
  (the former ``flatops.cached_arange`` cache, folded in here so it obeys
  the same release discipline).
* :meth:`~WorkspaceArena.release` drops every pooled buffer and ramp —
  the hook long campaigns use to shed the high-water workspace between
  cells.  Checked-out buffers survive a release; they simply are not
  re-pooled when recycled afterwards.
* Everything here is bookkeeping: a checkout is ``np.empty`` semantics
  (uninitialised), so call sites must fully overwrite before reading,
  and outputs stay byte-identical with the arena on, off
  (``REPRO_ARENA=off``) or released at any point.

The arena is deliberately per *process*: the engine simulates one
machine at a time, ``SimulatedMachine`` holds the process arena and
exposes ``release_workspace()``, and forked backend workers (the
sharedmem pool) reset to a fresh arena of their own via
``os.register_at_fork`` — a child never shares Python-level pools with
its parent.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "WorkspaceArena",
    "NullArena",
    "get_arena",
    "set_arena",
    "reset_arena",
    "arena_enabled",
]


class WorkspaceArena:
    """Pool of preallocated 1-D numpy buffers reused across levels."""

    def __init__(self, name: str = "workspace"):
        self.name = name
        #: dtype -> free buffers, sorted ascending by capacity.
        self._free: Dict[np.dtype, List[np.ndarray]] = {}
        #: id(buffer) -> buffer, for every checked-out buffer.  Holding the
        #: reference keeps the id stable for the lifetime of the checkout.
        self._out: Dict[int, np.ndarray] = {}
        #: dtype -> persistent read-only ``0..n`` ramp.
        self._ranges: Dict[np.dtype, np.ndarray] = {}
        self._owned_bytes = 0
        self._high_water_bytes = 0
        self._hits = 0
        self._misses = 0

    # -- checkout ------------------------------------------------------
    def empty(self, n: int, dtype=np.int64) -> np.ndarray:
        """Check out an uninitialised length-``n`` 1-D array.

        ``np.empty`` semantics: the contents are arbitrary until written.
        Return the buffer with :meth:`recycle` when the temporary dies.
        """
        n = int(n)
        dt = np.dtype(dtype)
        if n == 0:
            # Not worth pooling; also keeps recycle() trivially a no-op.
            return np.empty(0, dtype=dt)
        free = self._free.get(dt)
        buf: Optional[np.ndarray] = None
        if free:
            for i, cand in enumerate(free):  # ascending: first fit == best fit
                if cand.size >= n:
                    buf = free.pop(i)
                    self._hits += 1
                    break
        if buf is None:
            self._misses += 1
            grow = n
            if free:
                # Retire the largest too-small buffer; growing to twice its
                # size bounds the new allocation at < 2n while converging
                # the pool geometrically to the high-water demand.
                retired = free.pop()
                self._owned_bytes -= retired.nbytes
                grow = max(n, 2 * retired.size)
            buf = np.empty(grow, dtype=dt)
            self._owned_bytes += buf.nbytes
            self._high_water_bytes = max(self._high_water_bytes, self._owned_bytes)
        self._out[id(buf)] = buf
        return buf[:n]

    def zeros(self, n: int, dtype=np.int64) -> np.ndarray:
        """Check out a zero-filled length-``n`` array."""
        view = self.empty(n, dtype)
        view.fill(0)
        return view

    def full(self, n: int, fill_value, dtype=np.int64) -> np.ndarray:
        """Check out a length-``n`` array filled with ``fill_value``."""
        view = self.empty(n, dtype)
        view.fill(fill_value)
        return view

    def arange(self, n: int, dtype=np.int64) -> np.ndarray:
        """Read-only view of ``np.arange(n, dtype)`` from a persistent ramp.

        The ramp per dtype grows geometrically and is marked read-only so a
        mutating caller fails loudly; it is never recycled, only dropped by
        :meth:`release`.
        """
        n = int(n)
        dt = np.dtype(dtype)
        ramp = self._ranges.get(dt)
        if ramp is None or ramp.size < n:
            old = 0 if ramp is None else ramp.size
            if ramp is not None:
                self._owned_bytes -= ramp.nbytes
            ramp = np.arange(max(n, 2 * old), dtype=dt)
            ramp.setflags(write=False)
            self._ranges[dt] = ramp
            self._owned_bytes += ramp.nbytes
            self._high_water_bytes = max(self._high_water_bytes, self._owned_bytes)
        return ramp[:n]

    # -- return --------------------------------------------------------
    def recycle(self, *arrays: Optional[np.ndarray]) -> None:
        """Return checkouts to the pool; no-op for anything else.

        Views (slices, reshapes) are resolved to their owning buffer by
        walking the ``base`` chain.  Arrays the arena does not own —
        including double recycles and buffers checked out before a
        :meth:`release` — are silently ignored, so call sites never need
        to track provenance.
        """
        for arr in arrays:
            if arr is None:
                continue
            node = arr
            buf = None
            while node is not None:
                cand = self._out.get(id(node))
                if cand is not None and cand is node:
                    buf = cand
                    break
                node = node.base
            if buf is None:
                continue
            del self._out[id(buf)]
            free = self._free.setdefault(buf.dtype, [])
            lo, hi = 0, len(free)
            while lo < hi:  # insort by capacity
                mid = (lo + hi) // 2
                if free[mid].size < buf.size:
                    lo = mid + 1
                else:
                    hi = mid
            free.insert(lo, buf)

    # -- lifecycle -----------------------------------------------------
    def release(self) -> None:
        """Drop all pooled buffers and ramps, shedding the workspace memory.

        Checked-out buffers survive (their owners still hold views); they
        are forgotten, so recycling them afterwards is a no-op and their
        memory goes back to the allocator when the views die.
        """
        for free in self._free.values():
            for buf in free:
                self._owned_bytes -= buf.nbytes
        self._free.clear()
        for ramp in self._ranges.values():
            self._owned_bytes -= ramp.nbytes
        self._ranges.clear()
        for buf in self._out.values():
            self._owned_bytes -= buf.nbytes
        self._out.clear()
        self._owned_bytes = 0

    def stats(self) -> Dict[str, int]:
        """Current pool accounting (bytes owned, high-water, hit/miss)."""
        return {
            "owned_bytes": self._owned_bytes,
            "high_water_bytes": self._high_water_bytes,
            "free_buffers": sum(len(v) for v in self._free.values()),
            "checked_out": len(self._out),
            "hits": self._hits,
            "misses": self._misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<WorkspaceArena {self.name!r} owned={s['owned_bytes']}B "
            f"high={s['high_water_bytes']}B out={s['checked_out']}>"
        )


class NullArena:
    """Arena-shaped front for plain numpy allocation (``REPRO_ARENA=off``).

    Every checkout is a fresh allocation and :meth:`recycle` does nothing,
    which restores the pre-arena allocation behaviour exactly — the
    byte-identity tests run the engine under both fronts.
    """

    name = "null"

    def empty(self, n: int, dtype=np.int64) -> np.ndarray:
        return np.empty(int(n), dtype=dtype)

    def zeros(self, n: int, dtype=np.int64) -> np.ndarray:
        return np.zeros(int(n), dtype=dtype)

    def full(self, n: int, fill_value, dtype=np.int64) -> np.ndarray:
        return np.full(int(n), fill_value, dtype=dtype)

    def arange(self, n: int, dtype=np.int64) -> np.ndarray:
        return np.arange(int(n), dtype=dtype)

    def recycle(self, *arrays) -> None:
        return None

    def release(self) -> None:
        return None

    def stats(self) -> Dict[str, int]:
        return {
            "owned_bytes": 0,
            "high_water_bytes": 0,
            "free_buffers": 0,
            "checked_out": 0,
            "hits": 0,
            "misses": 0,
        }


_ARENA: Optional[object] = None


def arena_enabled() -> bool:
    """Whether ``REPRO_ARENA`` selects the pooling arena (default on)."""
    return os.environ.get("REPRO_ARENA", "on").lower() not in (
        "off",
        "0",
        "no",
        "false",
    )


def get_arena():
    """The process arena, created on first use per the ``REPRO_ARENA`` toggle."""
    global _ARENA
    if _ARENA is None:
        _ARENA = WorkspaceArena() if arena_enabled() else NullArena()
    return _ARENA


def set_arena(arena) -> None:
    """Install ``arena`` as the process arena (tests, backend workers)."""
    global _ARENA
    _ARENA = arena


def reset_arena() -> None:
    """Forget the process arena; the next :func:`get_arena` builds a fresh one."""
    global _ARENA
    _ARENA = None


# A forked child must never share Python-level pools with its parent: the
# sharedmem backend workers each own a fresh arena sized by their shard of
# the work, not the parent's whole-machine high water.
os.register_at_fork(after_in_child=reset_arena)
